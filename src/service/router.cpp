#include "service/router.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <thread>

#include "core/checkpoint.hpp"
#include "ingest/ingest.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/parse_error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pmacx::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Poll interval for the accept loop and connection reads; bounds how long
/// a stop() request can go unnoticed (same cadence as Server).
constexpr int kPollMs = 100;

void set_recv_timeout(int fd, long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void set_send_timeout(int fd, long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

enum class ReadStatus { Ok, Closed, Reset, Stopped, TimedOut, IdleTimedOut };

/// Same contract as the Server's reader: idle waits bounded by
/// idle_timeout_ms, a started message bounded by read_timeout_ms even while
/// bytes keep arriving (slow-loris guard).
ReadStatus read_exact(int fd, char* out, std::size_t size, const std::atomic<bool>& stop,
                      std::uint64_t idle_timeout_ms, std::uint64_t read_timeout_ms) {
  std::size_t got = 0;
  const Clock::time_point idle_started = Clock::now();
  Clock::time_point started{};
  while (got < size) {
    // Bounded-EINTR recv (util::io); budget exhaustion falls through to
    // Reset below instead of spinning.
    const ssize_t n = util::io::socket_recv(fd, out + got, size - got);
    if (n > 0) {
      if (got == 0) started = Clock::now();
      got += static_cast<std::size_t>(n);
      if (got < size &&
          Clock::now() - started > std::chrono::milliseconds(read_timeout_ms))
        return ReadStatus::TimedOut;
      continue;
    }
    if (n == 0) return ReadStatus::Closed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (stop.load(std::memory_order_relaxed)) return ReadStatus::Stopped;
      if (got > 0) {
        if (Clock::now() - started > std::chrono::milliseconds(read_timeout_ms))
          return ReadStatus::TimedOut;
      } else if (idle_timeout_ms > 0 && Clock::now() - idle_started >
                                            std::chrono::milliseconds(idle_timeout_ms)) {
        return ReadStatus::IdleTimedOut;
      }
      continue;
    }
    return ReadStatus::Reset;
  }
  return ReadStatus::Ok;
}

bool send_all(int fd, const std::string& bytes) {
  return util::io::socket_send_all(fd, bytes.data(), bytes.size());
}

std::string shard_metric(std::uint32_t id, const char* suffix) {
  return "service.router.shard." + std::to_string(id) + suffix;
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.topology, options_.vnodes_per_shard),
      started_at_(Clock::now()) {
  for (const ShardEndpoint& shard : ring_.shards())
    PMACX_CHECK(shard.port != 0, "shard " + std::to_string(shard.id) +
                                     " has no resolved port; the router needs real endpoints");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PMACX_CHECK(listen_fd_ >= 0, std::string("socket(): ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  PMACX_CHECK(::inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) == 1,
              "bad bind address '" + options_.bind + "'");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::Error("bind " + options_.bind + ":" + std::to_string(options_.port) + ": " +
                      reason);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::Error("listen: " + reason);
  }

  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  PMACX_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size) == 0,
              "getsockname failed");
  port_ = ntohs(bound.sin_port);

  auto& registry = util::metrics::Registry::global();
  registry.gauge("service.router.shards").set(static_cast<double>(ring_.shard_count()));
  registry.gauge("service.router.replication").set(static_cast<double>(ring_.replication()));
}

Router::~Router() {
  stop();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Router::start() {
  PMACX_CHECK(!accepting_.exchange(true), "Router::start called twice");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Router::reap_finished() {
  std::vector<std::thread> victims;
  {
    std::scoped_lock lock(connections_mutex_);
    for (std::uint64_t id : finished_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      victims.push_back(std::move(it->second.thread));
      connections_.erase(it);
    }
    finished_.clear();
  }
  for (std::thread& victim : victims) victim.join();
}

void Router::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    reap_finished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    util::metrics::Registry::global().counter("service.router.conn.accepted").add();
    set_recv_timeout(fd, kPollMs);
    set_send_timeout(fd, static_cast<long>(options_.failover_deadline_ms));

    std::scoped_lock lock(connections_mutex_);
    const std::uint64_t id = next_connection_id_++;
    Connection& connection = connections_[id];
    connection.fd = fd;
    connection.thread = std::thread([this, fd, id] { serve_connection(fd, id); });
  }

  std::scoped_lock lock(connections_mutex_);
  for (auto& [id, connection] : connections_)
    if (connection.fd >= 0) ::shutdown(connection.fd, SHUT_RDWR);
}

void Router::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::scoped_lock lock(connections_mutex_);
    for (auto& [id, connection] : connections_)
      if (connection.thread.joinable()) threads.push_back(std::move(connection.thread));
    connections_.clear();
    finished_.clear();
  }
  for (std::thread& thread : threads) thread.join();
  {
    std::scoped_lock lock(connections_mutex_);
    finished_.clear();
  }
}

void Router::serve_connection(int fd, std::uint64_t id) {
  auto& registry = util::metrics::Registry::global();
  ShardClients shards;
  shards.shards.resize(ring_.shard_count());

  std::string header(kHeaderSize, '\0');
  std::string body;
  while (!stop_.load(std::memory_order_relaxed)) {
    const ReadStatus head = read_exact(fd, header.data(), header.size(), stop_,
                                       options_.idle_timeout_ms, options_.read_timeout_ms);
    if (head != ReadStatus::Ok) break;

    Frame frame;
    Request request;
    try {
      const std::size_t payload_size = frame_payload_size(header);
      body.resize(payload_size + 4);
      const ReadStatus rest = read_exact(fd, body.data(), body.size(), stop_,
                                         options_.read_timeout_ms, options_.read_timeout_ms);
      if (rest != ReadStatus::Ok) break;
      frame = decode_frame(header + body);
      request = decode_request(frame);
    } catch (const util::ParseError& e) {
      registry.counter("service.router.parse_error").add();
      Response response;
      response.status = Status::Error;
      response.body = e.what();
      send_all(fd, encode_response(MsgType::Status, response));
      break;
    }

    const Response response = route(request, shards);
    const bool sent = send_all(fd, encode_response(request.type, response));
    if (request.type == MsgType::Shutdown) {
      // Reply *before* stopping: the shard fan-out can take a while (dead
      // shards, fault injection), and once stop_ is set the accept loop
      // shuts this connection down — the requester must already have its
      // "draining" answer by then.
      broadcast_shutdown(shards);
      break;
    }
    if (!sent) break;
  }
  ::close(fd);
  std::scoped_lock lock(connections_mutex_);
  auto it = connections_.find(id);
  if (it != connections_.end()) it->second.fd = -1;
  finished_.push_back(id);
}

Response Router::route(const Request& request, ShardClients& shards) {
  auto& registry = util::metrics::Registry::global();
  registry.counter("service.router.requests." + msg_type_name(request.type)).add();
  routed_.fetch_add(1, std::memory_order_relaxed);
  try {
    switch (request.type) {
      case MsgType::Status:
        return aggregate_status(shards);
      case MsgType::Shutdown: {
        // The fan-out happens in serve_connection after this reply is on
        // the wire (see there for why); acknowledging is all route() does.
        Response response;
        response.body = "draining";
        return response;
      }
      case MsgType::UploadTrace:
        return route_upload(request, shards);
      default:
        return route_data_plane(request, shards);
    }
  } catch (const util::Error& e) {
    Response response;
    response.status = Status::Error;
    response.body = e.what();
    registry.counter("service.router.error").add();
    return response;
  }
}

std::string Router::routing_digest(const Request& request) {
  // "@collection" specs resolve on the *shards'* filesystems, so their
  // contents cannot be hashed here.  Route them by the collection's ring
  // key instead — the same key route_upload used — so the request lands on
  // the replicas that hold the ingested files.
  for (const std::string& path : request.spec.trace_paths) {
    std::string collection;
    if (ingest::is_collection_ref(path, &collection)) return "upload:" + collection;
  }
  // Cache key: everything digest_preimage folds in, rendered textually.
  // (The digest itself hashes file *contents*; the key may assume paths are
  // stable because the shard stores assume the same.)
  std::string key;
  for (const std::string& path : request.spec.trace_paths) key += path + "\n";
  const FitSpec& spec = request.spec;
  key += spec.forms + "|" + spec.missing + "|" + spec.criterion + "|" +
         util::format("%.17g|%.17g|%d|%d", spec.tie_tolerance, spec.influence_threshold,
                      spec.reject_out_of_domain ? 1 : 0, spec.round_counts ? 1 : 0);
  {
    std::scoped_lock lock(digest_mutex_);
    auto it = digest_cache_.find(key);
    if (it != digest_cache_.end()) return it->second;
  }
  const std::string digest =
      core::models_digest_for_files(request.spec.trace_paths, request.spec.to_options());
  std::scoped_lock lock(digest_mutex_);
  digest_cache_.emplace(key, digest);
  return digest;
}

Response Router::call_shard(std::size_t index, const Request& request, ShardClients& shards) {
  ShardState& state = shards.shards[index];
  const ShardEndpoint& endpoint = ring_.shards()[index];
  if (!state.client) {
    ClientOptions client_options;
    client_options.host = endpoint.host;
    client_options.port = endpoint.port;
    client_options.io_timeout_ms = options_.shard_io_timeout_ms;
    client_options.connect_attempts = 2;
    client_options.connect_backoff_ms = 25;
    client_options.connect_deadline_ms = options_.shard_connect_deadline_ms;
    client_options.jitter_seed = util::derive_seed(0x726f75746572ULL, endpoint.id);
    state.client = std::make_unique<Client>(client_options);  // throws when unreachable
  }

  const Clock::time_point started = Clock::now();
  MsgType response_type = request.type;
  Response response;
  try {
    response = state.client->call(request, &response_type);
  } catch (...) {
    // Transport or framing failure: this connection is unusable, and a
    // retried hop must start from a clean stream.
    state.client.reset();
    throw;
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - started);
  util::metrics::Registry::global()
      .histogram(shard_metric(endpoint.id, ".latency"))
      .record(static_cast<std::uint64_t>(elapsed.count()));

  if (response_type != request.type && request.type != MsgType::Status) {
    // A Status-typed frame answering a data-plane request is either the
    // shard reporting it could not decode us, or a stale frame from a
    // desynchronized stream (duplicated/torn chunks under network faults).
    // Both mean this connection's framing can no longer be trusted.
    state.client.reset();
    throw util::Error("shard " + std::to_string(endpoint.id) +
                      " answered with mismatched frame type (stream desynchronized): " +
                      response.body);
  }
  return response;
}

Response Router::route_data_plane(const Request& request, ShardClients& shards) {
  auto& registry = util::metrics::Registry::global();
  const std::string digest = routing_digest(request);
  const std::vector<std::uint32_t> replicas = ring_.replicas_for(digest);

  // Map shard ids to positions in the sorted shard vector once.
  std::vector<std::size_t> indices;
  indices.reserve(replicas.size());
  for (const std::uint32_t id : replicas)
    for (std::size_t i = 0; i < ring_.shards().size(); ++i)
      if (ring_.shards()[i].id == id) {
        indices.push_back(i);
        break;
      }

  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.failover_deadline_ms);
  std::uint64_t backoff_ms = options_.sweep_backoff_ms;
  std::size_t failed_hops = 0;
  std::string last_error = "no replica attempted";

  for (;;) {
    for (std::size_t pos = 0; pos < indices.size(); ++pos) {
      const std::size_t index = indices[pos];
      ShardState& state = shards.shards[index];
      if (options_.shard_breaker_failures > 0 && Clock::now() < state.open_until) {
        registry.counter("service.router.shard_down").add();
        continue;
      }
      try {
        Response response = call_shard(index, request, shards);
        state.consecutive_failures = 0;
        registry.counter("service.router.routed").add();
        if (pos > 0 || failed_hops > 0) {
          // The request needed a non-primary replica (or a re-sweep): this
          // is the counter the cluster chaos CI job requires to be positive
          // — proof failover actually happened under the kill schedule.
          registry.counter("service.router.failover").add();
        }
        return response;
      } catch (const util::Error& e) {
        ++failed_hops;
        last_error = e.what();
        registry.counter("service.router.failover_attempts").add();
        ++state.consecutive_failures;
        if (options_.shard_breaker_failures > 0 &&
            state.consecutive_failures >= options_.shard_breaker_failures)
          state.open_until =
              Clock::now() + std::chrono::milliseconds(options_.shard_breaker_cooldown_ms);
      }
    }
    // A full sweep of the replica set failed: back off, then sweep again
    // while the budget lasts (a killed replica is typically respawned by
    // the supervisor well inside the failover deadline).
    if (Clock::now() + std::chrono::milliseconds(backoff_ms) >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, options_.sweep_backoff_ms * 8);
  }

  registry.counter("service.router.exhausted").add();
  Response response;
  response.status = Status::Error;
  response.body = "no replica of digest " + digest + " answered within " +
                  std::to_string(options_.failover_deadline_ms) + " ms (" +
                  std::to_string(failed_hops) + " failed hops): " + last_error;
  return response;
}

Response Router::route_upload(const Request& request, ShardClients& shards) {
  auto& registry = util::metrics::Registry::global();
  // Same ring position for every op of every upload into this collection —
  // and for later "@collection" fit specs (see routing_digest) — so the
  // shards answering those requests are exactly the ones receiving files.
  const std::string key = "upload:" + request.upload.collection;
  const std::vector<std::uint32_t> replicas = ring_.replicas_for(key);

  std::vector<std::size_t> indices;
  indices.reserve(replicas.size());
  for (const std::uint32_t id : replicas)
    for (std::size_t i = 0; i < ring_.shards().size(); ++i)
      if (ring_.shards()[i].id == id) {
        indices.push_back(i);
        break;
      }

  // Fan out to every replica: unlike the data plane (any one replica can
  // answer), ingestion must *land* on each shard that may later serve the
  // collection.  The primary's answer is authoritative (its STATUS drives
  // the client's resume loop); a failed secondary is metered and skipped —
  // the op is idempotent, so the client's retry sweep repairs it.
  Response primary_response;
  bool primary_ok = false;
  std::string primary_error = "no replica attempted";
  for (std::size_t pos = 0; pos < indices.size(); ++pos) {
    try {
      Response response = call_shard(indices[pos], request, shards);
      if (pos == 0) {
        primary_response = std::move(response);
        primary_ok = true;
      }
    } catch (const util::Error& e) {
      if (pos == 0)
        primary_error = e.what();
      else
        registry.counter("service.router.upload_replica_failures").add();
    }
  }
  if (!primary_ok) {
    registry.counter("service.router.error").add();
    primary_response.status = Status::Error;
    primary_response.body =
        "primary replica for collection '" + request.upload.collection +
        "' failed: " + primary_error;
  }
  registry.counter("service.router.routed").add();
  return primary_response;
}

Response Router::aggregate_status(ShardClients& shards) {
  const auto uptime =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - started_at_);
  std::ostringstream out;
  out << "router.version "
      << util::metrics::RunManifest::for_tool("pmacx_cluster").version << "\n"
      << "router.uptime_ms " << uptime.count() << "\n"
      << "router.ring_epoch " << std::hex << ring_.epoch() << std::dec << "\n"
      << "router.shards " << ring_.shard_count() << "\n"
      << "router.replication " << ring_.replication() << "\n"
      << "router.requests " << routed_.load(std::memory_order_relaxed) << "\n";

  Request probe;
  probe.type = MsgType::Status;
  for (std::size_t index = 0; index < ring_.shard_count(); ++index) {
    const std::uint32_t id = ring_.shards()[index].id;
    const std::string prefix = "shard." + std::to_string(id) + ".";
    try {
      const Response response = call_shard(index, probe, shards);
      const bool healthy = response.status == Status::Ok;
      out << prefix << "healthy " << (healthy ? 1 : 0) << "\n";
      if (healthy) {
        shards.shards[index].consecutive_failures = 0;
        for (const std::string& line : util::split(response.body, '\n'))
          if (!util::trim(line).empty()) out << prefix << line << "\n";
      } else {
        out << prefix << "error " << response.body << "\n";
      }
    } catch (const util::Error& e) {
      util::metrics::Registry::global().counter("service.router.shard_down").add();
      out << prefix << "healthy 0\n" << prefix << "error " << e.what() << "\n";
    }
  }

  Response response;
  response.body = out.str();
  return response;
}

void Router::broadcast_shutdown(ShardClients& shards) {
  // Stop accepting *before* telling shards to drain, so a supervisor
  // polling stopping() never respawns a shard we just shut down.
  stop();
  Request shutdown;
  shutdown.type = MsgType::Shutdown;
  for (std::size_t index = 0; index < ring_.shard_count(); ++index) {
    try {
      call_shard(index, shutdown, shards);
    } catch (const util::Error&) {
      // A shard that is already gone needs no shutdown; the supervisor
      // reaps whatever is left.
    }
  }
}

}  // namespace pmacx::service
