#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/error.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"

namespace pmacx::service {
namespace {

using Clock = std::chrono::steady_clock;

void set_timeouts(int fd, long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void send_all(int fd, const std::string& bytes) {
  // Bounded-EINTR full send via util::io; a false return is a timeout,
  // peer close, or hard error — the retry layer above handles all three.
  if (!util::io::socket_send_all(fd, bytes.data(), bytes.size()))
    throw util::Error(std::string("send failed: ") + std::strerror(errno));
}

void recv_exact(int fd, char* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    // socket_recv retries EINTR with a bounded budget; exhaustion surfaces
    // as errno=EINTR and becomes a typed error below, never a spin.
    const ssize_t n = util::io::socket_recv(fd, out + got, size - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0)
      throw util::Error("server closed the connection mid-response (" +
                        std::to_string(got) + " of " + std::to_string(size) + " bytes)");
    if (errno == EAGAIN || errno == EWOULDBLOCK) throw util::Error("receive timed out");
    throw util::Error(std::string("recv failed: ") + std::strerror(errno));
  }
}

/// SHUTDOWN is the one non-idempotent request: a lost response is
/// indistinguishable from a server already draining, so resending it could
/// race a restarted server.  Everything else is safe to resend: the data-
/// plane requests are cached, deterministic derivations, and UPLOAD_TRACE
/// ops are idempotent by construction — the client-chosen session id plus
/// the explicit chunk index mean a resent BEGIN resumes, a resent CHUNK is
/// a metered duplicate no-op (same bytes pwritten at the same offset), and
/// a resent COMMIT of a committed session just re-reports success.
bool retryable(MsgType type) { return type != MsgType::Shutdown; }

}  // namespace

Client::Client(ClientOptions options)
    : options_(std::move(options)), rng_(options_.jitter_seed) {
  connect_with_backoff();
}

Client::~Client() { close_fd(); }

void Client::close_fd() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::uint64_t Client::jittered_ms(std::uint64_t backoff_ms, double jitter) {
  const double fraction = std::clamp(jitter, 0.0, 1.0);
  const double scale = 1.0 - fraction + rng_.uniform(0.0, fraction);
  return static_cast<std::uint64_t>(static_cast<double>(backoff_ms) * scale);
}

void Client::connect_with_backoff() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  PMACX_CHECK(::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) == 1,
              "bad host address '" + options_.host + "'");

  const Clock::time_point started = Clock::now();
  auto deadline_exceeded = [&] {
    return options_.connect_deadline_ms > 0 &&
           Clock::now() - started >= std::chrono::milliseconds(options_.connect_deadline_ms);
  };

  std::uint64_t backoff_ms = options_.connect_backoff_ms;
  std::string last_error = "no attempts made";
  const unsigned attempts = std::max(1u, options_.connect_attempts);
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Jittered backoff: concurrent clients racing a restarting server
      // spread their reconnects instead of stampeding in lockstep.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(jittered_ms(backoff_ms, options_.connect_jitter)));
      backoff_ms *= 2;
      if (deadline_exceeded()) break;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PMACX_CHECK(fd >= 0, std::string("socket(): ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      set_timeouts(fd, static_cast<long>(options_.io_timeout_ms));
      fd_ = fd;
      return;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  const char* why = deadline_exceeded() ? " (connect deadline exceeded)" : "";
  throw util::Error("cannot connect to " + options_.host + ":" +
                    std::to_string(options_.port) + " after " +
                    std::to_string(options_.connect_attempts) + " attempts" + why + ": " +
                    last_error);
}

void Client::reconnect() {
  close_fd();
  util::metrics::Registry::global().counter("service.client.reconnects").add();
  connect_with_backoff();
}

Response Client::call(const Request& request, MsgType* response_type) {
  PMACX_CHECK(fd_ >= 0, "client is not connected");
  send_all(fd_, encode_request(request));

  std::string header(kHeaderSize, '\0');
  recv_exact(fd_, header.data(), header.size());
  const std::size_t payload_size = frame_payload_size(header);
  std::string rest(payload_size + 4, '\0');  // payload + CRC trailer
  recv_exact(fd_, rest.data(), rest.size());
  // Note: the response type normally echoes the request's, but a server
  // that could not even decode our frame answers with a Status-typed error
  // frame, so the type is informational here (see header for how the
  // router uses it).
  const Frame frame = decode_frame(header + rest);
  if (response_type != nullptr) *response_type = frame.type;
  return decode_response(frame);
}

bool Client::circuit_open() const {
  if (!circuit_open_) return false;
  return Clock::now() - circuit_opened_at_ <
         std::chrono::milliseconds(options_.breaker.cooldown_ms);
}

void Client::record_success() {
  consecutive_failures_ = 0;
  circuit_open_ = false;
}

void Client::record_failure() {
  ++consecutive_failures_;
  if (options_.breaker.failure_threshold > 0 &&
      consecutive_failures_ >= options_.breaker.failure_threshold) {
    if (!circuit_open_)
      util::metrics::Registry::global().counter("service.client.circuit_opened").add();
    circuit_open_ = true;
    circuit_opened_at_ = Clock::now();
  }
}

Response Client::call_with_retry(const Request& request) {
  if (circuit_open())
    throw util::Error("circuit open: " + std::to_string(consecutive_failures_) +
                      " consecutive failures to " + options_.host + ":" +
                      std::to_string(options_.port) + "; cooling down");
  // Past cooldown with the breaker still set: this call is the half-open
  // trial — one request probes the server; success closes the circuit,
  // failure re-opens it for another cooldown.

  const RetryPolicy& policy = options_.retry;
  const Clock::time_point started = Clock::now();
  auto remaining_ms = [&]() -> std::uint64_t {
    if (policy.overall_deadline_ms == 0) return UINT64_MAX;
    const auto spent =
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - started);
    const auto budget = std::chrono::milliseconds(policy.overall_deadline_ms);
    return spent >= budget ? 0 : static_cast<std::uint64_t>((budget - spent).count());
  };

  util::metrics::Registry& registry = util::metrics::Registry::global();
  const unsigned attempts = retryable(request.type) ? std::max(1u, policy.max_attempts) : 1u;
  std::uint64_t backoff_ms = policy.initial_backoff_ms;
  std::string last_error;
  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const std::uint64_t budget = remaining_ms();
      if (budget == 0) break;
      const std::uint64_t sleep_ms =
          std::min(jittered_ms(backoff_ms, policy.jitter), budget);
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff_ms = std::min(backoff_ms * 2, policy.max_backoff_ms);
      registry.counter("service.client.retries").add();
      if (remaining_ms() == 0) break;
    }
    try {
      if (fd_ < 0) connect_with_backoff();
      const Response response = call(request);
      if (response.status == Status::Busy && retryable(request.type) &&
          attempt + 1 < attempts) {
        // Shed load is a healthy signal, not a failure: back off and retry
        // without tripping the breaker.
        registry.counter("service.client.busy_retries").add();
        last_error = "server busy: " + response.body;
        continue;
      }
      record_success();
      return response;
    } catch (const util::Error& e) {
      // Transport or framing failure: the stream is unusable — drop the
      // connection so the next attempt starts clean.
      last_error = e.what();
      close_fd();
    }
  }

  record_failure();
  const bool out_of_time = remaining_ms() == 0;
  throw util::Error("request failed after " + std::to_string(attempts) + " attempt(s)" +
                    (out_of_time ? " (overall deadline exceeded)" : "") + ": " +
                    last_error);
}

}  // namespace pmacx::service
