#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/error.hpp"

namespace pmacx::service {
namespace {

void set_timeouts(int fd, long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw util::Error(std::string("send failed: ") +
                      (n < 0 ? std::strerror(errno) : "connection closed"));
  }
}

void recv_exact(int fd, char* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, out + got, size - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0)
      throw util::Error("server closed the connection mid-response (" +
                        std::to_string(got) + " of " + std::to_string(size) + " bytes)");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) throw util::Error("receive timed out");
    throw util::Error(std::string("recv failed: ") + std::strerror(errno));
  }
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  PMACX_CHECK(::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) == 1,
              "bad host address '" + options_.host + "'");

  std::uint64_t backoff_ms = options_.connect_backoff_ms;
  std::string last_error = "no attempts made";
  for (unsigned attempt = 0; attempt < std::max(1u, options_.connect_attempts); ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    PMACX_CHECK(fd >= 0, std::string("socket(): ") + std::strerror(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      set_timeouts(fd, static_cast<long>(options_.io_timeout_ms));
      fd_ = fd;
      return;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  throw util::Error("cannot connect to " + options_.host + ":" +
                    std::to_string(options_.port) + " after " +
                    std::to_string(options_.connect_attempts) + " attempts: " + last_error);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::call(const Request& request) {
  PMACX_CHECK(fd_ >= 0, "client is not connected");
  send_all(fd_, encode_request(request));

  std::string header(kHeaderSize, '\0');
  recv_exact(fd_, header.data(), header.size());
  const std::size_t payload_size = frame_payload_size(header);
  std::string rest(payload_size + 4, '\0');  // payload + CRC trailer
  recv_exact(fd_, rest.data(), rest.size());
  // Note: the response type normally echoes the request's, but a server
  // that could not even decode our frame answers with a Status-typed error
  // frame, so the type is informational here.
  return decode_response(decode_frame(header + rest));
}

}  // namespace pmacx::service
