#include "service/model_store.hpp"

#include <fstream>
#include <sstream>

#include "core/checkpoint.hpp"
#include "machine/targets.hpp"
#include "service/protocol.hpp"
#include "synth/registry.hpp"
#include "trace/binary_io.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/strings.hpp"

namespace pmacx::service {

namespace detail {

void CacheMetrics::hit() { util::metrics::Registry::global().counter("service.cache.hits").add(); }

void CacheMetrics::miss() {
  util::metrics::Registry::global().counter("service.cache.misses").add();
}

void CacheMetrics::eviction() {
  util::metrics::Registry::global().counter("service.cache.evictions").add();
}

void CacheMetrics::invalidation() {
  util::metrics::Registry::global().counter("service.cache.invalidations").add();
}

void CacheMetrics::set_bytes_delta(std::ptrdiff_t delta) {
  // The gauge mirrors the sum of all caches' accounted bytes.  Gauges have
  // no atomic add, and this is only ever called under a cache's mutex, so a
  // read-modify-write race across *different* caches is possible but
  // benign for an advisory gauge.
  util::metrics::Gauge& gauge = util::metrics::Registry::global().gauge("service.cache.bytes");
  gauge.set(gauge.value() + static_cast<double>(delta));
}

}  // namespace detail

namespace {

std::size_t trace_cost(const LoadedTrace& loaded) { return loaded.memory_bytes(); }
std::size_t models_cost(const core::TaskModelSet& set) { return set.memory_bytes(); }
std::size_t profile_cost(const machine::MachineProfile& profile) {
  return sizeof(profile) +
         profile.surface.samples().capacity() * sizeof(machine::BandwidthSample);
}
std::size_t signature_cost(const trace::AppSignature& signature) {
  return signature.memory_bytes();
}
std::size_t body_cost(const std::string& body) { return sizeof(body) + body.size(); }

}  // namespace

ModelStore::ModelStore(std::size_t max_bytes)
    : traces_(max_bytes, trace_cost),
      models_(max_bytes, models_cost),
      profiles_(max_bytes, profile_cost),
      signatures_(max_bytes, signature_cost),
      intervals_(max_bytes, body_cost) {}

std::shared_ptr<const LoadedTrace> ModelStore::load_trace(const std::string& path) {
  return traces_.get_or_load("trace:" + path, [&path]() {
    std::ifstream in(path, std::ios::binary);
    PMACX_CHECK(in.good(), "cannot open trace '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();

    auto loaded = std::make_shared<LoadedTrace>();
    loaded->content_crc = util::crc32(bytes);
    loaded->file_bytes = bytes.size();
    loaded->trace = trace::TaskTrace::load(path);
    loaded->trace.validate();
    return std::shared_ptr<const LoadedTrace>(std::move(loaded));
  });
}

std::string ModelStore::digest(const std::vector<std::string>& trace_paths,
                               const core::ExtrapolationOptions& options) {
  PMACX_CHECK(!trace_paths.empty(), "digest of an empty trace list");
  std::vector<std::uint32_t> crcs;
  crcs.reserve(trace_paths.size());
  for (const std::string& path : trace_paths) crcs.push_back(load_trace(path)->content_crc);
  // The digest lives in core (shared with checkpointing) so a CLI checkpoint
  // and a server cache entry address identical content.
  return core::models_digest(crcs, options);
}

ModelStore::ModelsResult ModelStore::models_for(const std::vector<std::string>& trace_paths,
                                                const core::ExtrapolationOptions& options) {
  ModelsResult result;
  result.digest = digest(trace_paths, options);
  result.models = models_.get_or_load("models:" + result.digest, [&]() {
    std::vector<trace::TaskTrace> inputs;
    inputs.reserve(trace_paths.size());
    for (const std::string& path : trace_paths) inputs.push_back(load_trace(path)->trace);
    return std::make_shared<const core::TaskModelSet>(core::fit_task_models(inputs, options));
  });
  return result;
}

void ModelStore::insert_models(const std::string& digest,
                               std::shared_ptr<const core::TaskModelSet> models) {
  PMACX_CHECK(models != nullptr, "insert_models with a null model set");
  // Atomic swap: in-flight requests holding the old shared_ptr keep serving
  // from it; the next models_for() under this digest resolves to the new
  // set.  Content addressing makes replacement safe for the derived caches
  // (sig:/interval: entries keyed by this digest describe identical bytes).
  models_.insert("models:" + digest, std::move(models));
}

core::ExtrapolationResult ModelStore::extrapolate(const ModelsResult& models,
                                                  std::uint32_t target_cores) const {
  PMACX_CHECK(models.models != nullptr, "extrapolate on an empty models result");
  return core::extrapolate_from_models(*models.models, target_cores);
}

std::shared_ptr<const machine::MachineProfile> ModelStore::profile_for(
    const std::string& target_name) {
  return profiles_.get_or_load("profile:" + target_name, [&target_name]() {
    const machine::TargetSystem target = machine::target_by_name(target_name);
    return std::make_shared<const machine::MachineProfile>(machine::build_profile(target));
  });
}

std::shared_ptr<const trace::AppSignature> ModelStore::signature_for(
    const ModelsResult& models, std::uint32_t target_cores, const std::string& app,
    double work_scale) {
  PMACX_CHECK(models.models != nullptr, "signature_for on an empty models result");
  std::string key = "sig:" + models.digest + ":" + std::to_string(target_cores) + ":" + app +
                    ":" + std::to_string(work_scale);
  return signatures_.get_or_load(key, [&]() {
    core::ExtrapolationResult extrapolated =
        core::extrapolate_from_models(*models.models, target_cores);
    const auto model = synth::make_app(app, work_scale);
    PMACX_CHECK(extrapolated.trace.app == model->name(),
                "traces were collected from '" + extrapolated.trace.app +
                    "' but the request names app '" + model->name() + "'");
    auto signature = std::make_shared<trace::AppSignature>();
    signature->app = extrapolated.trace.app;
    signature->core_count = target_cores;
    signature->target_system = extrapolated.trace.target_system;
    signature->demanding_rank = extrapolated.trace.rank;
    signature->tasks.push_back(std::move(extrapolated.trace));
    for (std::uint32_t rank = 0; rank < target_cores; ++rank)
      signature->comm.push_back(model->comm_trace(target_cores, rank));
    signature->validate();
    return std::shared_ptr<const trace::AppSignature>(std::move(signature));
  });
}

std::shared_ptr<const std::string> ModelStore::interval_for(const ModelsResult& models,
                                                            std::uint32_t target_cores,
                                                            double interval_coverage) {
  PMACX_CHECK(models.models != nullptr, "interval_for on an empty models result");
  PMACX_CHECK(interval_coverage > 0.0 && interval_coverage < 1.0,
              "interval coverage must be in (0, 1)");
  // %.17g keys: 0.9 and 0.9000001 must not collide the way a fixed 6-decimal
  // rendering would make them.
  const std::string key = "interval:" + models.digest + ":" +
                          std::to_string(target_cores) + ":" +
                          util::format("%.17g", interval_coverage);
  return intervals_.get_or_load(key, [&]() {
    core::ExtrapolationResult result =
        core::extrapolate_from_models(*models.models, target_cores, interval_coverage);
    PMACX_ASSERT(result.has_interval, "interval extrapolation produced no interval");
    IntervalResult encoded;
    encoded.lo = trace::to_binary(result.trace_lo);
    encoded.median = trace::to_binary(result.trace_median);
    encoded.hi = trace::to_binary(result.trace_hi);
    encoded.report_csv = result.report.to_csv();
    return std::make_shared<const std::string>(encode_interval_result(encoded));
  });
}

StoreStats ModelStore::stats() const {
  StoreStats stats;
  util::metrics::Registry& registry = util::metrics::Registry::global();
  stats.hits = registry.counter("service.cache.hits").value();
  stats.misses = registry.counter("service.cache.misses").value();
  stats.evictions = registry.counter("service.cache.evictions").value();
  stats.invalidations = registry.counter("service.cache.invalidations").value();
  stats.bytes = traces_.bytes() + models_.bytes() + profiles_.bytes() +
                signatures_.bytes() + intervals_.bytes();
  stats.entries = traces_.entries() + models_.entries() + profiles_.entries() +
                  signatures_.entries() + intervals_.entries();
  return stats;
}

}  // namespace pmacx::service
