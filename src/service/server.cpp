#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

#include "psins/predictor.hpp"
#include "trace/binary_io.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/parse_error.hpp"

namespace pmacx::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Poll interval for the accept loop and idle connection reads; bounds how
/// long a stop() request can go unnoticed.
constexpr int kPollMs = 100;

void set_recv_timeout(int fd, long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void set_send_timeout(int fd, long ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

enum class ReadStatus { Ok, Closed, Reset, Stopped, TimedOut, IdleTimedOut };

/// Reads exactly `size` bytes.  Idle waits (no bytes of the message read
/// yet) are bounded by `idle_timeout_ms` (0 = only close/stop ends them);
/// once a message has started, the read must complete within
/// `read_timeout_ms` (slow-loris guard).  Hard socket errors report Reset
/// so the caller can meter them separately from orderly closes.
ReadStatus read_exact(int fd, char* out, std::size_t size, const std::atomic<bool>& stop,
                      std::uint64_t idle_timeout_ms, std::uint64_t read_timeout_ms) {
  std::size_t got = 0;
  const Clock::time_point idle_started = Clock::now();
  Clock::time_point started{};
  while (got < size) {
    // socket_recv retries EINTR with a bounded budget; an exhausted budget
    // surfaces as errno=EINTR below and drops the connection (Reset)
    // instead of spinning forever under a signal storm.
    const ssize_t n = util::io::socket_recv(fd, out + got, size - got);
    if (n > 0) {
      if (got == 0) started = Clock::now();
      got += static_cast<std::size_t>(n);
      // Enforce the window even when bytes keep arriving: a peer trickling
      // at just under the poll interval must not evade the slow-loris guard
      // by keeping every recv fed.
      if (got < size &&
          Clock::now() - started > std::chrono::milliseconds(read_timeout_ms))
        return ReadStatus::TimedOut;
      continue;
    }
    if (n == 0) return ReadStatus::Closed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (stop.load(std::memory_order_relaxed)) return ReadStatus::Stopped;
      if (got > 0) {
        if (Clock::now() - started > std::chrono::milliseconds(read_timeout_ms))
          return ReadStatus::TimedOut;
      } else if (idle_timeout_ms > 0 && Clock::now() - idle_started >
                                            std::chrono::milliseconds(idle_timeout_ms)) {
        return ReadStatus::IdleTimedOut;
      }
      continue;
    }
    return ReadStatus::Reset;  // hard socket error: drop the connection
  }
  return ReadStatus::Ok;
}

bool send_all(int fd, const std::string& bytes) {
  // Bounded-EINTR full send; false on timeout or hard error (the peer gets
  // a broken stream either way).
  return util::io::socket_send_all(fd, bytes.data(), bytes.size());
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)), started_at_(Clock::now()), store_(options_.cache_bytes) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  PMACX_CHECK(listen_fd_ >= 0, std::string("socket(): ") + std::strerror(errno));

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  PMACX_CHECK(::inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) == 1,
              "bad bind address '" + options_.bind + "'");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::Error("bind " + options_.bind + ":" + std::to_string(options_.port) + ": " +
                      reason);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw util::Error("listen: " + reason);
  }

  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  PMACX_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size) == 0,
              "getsockname failed");
  port_ = ntohs(bound.sin_port);

  pool_ = std::make_unique<util::ThreadPool>(options_.threads);
  util::metrics::Registry::global().gauge("service.threads").set(
      static_cast<double>(util::ThreadPool::resolve_threads(options_.threads)));
  util::metrics::Registry::global().gauge("service.max_in_flight").set(
      static_cast<double>(options_.max_in_flight));

  if (!options_.ingest_dir.empty()) {
    ingest::IngestService::Options ingest_options;
    ingest_options.root = options_.ingest_dir;
    ingest_options.stream_budget = options_.ingest_stream_budget;
    // Refit under the default fit spec: a request that asks for the default
    // policy on "@collection" resolves to the digest the background refit
    // already published; any other policy cold-fits through the cache path.
    ingest_options.fit = FitSpec{}.to_options();
    ingest_ = std::make_unique<ingest::IngestService>(
        std::move(ingest_options), pool_.get(),
        [this](const std::string& digest,
               std::shared_ptr<const core::TaskModelSet> models) {
          store_.insert_models(digest, std::move(models));
        });
  }
}

Server::~Server() {
  stop();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  PMACX_CHECK(!accepting_.exchange(true), "Server::start called twice");
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::reap_finished() {
  std::vector<std::thread> victims;
  {
    std::scoped_lock lock(connections_mutex_);
    for (std::uint64_t id : finished_) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // wait() already took it
      victims.push_back(std::move(it->second.thread));
      connections_.erase(it);
    }
    finished_.clear();
  }
  // Join outside the lock: these threads have (at most) their final return
  // left, so each join is effectively instant.
  for (std::thread& victim : victims) {
    victim.join();
    util::metrics::Registry::global().counter("service.conn.reaped").add();
  }
}

std::size_t Server::live_connections() {
  std::scoped_lock lock(connections_mutex_);
  return connections_.size();
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    reap_finished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;  // timeout (stop re-check) or EINTR

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    util::metrics::Registry::global().counter("service.conn.accepted").add();
    set_recv_timeout(fd, kPollMs);
    set_send_timeout(fd, static_cast<long>(options_.request_timeout_ms));

    std::scoped_lock lock(connections_mutex_);
    const std::uint64_t id = next_connection_id_++;
    Connection& connection = connections_[id];
    connection.fd = fd;
    connection.thread = std::thread([this, fd, id] { serve_connection(fd, id); });
  }

  // Stopping: unblock every connection read so their threads can exit.
  // Only fds still owned by a live serving thread are shut down — closed
  // ones are marked -1, so a recycled descriptor is never touched.
  std::scoped_lock lock(connections_mutex_);
  for (auto& [id, connection] : connections_)
    if (connection.fd >= 0) ::shutdown(connection.fd, SHUT_RDWR);
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so connections_ can no longer grow.
  std::vector<std::thread> threads;
  {
    std::scoped_lock lock(connections_mutex_);
    for (auto& [id, connection] : connections_)
      if (connection.thread.joinable()) threads.push_back(std::move(connection.thread));
    connections_.clear();
    finished_.clear();
  }
  // Queued (not yet started) handlers are cancelled — their connection
  // threads see CancelledError; running handlers finish within the request
  // deadline their waiters enforce.
  if (pool_) pool_->cancel_pending();
  for (std::thread& thread : threads) thread.join();
  {
    // Exiting threads may have pushed their ids after the swap above.
    std::scoped_lock lock(connections_mutex_);
    finished_.clear();
  }
  pool_.reset();  // drains any still-running handler
}

void Server::serve_connection(int fd, std::uint64_t id) {
  auto& registry = util::metrics::Registry::global();
  std::string header(kHeaderSize, '\0');
  std::string body;
  while (!stop_.load(std::memory_order_relaxed)) {
    const ReadStatus head = read_exact(fd, header.data(), header.size(), stop_,
                                       options_.idle_timeout_ms, options_.read_timeout_ms);
    if (head != ReadStatus::Ok) {
      if (head == ReadStatus::TimedOut || head == ReadStatus::IdleTimedOut)
        registry.counter("service.conn.timeout").add();
      else if (head == ReadStatus::Reset)
        registry.counter("service.conn.reset").add();
      break;
    }

    Frame frame;
    try {
      const std::size_t payload_size = frame_payload_size(header);
      body.resize(payload_size + 4);  // payload + CRC trailer
      // The body is mid-message from its first byte: the read window applies
      // to the whole wait, idle leniency does not.
      const ReadStatus rest = read_exact(fd, body.data(), body.size(), stop_,
                                         options_.read_timeout_ms, options_.read_timeout_ms);
      if (rest != ReadStatus::Ok) {
        if (rest == ReadStatus::TimedOut || rest == ReadStatus::IdleTimedOut)
          registry.counter("service.conn.timeout").add();
        else if (rest == ReadStatus::Reset)
          registry.counter("service.conn.reset").add();
        break;
      }
      frame = decode_frame(header + body);
    } catch (const util::ParseError& e) {
      // The stream is unsynchronized after a malformed frame: answer with a
      // generic error frame, then drop the connection.
      util::metrics::Registry::global().counter("service.requests.parse_error").add();
      Response response;
      response.status = Status::Error;
      response.body = e.what();
      send_all(fd, encode_response(MsgType::Status, response));
      break;
    }

    Request request;
    try {
      request = decode_request(frame);
    } catch (const util::ParseError& e) {
      util::metrics::Registry::global().counter("service.requests.parse_error").add();
      Response response;
      response.status = Status::Error;
      response.body = e.what();
      send_all(fd, encode_response(frame.type, response));
      break;
    }

    const Response response = dispatch(request);
    if (!send_all(fd, encode_response(request.type, response))) {
      registry.counter("service.conn.reset").add();
      break;
    }
    if (request.type == MsgType::Shutdown) {
      stop();
      break;
    }
  }
  ::close(fd);
  // Hand this thread to the reaper: mark the fd dead (so shutdown-at-stop
  // never touches a recycled descriptor) and queue the id for joining on
  // the accept loop's next tick.
  std::scoped_lock lock(connections_mutex_);
  auto it = connections_.find(id);
  if (it != connections_.end()) it->second.fd = -1;
  finished_.push_back(id);
}

Response Server::dispatch(const Request& request) {
  auto& registry = util::metrics::Registry::global();
  const std::string name = msg_type_name(request.type);
  registry.counter("service.requests." + name).add();
  handled_.fetch_add(1, std::memory_order_relaxed);
  const Clock::time_point started = Clock::now();

  // Control-plane requests are cheap and must work on a saturated server
  // (STATUS is how you diagnose one, SHUTDOWN is how you stop one), so they
  // run inline, exempt from the in-flight cap.
  if (request.type == MsgType::Status || request.type == MsgType::Shutdown) {
    Response response = handle(request);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - started);
    registry.histogram("service.latency." + name)
        .record(static_cast<std::uint64_t>(elapsed.count()));
    return response;
  }

  // Load shedding: admit at most max_in_flight concurrent handlers; the
  // rest get an explicit BUSY instead of queueing without bound.
  const std::size_t admitted = in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (admitted >= options_.max_in_flight) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    registry.counter("service.requests.busy").add();
    Response busy;
    busy.status = Status::Busy;
    busy.body = "server at capacity (" + std::to_string(admitted) + " requests in flight)";
    return busy;
  }

  // The decrement must run exactly once whether the handler completes, the
  // deadline fires (handler still running, still holding its slot), or the
  // queued task is cancelled at shutdown (handler never runs).
  auto decremented = std::make_shared<std::atomic<bool>>(false);
  auto release_slot = [this, decremented] {
    if (!decremented->exchange(true)) in_flight_.fetch_sub(1, std::memory_order_relaxed);
  };

  util::TaskFuture<Response> future = pool_->submit([this, request, release_slot] {
    Response response;
    try {
      response = handle(request);
    } catch (const util::Error& e) {
      response.status = Status::Error;
      response.body = e.what();
    } catch (const std::exception& e) {
      response.status = Status::Error;
      response.body = std::string("internal error: ") + e.what();
    }
    release_slot();
    return response;
  });

  Response response;
  if (!future.wait_for(std::chrono::milliseconds(options_.request_timeout_ms))) {
    // Deadline exceeded: the handler keeps running (and keeps its in-flight
    // slot) but its result is discarded.
    registry.counter("service.requests.deadline_exceeded").add();
    response.status = Status::Error;
    response.body = "deadline exceeded after " + std::to_string(options_.request_timeout_ms) +
                    " ms";
  } else {
    try {
      response = future.get();
    } catch (const util::CancelledError&) {
      release_slot();  // the task never ran, so it never released
      response.status = Status::Error;
      response.body = "server shutting down";
    }
  }

  if (response.status == Status::Error)
    registry.counter("service.requests.error").add();
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      Clock::now() - started);
  registry.histogram("service.latency." + name)
      .record(static_cast<std::uint64_t>(elapsed.count()));
  return response;
}

std::vector<std::string> Server::expand_paths(const std::vector<std::string>& paths) const {
  std::vector<std::string> expanded;
  expanded.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string collection;
    if (!ingest::is_collection_ref(path, &collection)) {
      expanded.push_back(path);
      continue;
    }
    PMACX_CHECK(ingest_ != nullptr,
                "'" + path + "' names a collection but ingestion is not enabled "
                "(start the server with --ingest-dir)");
    for (std::string& member : ingest_->resolve(collection))
      expanded.push_back(std::move(member));
  }
  return expanded;
}

Response Server::handle(const Request& request) {
  Response response;
  switch (request.type) {
    case MsgType::Fit: {
      const ModelStore::ModelsResult models =
          store_.models_for(expand_paths(request.spec.trace_paths), request.spec.to_options());
      response.body = models.digest;
      break;
    }
    case MsgType::Extrapolate: {
      const ModelStore::ModelsResult models =
          store_.models_for(expand_paths(request.spec.trace_paths), request.spec.to_options());
      const core::ExtrapolationResult result =
          store_.extrapolate(models, request.target_cores);
      response.body = trace::to_binary(result.trace);
      break;
    }
    case MsgType::PredictInterval: {
      // Same content address as Fit/Extrapolate: the coverage is a query
      // parameter, not part of the model digest, so interval requests reuse
      // (and warm) the point path's cached fits.
      const ModelStore::ModelsResult models =
          store_.models_for(expand_paths(request.spec.trace_paths), request.spec.to_options());
      response.body =
          *store_.interval_for(models, request.target_cores, request.interval_coverage);
      break;
    }
    case MsgType::UploadTrace: {
      PMACX_CHECK(ingest_ != nullptr,
                  "ingestion is not enabled (start the server with --ingest-dir)");
      response.body = ingest_->handle(request.upload);
      break;
    }
    case MsgType::Predict: {
      const ModelStore::ModelsResult models =
          store_.models_for(expand_paths(request.spec.trace_paths), request.spec.to_options());
      const auto signature = store_.signature_for(models, request.target_cores, request.app,
                                                  request.work_scale);
      const auto profile = store_.profile_for(request.machine_target);
      const psins::PredictionResult prediction = psins::predict(*signature, *profile);
      response.body = psins::render_prediction(signature->demanding_task(),
                                               profile->system.name, prediction);
      break;
    }
    case MsgType::Status: {
      const StoreStats stats = store_.stats();
      const auto uptime = std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now() - started_at_);
      std::ostringstream out;
      // Identity first: version and uptime distinguish a freshly restarted
      // shard from a long-lived one, shard_id/ring_epoch (cluster mode) let
      // the router spot a shard launched against a stale topology.
      out << "version " << util::metrics::RunManifest::for_tool("pmacx_serve").version << "\n"
          << "uptime_ms " << uptime.count() << "\n";
      if (options_.shard_id >= 0)
        out << "shard_id " << options_.shard_id << "\n"
            << "ring_epoch " << std::hex << options_.ring_epoch << std::dec << "\n";
      out << "requests " << handled_.load(std::memory_order_relaxed) << "\n"
          << "in_flight " << in_flight_.load(std::memory_order_relaxed) << "\n"
          << "cache.hits " << stats.hits << "\n"
          << "cache.misses " << stats.misses << "\n"
          << "cache.evictions " << stats.evictions << "\n"
          << "cache.invalidations " << stats.invalidations << "\n"
          << "cache.bytes " << stats.bytes << "\n"
          << "cache.entries " << stats.entries << "\n";
      if (ingest_) {
        out << "ingest.collections " << ingest_->registry().collection_count() << "\n"
            << "ingest.files " << ingest_->registry().file_count() << "\n"
            << "ingest.open_sessions " << ingest_->uploads().open_sessions() << "\n"
            << "ingest.refits " << ingest_->refits().refits_completed() << "\n";
      }
      response.body = out.str();
      break;
    }
    case MsgType::Shutdown:
      response.body = "draining";
      break;
  }
  return response;
}

}  // namespace pmacx::service
