// The pmacx prediction server.
//
// A loopback-default TCP listener speaking pmacx-rpc-v1 (protocol.hpp).
// Each accepted connection gets a lightweight reader thread that decodes
// frames and dispatches request *handling* onto the shared util::ThreadPool,
// so slow fits never starve frame I/O and the pool bounds CPU concurrency.
// Load is shed explicitly: once `max_in_flight` requests are being handled,
// further well-formed requests get an immediate BUSY response instead of
// queueing without bound.  Every request is metered
// (service.requests.<type>, service.requests.{busy,error,parse_error},
// service.latency.<type> histograms) and bounded by a wall-clock deadline —
// a handler that blows `request_timeout_ms` gets an Error response while the
// stale computation's result is discarded.
//
// Connections are defended and bounded: a peer that starts a frame but
// trickles it (slow loris) is cut off after `read_timeout_ms`, a peer that
// sits silent longer than `idle_timeout_ms` is reaped, hard socket errors
// are metered as resets, and the accept loop continuously joins finished
// connection threads (the reaper) so a connection churn of any length holds
// memory proportional to *live* connections only.  All of it is visible in
// service.conn.{accepted,reset,timeout,reaped} counters.
//
// Shutdown is graceful: stop() only flips an atomic (async-signal-safe, so
// SIGINT/SIGTERM handlers may call it); the accept loop notices within one
// poll interval, open connections are shut down, in-flight handlers finish
// (queued ones are cancelled via ThreadPool::cancel_pending), and wait()
// returns once everything is drained.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ingest/ingest.hpp"
#include "service/model_store.hpp"
#include "service/protocol.hpp"
#include "util/threadpool.hpp"

namespace pmacx::service {

struct ServerOptions {
  std::string bind = "127.0.0.1";  ///< address to listen on (loopback default)
  std::uint16_t port = 0;          ///< 0 = pick an ephemeral port
  std::size_t threads = 0;         ///< handler pool size; 0 = hardware default
  /// Requests being handled at once before new ones get BUSY.  0 makes every
  /// request BUSY — useful for testing shed behaviour deterministically.
  std::size_t max_in_flight = 64;
  std::size_t cache_bytes = 256u << 20;  ///< ModelStore LRU budget
  std::uint64_t request_timeout_ms = 30'000;  ///< per-request handler deadline
  /// A connection with no complete message *started* for this long is
  /// reaped (half-open/abandoned peer defense).  0 = never.
  std::uint64_t idle_timeout_ms = 120'000;
  /// Once a frame's first byte arrives, the whole frame must land within
  /// this window (slow-loris defense: 1 byte per 500 ms never ties up a
  /// reader thread for long).
  std::uint64_t read_timeout_ms = 10'000;
  /// Cluster identity, reported by STATUS so the router (and operators) can
  /// tell a healthy shard from one running a stale topology.  -1 =
  /// standalone server (the fields are omitted from STATUS).
  std::int64_t shard_id = -1;
  std::uint64_t ring_epoch = 0;  ///< Topology::epoch(); meaningful with shard_id
  /// Live-ingestion root directory (spool/ + collections/ under it).  Empty
  /// disables ingestion: UPLOAD_TRACE requests get an Error response and
  /// "@collection" paths do not resolve.
  std::string ingest_dir;
  /// Buffer budget for upload commit validation and refit trace reloads
  /// (forwarded to ingest::IngestService::Options::stream_budget).
  std::size_t ingest_stream_budget = 64u << 20;
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid and a bind conflict
  /// throws here, not in the background thread); accepting starts at start().
  /// Throws util::Error on socket/bind/listen failure.
  explicit Server(ServerOptions options);
  ~Server();  ///< stop() + wait()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The port actually bound (resolves port 0 to the ephemeral choice).
  std::uint16_t port() const { return port_; }

  /// Spawns the accept loop in a background thread.
  void start();

  /// Requests shutdown.  Async-signal-safe: only stores an atomic flag.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Blocks until the accept loop and every connection thread have exited
  /// and in-flight handlers have drained.  Idempotent.
  void wait();

  ModelStore& store() { return store_; }
  std::uint64_t requests_handled() const { return handled_.load(std::memory_order_relaxed); }

  /// The live-ingestion subsystem, or nullptr when `ingest_dir` was empty.
  ingest::IngestService* ingest() { return ingest_.get(); }

  /// Live connections currently being served (diagnostic; the bounded-memory
  /// chaos invariant is asserted against this staying small under churn).
  std::size_t live_connections();

 private:
  struct Connection {
    int fd = -1;  ///< -1 once the serving thread has closed it
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(int fd, std::uint64_t id);
  /// Joins (and forgets) every connection thread that has finished serving.
  /// Called from the accept loop each poll tick — the reaper that keeps
  /// connection bookkeeping from growing with total connections served.
  void reap_finished();
  /// Handles one decoded request on the pool, enforcing the in-flight cap
  /// and deadline; always returns a Response (errors become Status::Error).
  Response dispatch(const Request& request);
  Response handle(const Request& request);
  /// Expands "@collection" pseudo-paths to the collection's trace paths
  /// (ascending core count).  Throws util::Error when ingestion is disabled
  /// or the collection is unknown; plain paths pass through untouched.
  std::vector<std::string> expand_paths(const std::vector<std::string>& paths) const;

  ServerOptions options_;
  std::chrono::steady_clock::time_point started_at_{};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> handled_{0};
  ModelStore store_;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Declared after pool_ so it is destroyed first; by then wait() has
  /// cancelled queued refits and pool_.reset() drained running ones, so no
  /// pool task can touch a dead IngestService.
  std::unique_ptr<ingest::IngestService> ingest_;
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::uint64_t next_connection_id_ = 0;            // guarded by connections_mutex_
  std::unordered_map<std::uint64_t, Connection> connections_;  // guarded by it too
  std::vector<std::uint64_t> finished_;             // ids awaiting the reaper
};

}  // namespace pmacx::service
