// The pmacx prediction server.
//
// A loopback-default TCP listener speaking pmacx-rpc-v1 (protocol.hpp).
// Each accepted connection gets a lightweight reader thread that decodes
// frames and dispatches request *handling* onto the shared util::ThreadPool,
// so slow fits never starve frame I/O and the pool bounds CPU concurrency.
// Load is shed explicitly: once `max_in_flight` requests are being handled,
// further well-formed requests get an immediate BUSY response instead of
// queueing without bound.  Every request is metered
// (service.requests.<type>, service.requests.{busy,error,parse_error},
// service.latency.<type> histograms) and bounded by a wall-clock deadline —
// a handler that blows `request_timeout_ms` gets an Error response while the
// stale computation's result is discarded.
//
// Shutdown is graceful: stop() only flips an atomic (async-signal-safe, so
// SIGINT/SIGTERM handlers may call it); the accept loop notices within one
// poll interval, open connections are shut down, in-flight handlers finish
// (queued ones are cancelled via ThreadPool::cancel_pending), and wait()
// returns once everything is drained.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/model_store.hpp"
#include "service/protocol.hpp"
#include "util/threadpool.hpp"

namespace pmacx::service {

struct ServerOptions {
  std::string bind = "127.0.0.1";  ///< address to listen on (loopback default)
  std::uint16_t port = 0;          ///< 0 = pick an ephemeral port
  std::size_t threads = 0;         ///< handler pool size; 0 = hardware default
  /// Requests being handled at once before new ones get BUSY.  0 makes every
  /// request BUSY — useful for testing shed behaviour deterministically.
  std::size_t max_in_flight = 64;
  std::size_t cache_bytes = 256u << 20;  ///< ModelStore LRU budget
  std::uint64_t request_timeout_ms = 30'000;  ///< per-request deadline
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid and a bind conflict
  /// throws here, not in the background thread); accepting starts at start().
  /// Throws util::Error on socket/bind/listen failure.
  explicit Server(ServerOptions options);
  ~Server();  ///< stop() + wait()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The port actually bound (resolves port 0 to the ephemeral choice).
  std::uint16_t port() const { return port_; }

  /// Spawns the accept loop in a background thread.
  void start();

  /// Requests shutdown.  Async-signal-safe: only stores an atomic flag.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Blocks until the accept loop and every connection thread have exited
  /// and in-flight handlers have drained.  Idempotent.
  void wait();

  ModelStore& store() { return store_; }
  std::uint64_t requests_handled() const { return handled_.load(std::memory_order_relaxed); }

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Handles one decoded request on the pool, enforcing the in-flight cap
  /// and deadline; always returns a Response (errors become Status::Error).
  Response dispatch(const Request& request);
  Response handle(const Request& request);

  ServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::uint64_t> handled_{0};
  ModelStore store_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> open_fds_;
};

}  // namespace pmacx::service
