// Consistent-hash shard ring and cluster topology for pmacx::service.
//
// Cluster mode splits the model space across N shard servers: every request
// routes on the 16-hex `models_digest` that already content-addresses a
// fitted model set (src/core/checkpoint.hpp), so each shard owns a disjoint
// slice of digests and its ModelStore cache stays hot for exactly that
// slice.  Replication factor R places every digest on R distinct shards —
// the primary plus R-1 failover replicas — so killing any single shard
// leaves at least one owner able to serve each digest.
//
// Determinism is the load-bearing property: the ring is built purely from
// (shard ids, replication, vnode count) through SplitMix64-derived point
// hashes and an FNV-1a/SplitMix key hash, never from pointers, iteration
// order of hash maps, or addresses.  Two processes that parse the same
// topology — the router, every `pmacx_cluster` supervisor, a debugging
// operator — agree on every placement, which is what makes failover and
// chaos replay testable (tests/service_ring_test.cpp pins golden
// placements).
//
// The topology file is a line-oriented text format (docs/RUNBOOK.md):
//
//   # comments and blank lines ignored
//   replication 2
//   shard 0 127.0.0.1 7101
//   shard 1 127.0.0.1 7102
//   shard 2 127.0.0.1 0        # port 0 = launcher picks an ephemeral port
//
// Malformed files raise util::ParseError with the line number and section,
// matching the trace loaders' taxonomy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pmacx::service {

/// One shard server in the cluster.  The id — not the endpoint — is what
/// the ring hashes, so moving a shard to a new host/port (or resolving an
/// ephemeral port at launch) never remaps any digest.
struct ShardEndpoint {
  std::uint32_t id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = resolved at launch time
};

/// A parsed cluster topology: the shard set plus the replication factor.
struct Topology {
  std::vector<ShardEndpoint> shards;  ///< sorted by id after parse/validate
  std::size_t replication = 1;

  /// Parses the text format above.  `path` labels errors only.  Throws
  /// util::ParseError (line number as the offset) on malformed lines,
  /// duplicate ids, replication < 1, or an empty shard set.
  static Topology parse(std::string_view text, const std::string& path = "<topology>");

  /// Reads and parses a topology file.  Throws util::Error when unreadable.
  static Topology load(const std::string& path);

  /// Sorts shards by id and validates (unique ids, replication in
  /// [1, shards.size()]).  parse() calls this; builders that assemble a
  /// Topology in code should too.  Throws util::Error on violations.
  void validate();

  /// Canonical text rendering (round-trips through parse()).
  std::string render() const;

  /// Ring epoch: a 64-bit digest of (replication, sorted shard ids).  Two
  /// processes agree on the epoch iff they agree on the membership that
  /// shapes the ring — ports are deliberately excluded so resolving
  /// ephemeral ports does not change the epoch.  Shown by STATUS so an
  /// operator can spot a shard running a stale topology.
  std::uint64_t epoch() const;
};

/// The consistent-hash ring.  Immutable after construction; cheap to copy.
class ShardRing {
 public:
  /// Default virtual nodes per shard: enough that an 8-shard ring keeps
  /// max/mean key skew under ~1.3 over 10k digests (pinned by
  /// tests/service_ring_test.cpp).
  static constexpr std::size_t kDefaultVnodes = 64;

  /// Builds the ring from a validated topology.  Throws util::Error when
  /// the topology is empty or replication exceeds the shard count.
  explicit ShardRing(const Topology& topology, std::size_t vnodes_per_shard = kDefaultVnodes);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t replication() const { return replication_; }
  std::uint64_t epoch() const { return epoch_; }
  const std::vector<ShardEndpoint>& shards() const { return shards_; }
  const ShardEndpoint& shard(std::uint32_t id) const;

  /// The R distinct shard ids owning `key` (a models_digest, but any byte
  /// string hashes fine), primary first, replicas in ring order after it.
  std::vector<std::uint32_t> replicas_for(std::string_view key) const;

  /// The first owner — replicas_for(key)[0] without the vector.
  std::uint32_t primary_for(std::string_view key) const;

  /// The position-independent 64-bit key hash the ring walks from
  /// (FNV-1a folded through SplitMix64; exposed for tests and diagnostics).
  static std::uint64_t key_hash(std::string_view key);

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::uint32_t shard = 0;  ///< shard id owning this ring point
  };

  std::vector<ShardEndpoint> shards_;  ///< sorted by id
  std::vector<Point> points_;          ///< sorted by hash
  std::size_t replication_ = 1;
  std::uint64_t epoch_ = 0;
};

}  // namespace pmacx::service
