#include "util/parse_error.hpp"

namespace pmacx::util {
namespace {

std::string render(const std::string& path, std::uint64_t byte_offset,
                   const std::string& section, const std::string& message) {
  std::string text;
  if (!path.empty()) text += path + ": ";
  if (!section.empty()) text += section + ": ";
  text += message;
  if (byte_offset != ParseError::kNoOffset)
    text += " (at byte " + std::to_string(byte_offset) + ")";
  return text;
}

}  // namespace

ParseError::ParseError(std::string path, std::uint64_t byte_offset,
                       std::string section, std::string message)
    : Error(render(path, byte_offset, section, message)),
      path_(std::move(path)),
      byte_offset_(byte_offset),
      section_(std::move(section)),
      message_(std::move(message)) {}

ParseError ParseError::with_path(const std::string& path) const {
  return ParseError(path, byte_offset_, section_, message_);
}

}  // namespace pmacx::util
