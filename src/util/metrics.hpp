// Pipeline observability: a lightweight, thread-safe metrics registry.
//
// The prediction pipeline (trace → fit → extrapolate → convolve/replay) is
// parallel and fault-tolerant, which makes it a black box at runtime: when a
// Table-I-style run misbehaves there is no way to see where time went, how
// many fits fell back to constant, or which stage degraded.  Every layer
// records what it did here — counters (monotonic event tallies), gauges
// (last-written values), and timing histograms (count/sum/min/max plus log2
// buckets) — and the tools dump a versioned JSON snapshot with a run
// manifest via --metrics-json, so CI bench runs and user runs become
// diffable artifacts (docs/OBSERVABILITY.md lists every metric).
//
// Concurrency contract, matched to util::ThreadPool workers:
//
//   * Recording (Counter::add, Gauge::set, Histogram::record) is lock-free —
//     relaxed atomics only — so instrumented hot loops (per-element fitting,
//     per-kernel tracing) pay one uncontended atomic RMW per event.
//   * Name lookup (Registry::counter/gauge/histogram) takes a mutex; hot
//     call sites hoist the returned reference out of their loops (or into a
//     function-local static).  Returned references are stable for the
//     registry's lifetime — reset() zeroes values but never removes entries.
//   * Counters tally *work*, not scheduling: a pipeline run increments them
//     identically whether it ran on 1 thread or 16.  Timers are the only
//     values that vary run-to-run; consumers diff counters, not timings.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pmacx::util::metrics {

/// Schema identifier written into every JSON snapshot; bump when the layout
/// of the emitted document changes incompatibly.
inline constexpr std::string_view kSchemaVersion = "pmacx-metrics-v1";

/// Monotonically increasing event count.  add() is lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (thread count, configured cap, ...).  set() is
/// lock-free; concurrent writers race benignly (last store wins).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Timing histogram: count, sum, min, max plus log2-bucketed distribution.
/// Durations are recorded in nanoseconds; bucket i counts samples in
/// [2^i, 2^(i+1)) ns (bucket 0 additionally holds 0-ns samples).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;  ///< 2^48 ns ≈ 3.3 days

  void record(std::uint64_t nanos);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Minimum recorded value; 0 when empty.
  std::uint64_t min() const;
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time copy of one histogram (buckets collapsed to the non-empty
/// prefix-sum form the JSON emits).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};

/// Point-in-time copy of every registered metric, sorted by name (the
/// registry stores names in an ordered map, so snapshots of identical runs
/// serialize identically).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> timers;
};

/// The registry: named metric instances with stable addresses.  One global
/// instance serves the whole process (the tools snapshot it at exit);
/// tests may construct private registries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every pmacx layer records into.
  static Registry& global();

  /// Finds or creates the named metric.  The returned reference remains
  /// valid (and keeps counting) for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Copies every metric's current value, sorted by name.
  Snapshot snapshot() const;

  /// Zeroes every value.  Registered entries (and references handed out)
  /// stay valid — this resets the tallies, not the registrations.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII stage timer: records the scope's wall time into "<stage>.wall_ns"
/// and its process CPU time into "<stage>.cpu_ns" (both histograms) on
/// destruction.  Nest freely — each scope accounts its own interval.
class StageTimer {
 public:
  explicit StageTimer(std::string_view stage, Registry& registry = Registry::global());
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  Histogram& wall_;
  Histogram& cpu_;
  std::chrono::steady_clock::time_point start_;
  std::clock_t cpu_start_;
};

/// Digest of one input file recorded in the run manifest.  Unreadable paths
/// (e.g. signature directories) record readable=false with zeroed digests —
/// the manifest describes the run, it does not re-validate it.
struct InputDigest {
  std::string path;
  std::uint64_t bytes = 0;
  std::uint32_t crc32 = 0;
  bool readable = false;
};

/// Everything needed to reproduce or diff a tool run: tool identity, build
/// provenance, effective configuration, parallelism, and input checksums.
struct RunManifest {
  std::string tool;
  std::string version;  ///< pmacx release the binary was built from
  std::string git_sha;  ///< commit the binary was built from ("unknown" outside git)
  std::size_t threads = 1;
  /// Effective option values in registration order (Cli::values(), or built
  /// by hand for tools with bespoke parsers).
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<InputDigest> inputs;

  /// Manifest pre-filled with this build's version and git sha.
  static RunManifest for_tool(std::string tool);

  /// Reads `path` and appends its size + CRC-32; directories and unreadable
  /// paths are recorded with readable=false rather than failing the run.
  void add_input(const std::string& path);
};

/// Serializes manifest + snapshot as the versioned JSON document
/// (schema kSchemaVersion; field reference in docs/OBSERVABILITY.md).
std::string to_json(const RunManifest& manifest, const Snapshot& snapshot);

/// Writes to_json() to `path` (truncating).  Throws util::Error on I/O
/// failure.
void write_json(const std::string& path, const RunManifest& manifest,
                const Snapshot& snapshot);

}  // namespace pmacx::util::metrics
