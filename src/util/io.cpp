#include "util/io.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pmacx::util::io {
namespace {

/// Which wrapper is asking.  Socket kinds roll only EINTR/short faults and
/// never advance the disk op counter, so crash_after_ops / fail_op budgets
/// stay deterministic no matter how chatty the RPC layer is.
enum class OpKind { Open, Read, Write, Fsync, Rename, Unlink, Close, SocketSend, SocketRecv };

enum class FaultKind {
  None,
  Errno,       ///< fail with Decision::err (EIO / ENOSPC / fail_errno)
  Eintr,       ///< report EINTR; the wrapper's bounded loop retries
  ShortWrite,  ///< transfer only a seeded prefix; the loop continues
  ShortRead,   ///< return only a seeded prefix; the caller's loop continues
  TornRename,  ///< truncate source, really rename, then throw
  FsyncLie,    ///< drop a suffix, report success, arm a crash
  Crash,       ///< SimulatedCrash, latched until faults are re-installed
};

struct Decision {
  FaultKind kind = FaultKind::None;
  int err = 0;
  double fraction = 0.0;  ///< seeded [0,1) prefix size for short/torn/lie
};

struct InjectorState {
  std::mutex mutex;
  FaultConfig cfg;
  Rng rng{0};
  std::uint64_t ops = 0;            ///< faultable disk ops since install
  std::uint64_t bytes_written = 0;  ///< successful write bytes since install
  std::uint64_t crash_arm_at = 0;   ///< op count at which an armed crash fires
  bool crashed = false;
  bool enospc_sticky = false;
};

std::atomic<bool> g_active{false};

InjectorState& state() {
  static InjectorState s;
  return s;
}

/// Every io.* metric, registered on first use so even fault-free runs
/// report them as zeros in snapshots.
struct Counters {
  metrics::Registry& reg = metrics::Registry::global();
  metrics::Counter& ops_open = reg.counter("io.ops.open");
  metrics::Counter& ops_read = reg.counter("io.ops.read");
  metrics::Counter& ops_write = reg.counter("io.ops.write");
  metrics::Counter& ops_fsync = reg.counter("io.ops.fsync");
  metrics::Counter& ops_rename = reg.counter("io.ops.rename");
  metrics::Counter& ops_unlink = reg.counter("io.ops.unlink");
  metrics::Counter& ops_close = reg.counter("io.ops.close");
  metrics::Counter& injected = reg.counter("io.faults.injected");
  metrics::Counter& f_eio = reg.counter("io.faults.eio");
  metrics::Counter& f_enospc = reg.counter("io.faults.enospc");
  metrics::Counter& f_eintr = reg.counter("io.faults.eintr");
  metrics::Counter& f_short_write = reg.counter("io.faults.short_write");
  metrics::Counter& f_short_read = reg.counter("io.faults.short_read");
  metrics::Counter& f_torn_rename = reg.counter("io.faults.torn_rename");
  metrics::Counter& f_fsync_lie = reg.counter("io.faults.fsync_lie");
  metrics::Counter& f_crash = reg.counter("io.faults.crash");
  metrics::Counter& r_eintr = reg.counter("io.retries.eintr");
  metrics::Counter& r_short_write = reg.counter("io.retries.short_write");
  metrics::Counter& r_short_read = reg.counter("io.retries.short_read");
};

Counters& counters() {
  static Counters c;
  return c;
}

void record(FaultKind kind, int err) {
  Counters& c = counters();
  c.injected.add();
  switch (kind) {
    case FaultKind::Errno:
      (err == ENOSPC ? c.f_enospc : c.f_eio).add();
      break;
    case FaultKind::Eintr: c.f_eintr.add(); break;
    case FaultKind::ShortWrite: c.f_short_write.add(); break;
    case FaultKind::ShortRead: c.f_short_read.add(); break;
    case FaultKind::TornRename: c.f_torn_rename.add(); break;
    case FaultKind::FsyncLie: c.f_fsync_lie.add(); break;
    case FaultKind::Crash: c.f_crash.add(); break;
    case FaultKind::None: break;
  }
}

Decision make(FaultKind kind, int err = 0, double fraction = 0.0) {
  record(kind, err);
  return Decision{kind, err, fraction};
}

/// The injector's single choice point.  `write_intent` matters only for
/// Open (a read-only open never fails ENOSPC).  `bytes` is the size the
/// wrapper is about to transfer (threshold accounting).
Decision decide(OpKind kind, std::size_t bytes, bool write_intent) {
  if (!g_active.load(std::memory_order_relaxed)) return {};
  InjectorState& s = state();
  std::scoped_lock lock(s.mutex);

  if (kind == OpKind::SocketSend || kind == OpKind::SocketRecv) {
    if (s.cfg.p_eintr > 0 && s.rng.uniform() < s.cfg.p_eintr)
      return make(FaultKind::Eintr);
    if (kind == OpKind::SocketSend && s.cfg.p_short_write > 0 &&
        s.rng.uniform() < s.cfg.p_short_write)
      return make(FaultKind::ShortWrite, 0, s.rng.uniform());
    if (kind == OpKind::SocketRecv && s.cfg.p_short_read > 0 &&
        s.rng.uniform() < s.cfg.p_short_read)
      return make(FaultKind::ShortRead, 0, s.rng.uniform());
    return {};
  }

  ++s.ops;
  if (s.crashed) return make(FaultKind::Crash);
  if (s.crash_arm_at != 0 && s.ops >= s.crash_arm_at) {
    s.crashed = true;
    return make(FaultKind::Crash);
  }
  if (s.cfg.crash_after_ops != 0 && s.ops >= s.cfg.crash_after_ops) {
    s.crashed = true;
    return make(FaultKind::Crash);
  }

  if (s.cfg.fail_op != 0) {
    // Deterministic single-shot mode: exactly the fail_op-th op fails,
    // probabilistic faults stay silent (the failure-point sweep tests).
    if (s.ops == s.cfg.fail_op)
      return make(FaultKind::Errno, s.cfg.fail_errno != 0 ? s.cfg.fail_errno : EIO);
    return {};
  }

  // Sticky full disk: once cumulative writes pass the threshold, every
  // write-side op fails ENOSPC until faults are re-installed (the read-
  // only-mode leg of the diskchaos sweep).
  const bool write_side =
      kind == OpKind::Write || (kind == OpKind::Open && write_intent);
  if (write_side) {
    if (s.enospc_sticky) return make(FaultKind::Errno, ENOSPC);
    if (s.cfg.enospc_after_bytes != 0 &&
        s.bytes_written + bytes > s.cfg.enospc_after_bytes) {
      s.enospc_sticky = true;
      return make(FaultKind::Errno, ENOSPC);
    }
  }

  switch (kind) {
    case OpKind::Write:
      if (s.cfg.p_eintr > 0 && s.rng.uniform() < s.cfg.p_eintr)
        return make(FaultKind::Eintr);
      if (s.cfg.p_short_write > 0 && s.rng.uniform() < s.cfg.p_short_write)
        return make(FaultKind::ShortWrite, 0, s.rng.uniform());
      if (s.cfg.p_eio > 0 && s.rng.uniform() < s.cfg.p_eio)
        return make(FaultKind::Errno, EIO);
      if (s.cfg.p_enospc > 0 && s.rng.uniform() < s.cfg.p_enospc)
        return make(FaultKind::Errno, ENOSPC);
      break;
    case OpKind::Read:
      if (s.cfg.p_eintr > 0 && s.rng.uniform() < s.cfg.p_eintr)
        return make(FaultKind::Eintr);
      if (s.cfg.p_short_read > 0 && s.rng.uniform() < s.cfg.p_short_read)
        return make(FaultKind::ShortRead, 0, s.rng.uniform());
      if (s.cfg.p_eio > 0 && s.rng.uniform() < s.cfg.p_eio)
        return make(FaultKind::Errno, EIO);
      break;
    case OpKind::Open:
      if (s.cfg.p_eio > 0 && s.rng.uniform() < s.cfg.p_eio)
        return make(FaultKind::Errno, EIO);
      if (write_intent && s.cfg.p_enospc > 0 && s.rng.uniform() < s.cfg.p_enospc)
        return make(FaultKind::Errno, ENOSPC);
      break;
    case OpKind::Fsync:
      if (s.cfg.p_eio > 0 && s.rng.uniform() < s.cfg.p_eio)
        return make(FaultKind::Errno, EIO);
      if (s.cfg.p_fsync_lie > 0 && s.rng.uniform() < s.cfg.p_fsync_lie) {
        // The lie cannot be allowed to persist: a kernel that dropped an
        // acknowledged fsync is moments from dying.  Arm a crash within
        // the next few ops so the workload experiences the real-world
        // sequence (lie, maybe a publish, then power loss).
        s.crash_arm_at = s.ops + 1 + s.rng.below(4);
        return make(FaultKind::FsyncLie, 0, s.rng.uniform());
      }
      break;
    case OpKind::Rename:
      if (s.cfg.p_eio > 0 && s.rng.uniform() < s.cfg.p_eio)
        return make(FaultKind::Errno, EIO);
      if (s.cfg.p_torn_rename > 0 && s.rng.uniform() < s.cfg.p_torn_rename)
        return make(FaultKind::TornRename, 0, s.rng.uniform());
      break;
    case OpKind::Unlink:
    case OpKind::Close:
      if (s.cfg.p_eio > 0 && s.rng.uniform() < s.cfg.p_eio)
        return make(FaultKind::Errno, EIO);
      break;
    case OpKind::SocketSend:
    case OpKind::SocketRecv:
      break;  // handled above
  }
  return {};
}

/// True once the crash latch is set (a "dead" process performs no cleanup).
bool crash_latched() {
  if (!g_active.load(std::memory_order_relaxed)) return false;
  InjectorState& s = state();
  std::scoped_lock lock(s.mutex);
  return s.crashed;
}

void account_write(std::size_t bytes) {
  if (!g_active.load(std::memory_order_relaxed)) return;
  InjectorState& s = state();
  std::scoped_lock lock(s.mutex);
  s.bytes_written += bytes;
}

[[noreturn]] void throw_fault(const Decision& d, const char* op, const std::string& path) {
  if (d.kind == FaultKind::Crash) throw SimulatedCrash(op, path);
  throw IoError(op, path,
                std::string("injected ") + std::strerror(d.err) +
                    (d.err == ENOSPC ? " (device full)" : ""),
                d.err);
}

/// Throws for the fault kinds a wrapper does not handle inline.
void check_fault(const Decision& d, const char* op, const std::string& path) {
  if (d.kind == FaultKind::None) return;
  throw_fault(d, op, path);
}

/// One EINTR retry (real or injected): counts it and throws once the
/// per-call budget is exhausted, so a signal storm ends in a typed error
/// instead of an unbounded spin.
void spend_eintr(int& budget, const char* op, const std::string& path) {
  counters().r_eintr.add();
  if (--budget < 0)
    throw IoError(op, path,
                  "EINTR retry budget exhausted (" +
                      std::to_string(kMaxEintrRetries) + " retries)",
                  EINTR);
}

std::size_t seeded_prefix(std::size_t size, double fraction) {
  if (size <= 1) return size;
  return std::max<std::size_t>(1, static_cast<std::size_t>(
                                      static_cast<double>(size) * fraction));
}

std::string quote(const std::string& s) { return "'" + s + "'"; }

}  // namespace

IoError::IoError(std::string op, std::string path, std::string reason, int err)
    : Error(op + " " + quote(path) + ": " + reason),
      op_(std::move(op)),
      path_(std::move(path)),
      err_(err) {}

SimulatedCrash::SimulatedCrash(std::string op, std::string path)
    : IoError(std::move(op), std::move(path),
              "simulated crash (process assumed dead from here on)", 0) {}

void install_faults(const FaultConfig& config) {
  InjectorState& s = state();
  std::scoped_lock lock(s.mutex);
  s.cfg = config;
  s.rng = Rng(config.seed);
  s.ops = 0;
  s.bytes_written = 0;
  s.crash_arm_at = 0;
  s.crashed = false;
  s.enospc_sticky = false;
  g_active.store(true, std::memory_order_relaxed);
}

void clear_faults() {
  InjectorState& s = state();
  std::scoped_lock lock(s.mutex);
  g_active.store(false, std::memory_order_relaxed);
  s.cfg = FaultConfig{};
  s.crashed = false;
  s.crash_arm_at = 0;
  s.enospc_sticky = false;
}

bool faults_active() { return g_active.load(std::memory_order_relaxed); }

std::uint64_t fault_ops_seen() {
  InjectorState& s = state();
  std::scoped_lock lock(s.mutex);
  return s.ops;
}

FaultConfig parse_fault_spec(const std::string& spec) {
  FaultConfig config;
  for (const std::string& item : split(spec, ',')) {
    const std::string entry{trim(item)};
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    PMACX_CHECK(eq != std::string::npos && eq > 0,
                "fault spec entry '" + entry + "' is not key=value");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    try {
      if (key == "seed") config.seed = std::stoull(value);
      else if (key == "p_eio") config.p_eio = std::stod(value);
      else if (key == "p_enospc") config.p_enospc = std::stod(value);
      else if (key == "p_short_write") config.p_short_write = std::stod(value);
      else if (key == "p_short_read") config.p_short_read = std::stod(value);
      else if (key == "p_eintr") config.p_eintr = std::stod(value);
      else if (key == "p_torn_rename") config.p_torn_rename = std::stod(value);
      else if (key == "p_fsync_lie") config.p_fsync_lie = std::stod(value);
      else if (key == "crash_after_ops") config.crash_after_ops = std::stoull(value);
      else if (key == "enospc_after_bytes") config.enospc_after_bytes = std::stoull(value);
      else if (key == "fail_op") config.fail_op = std::stoull(value);
      else if (key == "fail_errno") {
        if (value == "eio") config.fail_errno = EIO;
        else if (value == "enospc") config.fail_errno = ENOSPC;
        else config.fail_errno = std::stoi(value);
      } else {
        throw Error("unknown fault spec key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      throw Error("bad value '" + value + "' for fault spec key '" + key + "'");
    } catch (const std::out_of_range&) {
      throw Error("bad value '" + value + "' for fault spec key '" + key + "'");
    }
  }
  return config;
}

bool install_faults_from_env() {
  const char* spec = std::getenv("PMACX_IO_FAULTS");
  if (spec == nullptr || *spec == '\0') return false;
  install_faults(parse_fault_spec(spec));
  return true;
}

int open_file(const std::string& path, int flags, unsigned mode) {
  counters().ops_open.add();
  const bool write_intent = (flags & (O_WRONLY | O_RDWR | O_CREAT)) != 0;
  check_fault(decide(OpKind::Open, 0, write_intent), "open", path);
  const int fd = ::open(path.c_str(), flags, static_cast<mode_t>(mode));
  if (fd < 0) throw IoError("open", path, std::strerror(errno), errno);
  return fd;
}

void write_all(int fd, std::string_view data, const std::string& path) {
  counters().ops_write.add();
  int budget = kMaxEintrRetries;
  std::size_t written = 0;
  while (written < data.size()) {
    std::size_t want = data.size() - written;
    const Decision d = decide(OpKind::Write, want, true);
    if (d.kind == FaultKind::Eintr) {
      spend_eintr(budget, "write", path);
      continue;
    }
    if (d.kind == FaultKind::ShortWrite) {
      want = seeded_prefix(want, d.fraction);
      counters().r_short_write.add();
    } else {
      check_fault(d, "write", path);
    }
    const ssize_t n = ::write(fd, data.data() + written, want);
    if (n < 0 && errno == EINTR) {
      spend_eintr(budget, "write", path);
      continue;
    }
    if (n < 0) throw IoError("write", path, std::strerror(errno), errno);
    if (n == 0) throw IoError("write", path, "short write (0 bytes accepted)");
    written += static_cast<std::size_t>(n);
    account_write(static_cast<std::size_t>(n));
  }
}

void pwrite_all(int fd, std::string_view data, std::uint64_t offset,
                const std::string& path) {
  counters().ops_write.add();
  int budget = kMaxEintrRetries;
  std::size_t written = 0;
  while (written < data.size()) {
    std::size_t want = data.size() - written;
    const Decision d = decide(OpKind::Write, want, true);
    if (d.kind == FaultKind::Eintr) {
      spend_eintr(budget, "pwrite", path);
      continue;
    }
    if (d.kind == FaultKind::ShortWrite) {
      want = seeded_prefix(want, d.fraction);
      counters().r_short_write.add();
    } else {
      check_fault(d, "pwrite", path);
    }
    const ssize_t n = ::pwrite(fd, data.data() + written, want,
                               static_cast<off_t>(offset + written));
    if (n < 0 && errno == EINTR) {
      spend_eintr(budget, "pwrite", path);
      continue;
    }
    if (n < 0) throw IoError("pwrite", path, std::strerror(errno), errno);
    if (n == 0) throw IoError("pwrite", path, "short write (0 bytes accepted)");
    written += static_cast<std::size_t>(n);
    account_write(static_cast<std::size_t>(n));
  }
}

std::size_t read_some(int fd, char* out, std::size_t size, const std::string& path) {
  counters().ops_read.add();
  int budget = kMaxEintrRetries;
  for (;;) {
    std::size_t want = size;
    const Decision d = decide(OpKind::Read, size, false);
    if (d.kind == FaultKind::Eintr) {
      spend_eintr(budget, "read", path);
      continue;
    }
    if (d.kind == FaultKind::ShortRead) {
      want = seeded_prefix(want, d.fraction);
      counters().r_short_read.add();
    } else {
      check_fault(d, "read", path);
    }
    const ssize_t n = ::read(fd, out, want);
    if (n < 0 && errno == EINTR) {
      spend_eintr(budget, "read", path);
      continue;
    }
    if (n < 0) throw IoError("read", path, std::strerror(errno), errno);
    return static_cast<std::size_t>(n);
  }
}

std::size_t pread_some(int fd, char* out, std::size_t size, std::uint64_t offset,
                       const std::string& path) {
  counters().ops_read.add();
  int budget = kMaxEintrRetries;
  for (;;) {
    std::size_t want = size;
    const Decision d = decide(OpKind::Read, size, false);
    if (d.kind == FaultKind::Eintr) {
      spend_eintr(budget, "pread", path);
      continue;
    }
    if (d.kind == FaultKind::ShortRead) {
      want = seeded_prefix(want, d.fraction);
      counters().r_short_read.add();
    } else {
      check_fault(d, "pread", path);
    }
    const ssize_t n = ::pread(fd, out, want, static_cast<off_t>(offset));
    if (n < 0 && errno == EINTR) {
      spend_eintr(budget, "pread", path);
      continue;
    }
    if (n < 0) throw IoError("pread", path, std::strerror(errno), errno);
    return static_cast<std::size_t>(n);
  }
}

void truncate_file(int fd, std::uint64_t size, const std::string& path) {
  counters().ops_write.add();
  check_fault(decide(OpKind::Write, 0, true), "ftruncate", path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0)
    throw IoError("ftruncate", path, std::strerror(errno), errno);
}

void fsync_file(int fd, const std::string& path) {
  counters().ops_fsync.add();
  const Decision d = decide(OpKind::Fsync, 0, true);
  if (d.kind == FaultKind::FsyncLie) {
    // The one fault that cannot be surfaced: report success while a suffix
    // of the file silently evaporates.  The injector has already armed a
    // crash a few ops out; recovery (CRC trailers, stream validation, the
    // scrubber) is what must catch this, not the caller.
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      const auto keep = static_cast<off_t>(
          seeded_prefix(static_cast<std::size_t>(st.st_size), d.fraction) - 1);
      ::ftruncate(fd, std::max<off_t>(keep, 0));
    }
    return;
  }
  check_fault(d, "fsync", path);
  int budget = kMaxEintrRetries;
  while (::fsync(fd) != 0) {
    if (errno == EINTR) {
      spend_eintr(budget, "fsync", path);
      continue;
    }
    throw IoError("fsync", path, std::strerror(errno), errno);
  }
}

void fsync_dir_best_effort(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void rename_file(const std::string& from, const std::string& to) {
  counters().ops_rename.add();
  const Decision d = decide(OpKind::Rename, 0, true);
  if (d.kind == FaultKind::TornRename) {
    // Model a crash between data writeback and the publish becoming
    // durable: the name appears, the content is a prefix.  The caller sees
    // a failed publish; the disk holds exactly what a torn rename leaves.
    struct stat st{};
    if (::stat(from.c_str(), &st) == 0 && st.st_size > 0) {
      const auto keep = static_cast<off_t>(
          seeded_prefix(static_cast<std::size_t>(st.st_size), d.fraction) - 1);
      ::truncate(from.c_str(), std::max<off_t>(keep, 0));
    }
    ::rename(from.c_str(), to.c_str());
    throw IoError("rename", to,
                  "injected torn rename (crash between writeback and publish of '" +
                      from + "')");
  }
  check_fault(d, "rename", to);
  if (::rename(from.c_str(), to.c_str()) != 0)
    throw IoError("rename", to,
                  "from '" + from + "': " + std::strerror(errno), errno);
}

void unlink_file(const std::string& path) {
  counters().ops_unlink.add();
  check_fault(decide(OpKind::Unlink, 0, false), "unlink", path);
  if (::unlink(path.c_str()) != 0)
    throw IoError("unlink", path, std::strerror(errno), errno);
}

bool unlink_quiet(const std::string& path) noexcept {
  counters().ops_unlink.add();
  // A process the injector has declared dead performs no cleanup: leaving
  // the temp behind is the point — the scrubber must earn its keep.
  if (crash_latched()) return false;
  const Decision d = decide(OpKind::Unlink, 0, false);
  if (d.kind != FaultKind::None) return false;  // best-effort: swallow, already metered
  return ::unlink(path.c_str()) == 0;
}

void close_file(int fd, const std::string& path) {
  counters().ops_close.add();
  const Decision d = decide(OpKind::Close, 0, false);
  // The real fd is closed regardless (as the kernel does): an injected
  // close error must not leak descriptors across a long chaos sweep.
  const int rc = ::close(fd);
  check_fault(d, "close", path);
  if (rc != 0) throw IoError("close", path, std::strerror(errno), errno);
}

void close_quiet(int fd) noexcept {
  if (fd < 0) return;
  counters().ops_close.add();
  ::close(fd);
}

ssize_t socket_recv(int fd, char* out, std::size_t size) noexcept {
  int budget = kMaxEintrRetries;
  for (;;) {
    std::size_t want = size;
    const Decision d = decide(OpKind::SocketRecv, size, false);
    if (d.kind == FaultKind::Eintr) {
      counters().r_eintr.add();
      if (--budget < 0) {
        errno = EINTR;
        return -1;
      }
      continue;
    }
    if (d.kind == FaultKind::ShortRead) want = seeded_prefix(want, d.fraction);
    const ssize_t n = ::recv(fd, out, want, 0);
    if (n < 0 && errno == EINTR) {
      counters().r_eintr.add();
      if (--budget < 0) {
        errno = EINTR;
        return -1;
      }
      continue;
    }
    return n;
  }
}

bool socket_send_all(int fd, const char* data, std::size_t size) noexcept {
  int budget = kMaxEintrRetries;
  std::size_t sent = 0;
  while (sent < size) {
    std::size_t want = size - sent;
    const Decision d = decide(OpKind::SocketSend, want, false);
    if (d.kind == FaultKind::Eintr) {
      counters().r_eintr.add();
      if (--budget < 0) return false;
      continue;
    }
    if (d.kind == FaultKind::ShortWrite) {
      want = seeded_prefix(want, d.fraction);
      counters().r_short_write.add();
    }
    const ssize_t n = ::send(fd, data + sent, want, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      counters().r_eintr.add();
      if (--budget < 0) return false;
      continue;
    }
    return false;  // timeout, peer close, or hard error
  }
  return true;
}

}  // namespace pmacx::util::io
