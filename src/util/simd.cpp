#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace pmacx::util::simd {

// Defined in simd_avx2.cpp: the AVX2 kernel table, or nullptr when the
// build gated it out (PMACX_DISABLE_AVX2 / non-x86).  Kept out of the
// public header so no other translation unit can bypass the CPUID check.
const Kernels* avx2_kernels_impl();

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels.  These are the semantic definition of every
// kernel: the AVX2 twins in simd_avx2.cpp must match them bit for bit.
// Plain loops, no arch flags — the baseline x86-64 target has no FMA, so
// the compiler cannot contract the mul+add sequences below.
// ---------------------------------------------------------------------------

void scalar_col_mean(const double* y, std::size_t stride, std::size_t count,
                     std::size_t n, double* out) {
  const double inv_count = static_cast<double>(n);
  for (std::size_t e = 0; e < count; ++e) {
    double sum = 0.0;
    for (std::size_t s = 0; s < n; ++s) sum += y[s * stride + e];
    out[e] = sum / inv_count;
  }
}

void scalar_col_sst(const double* y, std::size_t stride, std::size_t count,
                    std::size_t n, const double* mean, double* out) {
  for (std::size_t e = 0; e < count; ++e) {
    double total = 0.0;
    const double m = mean[e];
    for (std::size_t s = 0; s < n; ++s) {
      const double d = y[s * stride + e] - m;
      total += d * d;
    }
    out[e] = total;
  }
}

void scalar_col_sxy(const double* y, std::size_t stride, std::size_t count,
                    std::size_t n, const double* dx, const double* mean_y,
                    double* out) {
  for (std::size_t e = 0; e < count; ++e) {
    double total = 0.0;
    const double m = mean_y[e];
    for (std::size_t s = 0; s < n; ++s) {
      total += dx[s] * (y[s * stride + e] - m);
    }
    out[e] = total;
  }
}

void scalar_col_sse_affine(const double* y, std::size_t stride,
                           std::size_t count, std::size_t n, const double* t,
                           const double* a, const double* b, double* out) {
  for (std::size_t e = 0; e < count; ++e) {
    double total = 0.0;
    const double ae = a[e];
    const double be = b[e];
    for (std::size_t s = 0; s < n; ++s) {
      const double r = y[s * stride + e] - (ae + be * t[s]);
      total += r * r;
    }
    out[e] = total;
  }
}

void scalar_col_sse_affine_div(const double* y, std::size_t stride,
                               std::size_t count, std::size_t n,
                               const double* p, const double* a,
                               const double* b, double* out) {
  for (std::size_t e = 0; e < count; ++e) {
    double total = 0.0;
    const double ae = a[e];
    const double be = b[e];
    for (std::size_t s = 0; s < n; ++s) {
      const double r = y[s * stride + e] - (ae + be / p[s]);
      total += r * r;
    }
    out[e] = total;
  }
}

int scalar_find_tag(const std::uint64_t* tags, const std::uint8_t* valid,
                    std::size_t ways, std::uint64_t needle) {
  for (std::size_t w = 0; w < ways; ++w) {
    if (valid[w] && tags[w] == needle) return static_cast<int>(w);
  }
  return -1;
}

/// One demand probe: hit way (with *hit = 1), else the replacement victim
/// (first invalid way, else the way holding rank ways-1 — see the Kernels
/// doc).  Inlined into the batch loops below.
inline int scalar_probe_set(const std::uint64_t* tags, const std::uint8_t* valid,
                            const std::uint16_t* ranks, std::size_t ways,
                            std::uint64_t needle, int* hit) {
  std::size_t invalid = ways;
  for (std::size_t w = 0; w < ways; ++w) {
    if (valid[w] != 0) {
      if (tags[w] == needle) {
        *hit = 1;
        return static_cast<int>(w);
      }
    } else if (invalid == ways) {
      invalid = w;
    }
  }
  *hit = 0;
  if (invalid != ways) return static_cast<int>(invalid);
  const std::uint16_t last = static_cast<std::uint16_t>(ways - 1);
  std::size_t victim = ways - 1;
  for (std::size_t w = 0; w < ways; ++w) {
    if (ranks[w] == last) {
      victim = w;
      break;
    }
  }
  return static_cast<int>(victim);
}

/// Moves way w (set-relative) to rank 0: every way whose rank was below
/// w's old rank slides up by one.  Keeps the set's ranks a permutation.
inline void scalar_promote(std::uint16_t* ranks, std::uint32_t ways,
                           std::size_t w) {
  const std::uint16_t r = ranks[w];
  for (std::uint32_t i = 0; i < ways; ++i) {
    ranks[i] = static_cast<std::uint16_t>(ranks[i] + (ranks[i] < r ? 1 : 0));
  }
  ranks[w] = 0;
}

ProbeReplay scalar_probe_stream(const SetView& view,
                                const std::uint64_t* lines,
                                const std::uint8_t* stores,
                                const std::uint32_t* indices, std::size_t count,
                                std::uint32_t* misses) {
  ProbeReplay r;
  const std::uint32_t ways = view.ways;
  // Probes visit sets in effectively random order, so large levels pay a
  // host-cache miss per metadata row; prefetching a few probes ahead
  // overlaps those misses with the current probe's work.
  constexpr std::size_t kAhead = 8;
  for (std::size_t k = 0; k < count; ++k) {
    if (k + kAhead < count) {
      const std::uint32_t pf = indices != nullptr
                                   ? indices[k + kAhead]
                                   : static_cast<std::uint32_t>(k + kAhead);
      const std::size_t pb =
          static_cast<std::size_t>(lines[pf] & view.set_mask) * ways;
      __builtin_prefetch(view.tags + pb, 1);
      __builtin_prefetch(view.ranks + pb, 1);
    }
    const std::uint32_t p =
        indices != nullptr ? indices[k] : static_cast<std::uint32_t>(k);
    const std::uint64_t line = lines[p];
    const std::size_t base =
        static_cast<std::size_t>(line & view.set_mask) * ways;
    int hit = 0;
    const std::size_t wr = static_cast<std::size_t>(scalar_probe_set(
        view.tags + base, view.valid + base, view.ranks + base, ways, line,
        &hit));
    const std::size_t w = base + wr;
    if (hit != 0) {
      if (view.lru != 0) scalar_promote(view.ranks + base, ways, wr);
      if (stores[p] != 0) view.dirty[w] = 1;
      ++r.hits;
    } else {
      r.writebacks += view.valid[w] != 0 && view.dirty[w] != 0;
      view.tags[w] = line;
      view.valid[w] = 1;
      scalar_promote(view.ranks + base, ways, wr);
      view.dirty[w] = stores[p];
      misses[r.miss_count++] = p;
    }
  }
  return r;
}

ProbeReplay scalar_probe_grouped(const SetView& view,
                                 const std::uint64_t* lines,
                                 const std::uint8_t* stores,
                                 std::uint8_t* resolved,
                                 const std::uint32_t* grouped,
                                 const std::uint32_t* set_start) {
  ProbeReplay r;
  const std::uint32_t ways = view.ways;
  const std::uint64_t nsets = view.set_mask + 1;
  for (std::uint64_t set = 0; set < nsets; ++set) {
    std::uint32_t k = set_start[set];
    const std::uint32_t end = set_start[set + 1];
    if (k == end) continue;
    const std::size_t base = static_cast<std::size_t>(set) * ways;
    for (; k < end; ++k) {
      const std::uint32_t p = grouped[k];
      const std::uint64_t line = lines[p];
      int hit = 0;
      const std::size_t wr = static_cast<std::size_t>(scalar_probe_set(
          view.tags + base, view.valid + base, view.ranks + base, ways, line,
          &hit));
      const std::size_t w = base + wr;
      if (hit != 0) {
        if (view.lru != 0) scalar_promote(view.ranks + base, ways, wr);
        if (stores[p] != 0) view.dirty[w] = 1;
        resolved[p] = 1;
        ++r.hits;
      } else {
        r.writebacks += view.valid[w] != 0 && view.dirty[w] != 0;
        view.tags[w] = line;
        view.valid[w] = 1;
        scalar_promote(view.ranks + base, ways, wr);
        view.dirty[w] = stores[p];
      }
    }
  }
  return r;
}

const Kernels kScalarKernels = {
    Level::Scalar,         scalar_col_mean,       scalar_col_sst,
    scalar_col_sxy,        scalar_col_sse_affine, scalar_col_sse_affine_div,
    scalar_find_tag,       scalar_probe_stream,   scalar_probe_grouped,
};

bool cpu_has_avx2() {
#if defined(PMACX_DISABLE_AVX2) || !defined(__x86_64__)
  return false;
#else
  return __builtin_cpu_supports("avx2");
#endif
}

// -1 = no override; otherwise a Level value pinned by force_level().
std::atomic<int> g_forced{-1};

Level env_level(Level best) {
  const char* env = std::getenv("PMACX_SIMD");
  if (env == nullptr || *env == '\0') return best;
  if (std::strcmp(env, "scalar") == 0) return Level::Scalar;
  // Any other value (including "avx2") asks for the best available level;
  // requests the build/CPU cannot honor clamp down rather than erroring so
  // a pinned environment works across heterogeneous fleets.
  return best;
}

Level resolve_level() {
  const Level best = avx2_available() ? Level::Avx2 : Level::Scalar;
  const int forced = g_forced.load(std::memory_order_acquire);
  if (forced >= 0) {
    const Level want = static_cast<Level>(forced);
    return (want == Level::Avx2 && best != Level::Avx2) ? Level::Scalar : want;
  }
  return env_level(best);
}

}  // namespace

const char* level_name(Level level) {
  return level == Level::Avx2 ? "avx2" : "scalar";
}

bool avx2_available() {
  static const bool available = cpu_has_avx2() && avx2_kernels_impl() != nullptr;
  return available;
}

Level active_level() { return resolve_level(); }

Level force_level(Level level) {
  if (level == Level::Avx2 && !avx2_available()) level = Level::Scalar;
  g_forced.store(static_cast<int>(level), std::memory_order_release);
  return level;
}

void clear_forced_level() { g_forced.store(-1, std::memory_order_release); }

const Kernels& kernels() {
  return active_level() == Level::Avx2 ? *avx2_kernels() : kScalarKernels;
}

const Kernels& scalar_kernels() { return kScalarKernels; }

const Kernels* avx2_kernels() {
  return avx2_available() ? avx2_kernels_impl() : nullptr;
}

}  // namespace pmacx::util::simd
