#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace pmacx::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PMACX_CHECK(!header_.empty(), "table requires at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  PMACX_CHECK(row.size() == header_.size(),
              "row arity " + std::to_string(row.size()) + " != header arity " +
                  std::to_string(header_.size()));
  rows_.push_back(std::move(row));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
      out << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c], '-') << (c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csv_escape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& out, const std::string& title) const {
  if (!title.empty()) out << title << "\n";
  out << to_ascii();
}

}  // namespace pmacx::util
