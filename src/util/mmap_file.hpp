// Read-only memory-mapped file view with graceful fallback.
//
// Binary v002 traces are parsed from a flat byte range; mapping the file
// makes loading zero-copy (the kernel pages data in as the bounded Reader
// walks it) instead of a read()+copy of the whole trace.  SIGBUS safety:
// the map covers exactly st_size bytes at open time and every access goes
// through the bounds-checked parser, so a file truncated *before* open
// yields a short view and a clean ParseError, never a fault.  (A file
// truncated by another process while mapped is outside the contract, same
// as for buffered reads.)
//
// When mmap is unavailable (platform without it, empty files, devices,
// map failure) callers fall back to buffered reads; trace loaders count
// both outcomes (trace.mmap_bytes / trace.mmap_fallbacks).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

namespace pmacx::util {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { close(); }

  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        mapped_empty_(std::exchange(other.mapped_empty_, false)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      close();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      mapped_empty_ = std::exchange(other.mapped_empty_, false);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only.  Returns false (leaving the object empty) on
  /// any failure — missing file, unmappable object, mmap error — so the
  /// caller can fall back to buffered reads.  Zero-byte files report
  /// success with an empty view (nothing to map, nothing to read).
  bool open(const std::string& path);

  void close();

  bool is_open() const { return data_ != nullptr || mapped_empty_; }
  std::string_view view() const {
    return {static_cast<const char*>(data_), size_};
  }
  std::size_t size() const { return size_; }

  /// True when this platform has an mmap implementation compiled in.
  static bool supported();

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_empty_ = false;
};

}  // namespace pmacx::util
