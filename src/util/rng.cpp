#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace pmacx::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t index) {
  // Mix the index in via two SplitMix64 rounds so adjacent indices land far
  // apart in seed space.
  std::uint64_t s = parent ^ (0x6a09e667f3bcc909ULL + index);
  (void)splitmix64(s);
  return splitmix64(s);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  PMACX_CHECK(n > 0, "Rng::below requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  // Box–Muller; discards the second deviate to keep the generator stateless.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

}  // namespace pmacx::util
