#include "util/threadpool.hpp"

#if defined(__linux__)
#include <pthread.h>
#endif

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/log.hpp"

namespace pmacx::util {

thread_local ThreadPool* ThreadPool::tls_pool_ = nullptr;
thread_local int ThreadPool::tls_worker_ = -1;

TaskError::TaskError(std::size_t task_index, const std::string& message)
    : Error("parallel task " + std::to_string(task_index) + ": " + message),
      task_index_(task_index) {}

namespace detail {

void ForState::rethrow_first() {
  if (failures.empty()) return;
  const ForFailure* first = &failures.front();
  for (const ForFailure& failure : failures) {
    if (failure.index < first->index) first = &failure;
  }
  try {
    std::rethrow_exception(first->error);
  } catch (const Error&) {
    throw;  // typed pmacx errors (ParseError, ...) keep their exact type
  } catch (const std::exception& e) {
    throw TaskError(first->index, e.what());
  } catch (...) {
    throw TaskError(first->index, "unknown exception");
  }
}

}  // namespace detail

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("PMACX_THREADS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1 && value <= 4096) {
      return static_cast<std::size_t>(value);
    }
    PMACX_LOG_WARN << "ignoring invalid PMACX_THREADS='" << env
                   << "' (want an integer in [1, 4096]); running single-threaded";
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  return requested == 0 ? default_threads() : requested;
}

ThreadPool::ThreadPool(std::size_t threads) {
  static std::atomic<std::uint64_t> next_pool_id{0};
  pool_id_ = next_pool_id.fetch_add(1, std::memory_order_relaxed);
  const std::size_t resolved = resolve_threads(threads);
  if (resolved <= 1) return;  // serial: no queues, no workers
  queues_.reserve(resolved);
  for (std::size_t i = 0; i < resolved; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(resolved);
  for (std::size_t i = 0; i < resolved; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(detail::Task task) {
  PMACX_ASSERT(!queues_.empty(), "enqueue on a serial pool");
  std::size_t target;
  if (tls_pool_ == this && tls_worker_ >= 0) {
    target = static_cast<std::size_t>(tls_worker_);  // own queue: LIFO locality
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  // pending_ goes up before the push so a concurrent pop can never drive the
  // counter below zero; a waking worker that races the push just re-polls.
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::scoped_lock lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::scoped_lock lock(wake_mutex_);  // pairs with the workers' predicate wait
  }
  wake_cv_.notify_one();
}

detail::Task ThreadPool::take_task(std::size_t start) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 0; k < n; ++k) {
    Queue& queue = *queues_[(start + k) % n];
    std::scoped_lock lock(queue.mutex);
    if (queue.tasks.empty()) continue;
    detail::Task task;
    if (k == 0) {
      task = std::move(queue.tasks.back());  // own work: newest first
      queue.tasks.pop_back();
    } else {
      task = std::move(queue.tasks.front());  // steal: oldest first
      queue.tasks.pop_front();
    }
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return task;
  }
  return {};
}

std::size_t ThreadPool::cancel_pending() {
  std::size_t cancelled = 0;
  for (auto& queue_ptr : queues_) {
    std::deque<detail::Task> victims;
    {
      std::scoped_lock lock(queue_ptr->mutex);
      victims.swap(queue_ptr->tasks);
    }
    if (victims.empty()) continue;
    pending_.fetch_sub(victims.size(), std::memory_order_relaxed);
    // Abort outside the queue lock: the hooks take future/batch locks and
    // notify waiters, neither of which should nest under a queue mutex.
    for (detail::Task& task : victims) {
      task.abort();
      ++cancelled;
    }
  }
  return cancelled;
}

bool ThreadPool::run_pending_task() {
  if (queues_.empty()) return false;
  std::size_t start;
  if (tls_pool_ == this && tls_worker_ >= 0) {
    start = static_cast<std::size_t>(tls_worker_);
  } else {
    start = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  detail::Task task = take_task(start);
  if (!task) return false;
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_pool_ = this;
  tls_worker_ = static_cast<int>(index);
#if defined(__linux__)
  // Best-effort thread name (15-char kernel limit) so chaos-harness stack
  // dumps and TSan reports say which pool a worker belongs to.  The pool id
  // disambiguates the global pool from ad-hoc pools; a name truncated by
  // snprintf for astronomically large ids is still set, just shortened.
  char name[16];
  std::snprintf(name, sizeof(name), "pmx%llu.w%zu",
                static_cast<unsigned long long>(pool_id_), index);
  ::pthread_setname_np(::pthread_self(), name);
#endif
  for (;;) {
    if (run_pending_task()) continue;
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) break;
    wake_cv_.wait(lock, [&] {
      return stop_ || pending_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_) break;
  }
  // Shutdown drain: run anything still queued (including work enqueued by
  // the drained tasks themselves) so futures on submitted work complete
  // instead of spinning forever in TaskFuture::get.
  while (run_pending_task()) {
  }
}

}  // namespace pmacx::util
