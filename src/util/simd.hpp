// Runtime-dispatched SIMD kernel layer.
//
// The fitting and cache-simulation hot paths are data-parallel across
// *elements* (many independent series, many cache ways), so their inner
// loops are expressed once as kernels over flat structure-of-arrays buffers
// and dispatched here: an AVX2 implementation (compiled into one dedicated
// translation unit with -mavx2) when the build enables it AND the CPU
// reports the feature, and a portable scalar implementation otherwise.
//
// Byte-identity contract: for identical inputs, every kernel produces
// bit-identical outputs at every level — the AVX2 variants vectorize
// *across* lanes (one element per lane) while keeping each lane's operation
// sequence exactly equal to the scalar code, and no kernel uses FMA
// contraction or reassociation.  This is what lets the SoA fast paths be
// golden-tested against the legacy per-element code and lets the
// release-noavx2 CI leg assert scalar-vs-SIMD equality on whole workloads.
//
// Level resolution, in priority order:
//   1. compile gate: PMACX_DISABLE_AVX2 builds contain no AVX2 code at all;
//   2. runtime CPUID: AVX2 kernels are only eligible on CPUs that have them;
//   3. PMACX_SIMD=scalar|avx2 environment override (avx2 is clamped to
//      what 1+2 allow);
//   4. force_level(), a test hook for in-process A/B identity comparisons.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pmacx::util::simd {

/// Kernel implementation tiers, in increasing capability order.
enum class Level {
  Scalar,  ///< portable C++; always available
  Avx2,    ///< 4-wide double / 4-wide u64 kernels
};

/// "scalar" / "avx2".
const char* level_name(Level level);

/// True when this binary contains AVX2 kernels (false under
/// PMACX_DISABLE_AVX2) *and* the CPU supports them.
bool avx2_available();

/// The level kernels() dispatches to: the best available level, downgraded
/// by PMACX_SIMD or force_level.
Level active_level();

/// Test hook: pins the active level (Avx2 requests clamp to what the build
/// and CPU allow; returns the level actually in effect).  Thread-safe but
/// global — intended for identity tests, not concurrent toggling.
Level force_level(Level level);

/// Clears a force_level override, returning to environment/CPU resolution.
void clear_forced_level();

/// Result of one batched cache-probe replay call.
struct ProbeReplay {
  std::uint64_t hits = 0;
  std::uint64_t writebacks = 0;  ///< dirty valid victims displaced
  std::size_t miss_count = 0;    ///< indices written to `misses` (stream only)
};

/// Mutable structure-of-arrays view of one cache level's way metadata
/// (set-major flat arrays: way w of set s lives at index s * ways + w).
/// `set_mask` is sets - 1 (set counts are powers of two); `lru` selects
/// recency promotion on hits (LRU) versus fill-order-only (FIFO).
///
/// Replacement state is a move-to-front rank list, not timestamps: within
/// each set, `ranks` holds a permutation of 0..ways-1 where rank 0 is the
/// most recently used (LRU) or most recently filled (FIFO) way and rank
/// ways-1 is the eviction candidate.  Promoting way w to rank 0 increments
/// every way whose rank was below w's.  This makes the same eviction
/// decisions as last-use timestamps for every access sequence, but stores
/// 2 bytes per way instead of 8 (set-row metadata traffic is the simulator
/// bottleneck on big levels) and replaces the victim argmin reduce with an
/// equality scan for rank ways-1.
struct SetView {
  std::uint64_t* tags;
  std::uint8_t* valid;
  std::uint16_t* ranks;
  std::uint8_t* dirty;
  std::uint64_t set_mask;
  std::uint32_t ways;
  int lru;
};

/// Batched fitting + cache-probe primitives over structure-of-arrays data.
///
/// The fitting kernels view a batch of `count` series, all of length `n`,
/// stored sample-major: sample s of series e lives at y[s * stride + e].
/// Accumulation order within each series is strictly ascending in s,
/// matching the per-series scalar fitter loops bit for bit.
///
/// The cache-probe kernels process whole probe batches per call (not one
/// probe per call) so the dispatch indirection, vector-constant setup and
/// register scheduling are amortized across thousands of probes.  Each
/// probe is the demand half of a set-associative lookup: a way w with
/// valid[w] != 0 and tags[w] == needle is a hit (promoted to rank 0 under
/// LRU, dirty set on stores); otherwise the probe installs over the
/// replacement victim — the first invalid way, else the way with rank
/// ways-1 — and the installed way is promoted to rank 0.  Deterministic
/// replacement (LRU/FIFO) only; ranks are a per-set permutation (see
/// SetView), so ways is capped at 32768 to keep signed 16-bit compares
/// exact.
struct Kernels {
  Level level = Level::Scalar;

  /// out[e] = (sum_s y[s][e]) / n
  void (*col_mean)(const double* y, std::size_t stride, std::size_t count,
                   std::size_t n, double* out);

  /// out[e] = sum_s (y[s][e] - mean[e])^2   (also the constant-form SSE)
  void (*col_sst)(const double* y, std::size_t stride, std::size_t count,
                  std::size_t n, const double* mean, double* out);

  /// out[e] = sum_s dx[s] * (y[s][e] - mean_y[e])
  void (*col_sxy)(const double* y, std::size_t stride, std::size_t count,
                  std::size_t n, const double* dx, const double* mean_y, double* out);

  /// out[e] = sum_s (y[s][e] - (a[e] + b[e] * t[s]))^2
  /// The affine prediction a + b·t matches FittedModel::evaluate for the
  /// linear and logarithmic forms (t = p and t = ln p respectively).
  void (*col_sse_affine)(const double* y, std::size_t stride, std::size_t count,
                         std::size_t n, const double* t, const double* a,
                         const double* b, double* out);

  /// out[e] = sum_s (y[s][e] - (a[e] + b[e] / p[s]))^2
  /// Division (not multiplication by a reciprocal) to match the inverse-p
  /// form's evaluate() rounding exactly.
  void (*col_sse_affine_div)(const double* y, std::size_t stride, std::size_t count,
                             std::size_t n, const double* p, const double* a,
                             const double* b, double* out);

  /// First way w in [0, ways) with valid[w] != 0 and tags[w] == needle, or
  /// -1.  (At most one valid way can match in a well-formed cache set, but
  /// stale tags of invalid ways may collide — hence the valid mask.)
  int (*find_tag)(const std::uint64_t* tags, const std::uint8_t* valid,
                  std::size_t ways, std::uint64_t needle);

  /// Stream-order batch replay: visits probe p = indices[k] (or p = k when
  /// `indices` is null) for k in [0, count), probing lines[p] with store
  /// flag stores[p] against `view`.  Miss indices are appended to `misses`
  /// (caller provides room for `count` entries) in visit order — exactly
  /// the next cache level's ordered input.
  ProbeReplay (*probe_stream)(const SetView& view, const std::uint64_t* lines,
                              const std::uint8_t* stores,
                              const std::uint32_t* indices, std::size_t count,
                              std::uint32_t* misses);

  /// Set-grouped batch replay: `grouped` holds probe indices bucketed by
  /// set index with `set_start` the set_mask+2 prefix offsets; buckets are
  /// replayed in ascending set order (within a bucket, visit order is the
  /// bucket order, which the caller keeps equal to stream order).  Hits
  /// set resolved[p] = 1 so the caller can rebuild the ordered survivor
  /// list; misses install in place.
  ProbeReplay (*probe_grouped)(const SetView& view, const std::uint64_t* lines,
                               const std::uint8_t* stores,
                               std::uint8_t* resolved,
                               const std::uint32_t* grouped,
                               const std::uint32_t* set_start);
};

/// The kernel table for active_level().  Cheap enough to call per batch;
/// hot per-access paths may cache the individual function pointers.
const Kernels& kernels();

/// Specific tables, for identity tests that compare levels directly.
const Kernels& scalar_kernels();
/// Null when AVX2 kernels are not compiled in or not supported by the CPU.
const Kernels* avx2_kernels();

}  // namespace pmacx::util::simd
