#include "util/cli.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"
#include "util/parse_error.hpp"
#include "util/strings.hpp"

namespace pmacx::util {

namespace {

[[noreturn]] void throw_flag_error(std::string_view text, std::string_view flag,
                                   const char* type) {
  throw ParseError("", ParseError::kNoOffset, std::string(flag),
                   std::string("cannot parse '") + std::string(text) + "' as " + type);
}

}  // namespace

std::uint64_t parse_flag_u64(std::string_view text, std::string_view flag) {
  const std::string_view body = trim(text);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec != std::errc{} || ptr != body.data() + body.size())
    throw_flag_error(body, flag, "u64");
  return value;
}

double parse_flag_double(std::string_view text, std::string_view flag) {
  const std::string_view body = trim(text);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), value);
  if (ec != std::errc{} || ptr != body.data() + body.size())
    throw_flag_error(body, flag, "double");
  return value;
}

Cli::Cli(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void Cli::add_string(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  PMACX_CHECK(!options_.count(name), "duplicate option --" + name);
  options_[name] = Option{Kind::String, default_value, default_value, help};
  order_.push_back(name);
}

void Cli::add_u64(const std::string& name, std::uint64_t default_value, const std::string& help) {
  PMACX_CHECK(!options_.count(name), "duplicate option --" + name);
  const std::string text = std::to_string(default_value);
  options_[name] = Option{Kind::U64, text, text, help};
  order_.push_back(name);
}

void Cli::add_double(const std::string& name, double default_value, const std::string& help) {
  PMACX_CHECK(!options_.count(name), "duplicate option --" + name);
  const std::string text = format("%g", default_value);
  options_[name] = Option{Kind::Double, text, text, help};
  order_.push_back(name);
}

void Cli::add_flag(const std::string& name, const std::string& help) {
  PMACX_CHECK(!options_.count(name), "duplicate option --" + name);
  options_[name] = Option{Kind::Flag, "0", "0", help};
  order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    PMACX_CHECK(starts_with(arg, "--"), "unexpected positional argument '" + arg + "'");
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    auto it = options_.find(name);
    PMACX_CHECK(it != options_.end(), "unknown option --" + name);
    Option& opt = it->second;
    if (opt.kind == Kind::Flag) {
      PMACX_CHECK(!have_value, "flag --" + name + " does not take a value");
      opt.value = "1";
      continue;
    }
    if (!have_value) {
      PMACX_CHECK(i + 1 < argc, "option --" + name + " requires a value");
      value = argv[++i];
    }
    // Validate eagerly so errors point at the offending option.
    if (opt.kind == Kind::U64) (void)parse_flag_u64(value, "--" + name);
    if (opt.kind == Kind::Double) (void)parse_flag_double(value, "--" + name);
    opt.value = value;
  }
  return true;
}

const Cli::Option& Cli::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  PMACX_CHECK(it != options_.end(), "option --" + name + " was never registered");
  PMACX_CHECK(it->second.kind == kind, "option --" + name + " accessed with wrong type");
  return it->second;
}

std::string Cli::get_string(const std::string& name) const {
  return find(name, Kind::String).value;
}

std::uint64_t Cli::get_u64(const std::string& name) const {
  return parse_flag_u64(find(name, Kind::U64).value, "--" + name);
}

double Cli::get_double(const std::string& name) const {
  return parse_flag_double(find(name, Kind::Double).value, "--" + name);
}

bool Cli::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).value == "1";
}

std::string Cli::help() const {
  std::ostringstream out;
  out << program_ << " — " << summary_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    out << "  --" << name;
    if (opt.kind != Kind::Flag) out << " <" << opt.default_value << ">";
    out << "\n      " << opt.help << "\n";
  }
  return out.str();
}

std::vector<std::pair<std::string, std::string>> Cli::values() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(order_.size());
  for (const auto& name : order_) out.emplace_back(name, options_.at(name).value);
  return out;
}

}  // namespace pmacx::util
