// Work-stealing thread pool for the embarrassingly parallel layers.
//
// The paper's core loop — fitting canonical forms to every element of every
// basic block, then synthesizing the extrapolated trace — is independent
// across elements, ranks, and traces, so the hot paths (core::Extrapolator,
// core::Pipeline, memsim rank replay) fan work out across this pool.  Design
// constraints, in order:
//
//   * Deterministic results.  parallel_map writes result slot i from task i,
//     so output ordering never depends on scheduling; callers that need
//     bit-identical serial/parallel behaviour merge side effects themselves
//     in index order (see core::Extrapolator).
//   * Typed errors.  A task throwing util::Error (ParseError, ...) has that
//     exact exception rethrown on the calling thread; any other exception is
//     wrapped into util::TaskError carrying the failing task index.  When
//     several tasks fail, the lowest task index wins — the same error a
//     serial loop would have hit first.
//   * Graceful single-thread fallback.  PMACX_THREADS=1 (or ThreadPool(1))
//     spawns no workers at all: submit and parallel_for degenerate to plain
//     inline loops with identical error semantics.
//   * Nested use.  A task may submit work and block on it, or call
//     parallel_for itself: waiting threads *help* — they pull and run queued
//     tasks instead of sleeping — so a 1-worker pool cannot deadlock on
//     nested waits.
//
// Scheduling is classic work stealing: each worker owns a deque, pushes and
// pops its own work LIFO (locality), and steals FIFO from victims when idle.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace pmacx::util {

/// Error raised on the calling thread when a pool task failed with anything
/// other than a util::Error (those propagate with their original type).
/// Carries the index of the failing task within its batch.
class TaskError : public Error {
 public:
  TaskError(std::size_t task_index, const std::string& message);
  std::size_t task_index() const { return task_index_; }

 private:
  std::size_t task_index_;
};

/// Raised on waiters of work discarded by ThreadPool::cancel_pending():
/// the future (or parallel_for batch) completes with this instead of
/// hanging on a task that will never run.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& message) : Error(message) {}
};

class ThreadPool;

namespace detail {

/// Move-only type-erased callable (std::function requires copyability,
/// which packaged results do not have).  A task may carry an abort hook:
/// invoked instead of run() when the pool discards the task before it
/// started (ThreadPool::cancel_pending), it must complete the task's
/// observable state (future, batch counter) exceptionally so waiters wake.
class Task {
 public:
  Task() = default;
  template <typename Fn>
  explicit Task(Fn fn) : impl_(std::make_unique<Impl<Fn, std::nullptr_t>>(std::move(fn), nullptr)) {}
  template <typename Fn, typename Ab>
  Task(Fn fn, Ab abort_fn)
      : impl_(std::make_unique<Impl<Fn, Ab>>(std::move(fn), std::move(abort_fn))) {}

  explicit operator bool() const { return impl_ != nullptr; }
  void operator()() { impl_->run(); }
  /// Discard notification; no-op for tasks without an abort hook.
  void abort() { impl_->abort(); }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual void run() = 0;
    virtual void abort() = 0;
  };
  template <typename Fn, typename Ab>
  struct Impl final : Base {
    Impl(Fn f, Ab a) : fn(std::move(f)), abort_fn(std::move(a)) {}
    void run() override { fn(); }
    void abort() override {
      if constexpr (!std::is_same_v<Ab, std::nullptr_t>) abort_fn();
    }
    Fn fn;
    Ab abort_fn;
  };
  std::unique_ptr<Base> impl_;
};

/// Shared completion state behind a TaskFuture.
struct FutureStateBase {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
};
template <typename T>
struct FutureState : FutureStateBase {
  std::optional<T> value;
};
template <>
struct FutureState<void> : FutureStateBase {};

/// One failed index of a parallel_for batch.
struct ForFailure {
  std::size_t index = 0;
  std::exception_ptr error;
};

/// Completion/error state of one parallel_for batch.  Heap-allocated and
/// shared (shared_ptr) between the owner and every chunk: the last chunk's
/// completion bookkeeping may still be running when the owner wakes, so the
/// state must not live on the owner's stack.
struct ForState {
  std::atomic<std::size_t> remaining{0};
  std::mutex wait_mutex;
  std::condition_variable cv;
  bool done = false;  ///< guarded by wait_mutex; the owner's return gate
  std::mutex error_mutex;
  std::vector<ForFailure> failures;

  /// Rethrows the failure with the lowest task index (deterministic: the
  /// one a serial loop would have hit first).  util::Error subclasses pass
  /// through unchanged; anything else is wrapped into TaskError.
  void rethrow_first();
};

}  // namespace detail

/// Handle to a submitted task's eventual result.  get() *helps* the pool
/// while waiting (runs queued tasks on the calling thread), so blocking on a
/// future from inside a pool task is deadlock-free.
template <typename T>
class TaskFuture {
 public:
  TaskFuture() = default;
  bool valid() const { return state_ != nullptr; }

  /// Waits for completion (helping), then returns the task's result or
  /// rethrows its exception.  Consumes the result: call at most once.
  T get();

  /// Waits up to `timeout` for completion without consuming the result.
  /// Returns true once the task is done (get() will not block), false on
  /// deadline.  Unlike get() this never helps the pool: running an
  /// arbitrary queued task could overshoot the deadline, and callers use
  /// this exactly when the deadline matters (request timeouts, shutdown
  /// drains).
  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout);

 private:
  friend class ThreadPool;
  TaskFuture(ThreadPool* pool, std::shared_ptr<detail::FutureState<T>> state)
      : pool_(pool), state_(std::move(state)) {}

  ThreadPool* pool_ = nullptr;
  std::shared_ptr<detail::FutureState<T>> state_;
};

class ThreadPool {
 public:
  /// `threads` counts executing threads: 0 resolves via default_threads()
  /// (PMACX_THREADS, else the hardware thread count); ≤ 1 spawns no workers
  /// and every operation runs inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  /// Joins the workers.  Tasks still queued at destruction are drained (run
  /// to completion on the exiting workers) rather than dropped, so futures
  /// on submitted work always complete.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// PMACX_THREADS when set to a positive integer, else the hardware thread
  /// count (min 1).  Invalid PMACX_THREADS values fall back to 1 with a
  /// warning rather than aborting a long run.
  static std::size_t default_threads();
  /// 0 → default_threads(); anything else unchanged.
  static std::size_t resolve_threads(std::size_t requested);

  std::size_t worker_count() const { return workers_.size(); }
  /// True when everything runs inline on the calling thread.
  bool serial() const { return workers_.empty(); }

  /// Process-unique id of this pool (assigned at construction, also for
  /// serial pools).  Worker threads are named "pmx<id>.w<index>"
  /// (pthread_setname_np, best-effort) so stack dumps from chaos runs or
  /// sanitizer reports attribute a thread to its pool; the id keeps names
  /// collision-free across the lazily created global pool and ad-hoc pools.
  std::uint64_t pool_id() const { return pool_id_; }

  /// Schedules `fn` (serial pools run it inline immediately).
  template <typename Fn>
  auto submit(Fn fn) -> TaskFuture<std::invoke_result_t<Fn&>>;

  /// Runs fn(0) … fn(count-1), distributing contiguous chunks of at least
  /// `grain` indices across the pool; the caller participates.  Returns
  /// after every index ran (or its chunk aborted on exception); then
  /// rethrows the lowest failed index's error (see TaskError).
  template <typename Fn>
  void parallel_for(std::size_t count, Fn&& fn, std::size_t grain = 1);

  /// parallel_for that collects fn(i) into slot i of the result — output
  /// order is deterministic regardless of scheduling.  T must be
  /// default-constructible and move-assignable.
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t count, Fn&& fn, std::size_t grain = 1);

  /// Runs one queued task on the calling thread if any is available.
  /// Public so blocked waiters (futures, nested batches) can help.
  bool run_pending_task();

  /// Discards every queued-but-not-started task, completing each one's
  /// observable state (its future, or its parallel_for batch entry) with
  /// CancelledError so waiters wake instead of hanging.  Already running
  /// tasks are unaffected — threads cannot be preempted — so a server
  /// shutdown bounds its wait by cancelling the queue and joining only the
  /// in-flight work (which per-request deadlines keep short).  Returns the
  /// number of tasks discarded.  Safe to call concurrently with submits;
  /// tasks enqueued after the call may run normally.
  std::size_t cancel_pending();

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<detail::Task> tasks;
  };

  void enqueue(detail::Task task);
  detail::Task take_task(std::size_t start);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_ = false;  ///< guarded by wake_mutex_
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::uint64_t pool_id_ = 0;

  static thread_local ThreadPool* tls_pool_;
  static thread_local int tls_worker_;
};

// ---------------------------------------------------------------------------
// Template implementations.

template <typename T>
T TaskFuture<T>::get() {
  PMACX_CHECK(state_ != nullptr, "TaskFuture::get on an empty future");
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      if (state_->done) break;
    }
    // Help the pool instead of sleeping; fall back to a short timed wait so
    // a task running on another thread still wakes us promptly.
    if (pool_ == nullptr || !pool_->run_pending_task()) {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->cv.wait_for(lock, std::chrono::milliseconds(1),
                          [&] { return state_->done; });
      if (state_->done) break;
    }
  }
  if (state_->error) std::rethrow_exception(state_->error);
  if constexpr (!std::is_void_v<T>) return std::move(*state_->value);
}

template <typename T>
template <typename Rep, typename Period>
bool TaskFuture<T>::wait_for(std::chrono::duration<Rep, Period> timeout) {
  PMACX_CHECK(state_ != nullptr, "TaskFuture::wait_for on an empty future");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_until(lock, deadline, [&] { return state_->done; });
}

template <typename Fn>
auto ThreadPool::submit(Fn fn) -> TaskFuture<std::invoke_result_t<Fn&>> {
  using R = std::invoke_result_t<Fn&>;
  auto state = std::make_shared<detail::FutureState<R>>();
  auto run = [state, fn = std::move(fn)]() mutable {
    try {
      if constexpr (std::is_void_v<R>) {
        fn();
      } else {
        state->value.emplace(fn());
      }
    } catch (...) {
      state->error = std::current_exception();
    }
    {
      std::scoped_lock lock(state->mutex);
      state->done = true;
    }
    state->cv.notify_all();
  };
  if (serial()) {
    run();  // 1-thread degeneracy: execute inline, same error capture
  } else {
    auto abort = [state] {
      {
        std::scoped_lock lock(state->mutex);
        if (!state->done) {
          state->error = std::make_exception_ptr(
              CancelledError("task cancelled before it started (ThreadPool::cancel_pending)"));
          state->done = true;
        }
      }
      state->cv.notify_all();
    };
    enqueue(detail::Task(std::move(run), std::move(abort)));
  }
  return TaskFuture<R>(this, std::move(state));
}

template <typename Fn>
void ThreadPool::parallel_for(std::size_t count, Fn&& fn, std::size_t grain) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t workers = worker_count();
  std::size_t chunks = 1;
  if (workers > 0 && count > grain) {
    // Over-decompose 4× so stealing balances uneven per-index cost.
    chunks = std::min((count + grain - 1) / grain,
                      std::max<std::size_t>(std::size_t{1}, workers * 4));
  }

  if (chunks == 1) {
    // Single chunk: run inline with the exact serial error semantics.
    detail::ForState state;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        state.failures.push_back({i, std::current_exception()});
        break;  // a serial loop would not have run the rest
      }
    }
    state.rethrow_first();
    return;
  }

  // The state is shared (not stack-allocated) and every enqueued chunk holds
  // its own reference: the owner may wake and return while the final chunk
  // is still between its decrement and releasing wait_mutex, so the mutex
  // and condition variable must outlive the owner's frame.
  auto state = std::make_shared<detail::ForState>();
  state->remaining.store(chunks, std::memory_order_relaxed);

  auto run_chunk = [state, &fn, count, chunks](std::size_t c) {
    const std::size_t begin = c * count / chunks;
    const std::size_t end = (c + 1) * count / chunks;
    for (std::size_t i = begin; i < end; ++i) {
      try {
        fn(i);
      } catch (...) {
        std::scoped_lock lock(state->error_mutex);
        state->failures.push_back({i, std::current_exception()});
        break;  // a serial loop would not have run the rest of this chunk
      }
    }
    if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk out: set `done` and notify under wait_mutex so the owner
      // can only observe completion after this thread holds the same lock —
      // it cannot miss the notify between its check and its wait.
      std::scoped_lock lock(state->wait_mutex);
      state->done = true;
      state->cv.notify_all();
    }
  };

  for (std::size_t c = 1; c < chunks; ++c) {
    // Copy run_chunk (and with it a state reference) into each task: the
    // task may outlive the owner's stack frame for the reason above.  The
    // abort hook stands in for a discarded chunk: it records a cancellation
    // failure at the chunk's first index and completes the batch counter so
    // the owner's wait terminates.
    enqueue(detail::Task([run_chunk, c] { run_chunk(c); },
                         [state, c, count, chunks] {
                           const std::size_t begin = c * count / chunks;
                           {
                             std::scoped_lock lock(state->error_mutex);
                             state->failures.push_back(
                                 {begin, std::make_exception_ptr(CancelledError(
                                             "parallel batch cancelled before chunk started "
                                             "(ThreadPool::cancel_pending)"))});
                           }
                           if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                             std::scoped_lock lock(state->wait_mutex);
                             state->done = true;
                             state->cv.notify_all();
                           }
                         }));
  }
  run_chunk(0);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->wait_mutex);
      if (state->done) break;
    }
    if (run_pending_task()) continue;  // help instead of blocking
    std::unique_lock<std::mutex> lock(state->wait_mutex);
    if (state->cv.wait_for(lock, std::chrono::milliseconds(1),
                           [&] { return state->done; })) {
      break;
    }
  }
  state->rethrow_first();
}

template <typename T, typename Fn>
std::vector<T> ThreadPool::parallel_map(std::size_t count, Fn&& fn, std::size_t grain) {
  std::vector<T> results(count);
  parallel_for(
      count, [&](std::size_t i) { results[i] = fn(i); }, grain);
  return results;
}

}  // namespace pmacx::util
