#include "util/mmap_file.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PMACX_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pmacx::util {

#ifdef PMACX_HAVE_MMAP

bool MappedFile::open(const std::string& path) {
  close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return false;
  }
  if (st.st_size == 0) {
    // Nothing to map; an empty view is still a successful zero-copy "load".
    ::close(fd);
    mapped_empty_ = true;
    return true;
  }
  void* mapped = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (mapped == MAP_FAILED) return false;
  data_ = mapped;
  size_ = static_cast<std::size_t>(st.st_size);
  return true;
}

void MappedFile::close() {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_empty_ = false;
}

bool MappedFile::supported() { return true; }

#else  // no mmap on this platform: open() always reports failure so the
       // trace loaders take the buffered-read fallback.

bool MappedFile::open(const std::string&) { return false; }
void MappedFile::close() {
  data_ = nullptr;
  size_ = 0;
  mapped_empty_ = false;
}
bool MappedFile::supported() { return false; }

#endif

}  // namespace pmacx::util
