#include "util/faultinject.hpp"

#include "util/error.hpp"

namespace pmacx::util {

std::string Corruption::describe() const {
  switch (kind) {
    case Kind::BitFlip:
      return "bitflip@" + std::to_string(position) + "." + std::to_string(value & 7);
    case Kind::Truncate: return "truncate@" + std::to_string(position);
    case Kind::MutateByte:
      return "byte@" + std::to_string(position) + "=" + std::to_string(value);
    case Kind::Extend:
      return "extend+" + std::to_string(position) + "#" + std::to_string(value);
  }
  return "unknown";
}

std::string apply_corruption(std::string bytes, const Corruption& corruption) {
  switch (corruption.kind) {
    case Corruption::Kind::BitFlip:
      PMACX_CHECK(corruption.position < bytes.size(), "bit flip past end of input");
      bytes[corruption.position] = static_cast<char>(
          static_cast<unsigned char>(bytes[corruption.position]) ^
          (1u << (corruption.value & 7)));
      break;
    case Corruption::Kind::Truncate:
      PMACX_CHECK(corruption.position <= bytes.size(), "truncation past end of input");
      bytes.resize(corruption.position);
      break;
    case Corruption::Kind::MutateByte:
      PMACX_CHECK(corruption.position < bytes.size(), "mutation past end of input");
      bytes[corruption.position] = static_cast<char>(corruption.value);
      break;
    case Corruption::Kind::Extend: {
      // Deterministic garbage derived from the seed byte.
      std::uint64_t state = corruption.value + 1;
      for (std::size_t i = 0; i < corruption.position; ++i)
        bytes.push_back(static_cast<char>(splitmix64(state) & 0xFF));
      break;
    }
  }
  return bytes;
}

Corruption random_corruption(Rng& rng, std::size_t size) {
  Corruption corruption;
  // Weight toward bit-flips and mutations — the corruptions that exercise
  // checksum and bounds paths rather than just the truncation path.
  const std::uint64_t draw = rng.below(10);
  if (draw < 4) {
    corruption.kind = Corruption::Kind::BitFlip;
    corruption.position = size > 0 ? rng.below(size) : 0;
    corruption.value = static_cast<std::uint8_t>(rng.below(8));
  } else if (draw < 7) {
    corruption.kind = Corruption::Kind::MutateByte;
    corruption.position = size > 0 ? rng.below(size) : 0;
    corruption.value = static_cast<std::uint8_t>(rng.below(256));
  } else if (draw < 9) {
    corruption.kind = Corruption::Kind::Truncate;
    corruption.position = size > 0 ? rng.below(size) : 0;
  } else {
    corruption.kind = Corruption::Kind::Extend;
    corruption.position = 1 + rng.below(64);
    corruption.value = static_cast<std::uint8_t>(rng.below(256));
  }
  return corruption;
}

std::vector<Corruption> truncation_sweep(std::size_t size, std::size_t step) {
  PMACX_CHECK(step > 0, "truncation sweep step must be positive");
  std::vector<Corruption> plan;
  plan.reserve(size / step + 1);
  for (std::size_t at = 0; at < size; at += step)
    plan.push_back({Corruption::Kind::Truncate, at, 0});
  return plan;
}

std::vector<Corruption> bit_flip_sweep(std::size_t prefix_bytes) {
  std::vector<Corruption> plan;
  plan.reserve(prefix_bytes * 8);
  for (std::size_t byte = 0; byte < prefix_bytes; ++byte)
    for (std::uint8_t bit = 0; bit < 8; ++bit)
      plan.push_back({Corruption::Kind::BitFlip, byte, bit});
  return plan;
}

}  // namespace pmacx::util
