// Crash-safe file persistence.
//
// Everything pmacx persists mid-run (checkpoints, collected signatures,
// metrics snapshots) must survive a kill -9 at any instant with one of two
// outcomes: the old file is intact, or the new file is complete — never a
// torn half-write that a resume later mistakes for data.  Two layers provide
// that:
//
//   * write_file_atomic: write to a same-directory temp file, fsync it,
//     rename() over the destination (atomic on POSIX), then fsync the
//     directory so the rename itself is durable.  A crash before the rename
//     leaves the old file untouched; every *reported* failure (EIO, ENOSPC,
//     failed fsync, failed rename) unlinks the temp before rethrowing, so
//     only a genuine process death can orphan one — and the startup
//     scrubber (ingest::Scrub) reclaims those.
//
// All syscalls go through util::io, so every path here is exercised under
// the seeded storage-fault injector (tools/pmacx_diskchaos.cpp) and every
// failure surfaces as a typed util::io::IoError with op + path + errno.
//
//   * checked records: save_checked appends a fixed trailer — payload length
//     and CRC-32 (util::crc32) — so load_checked can tell a complete record
//     from a torn or bit-rotted one and throw util::ParseError instead of
//     returning garbage.  try_load_checked is the resume-path variant:
//     missing or invalid files return nullopt (the caller redoes the work)
//     rather than aborting a recovery that exists precisely because files
//     can be damaged.
#pragma once

#include <optional>
#include <string>

namespace pmacx::util {

/// Atomically replaces `path` with `bytes` (temp file + fsync + rename +
/// directory fsync).  Throws util::Error on any I/O failure; on failure the
/// previous file content, if any, is untouched.
void write_file_atomic(const std::string& path, const std::string& bytes);

/// Reads the whole file; throws util::Error when it cannot be opened.
std::string read_file(const std::string& path);

/// write_file_atomic of `payload` + the 12-byte integrity trailer
/// (u64 payload length, u32 CRC-32 of the payload, both little-endian).
void save_checked(const std::string& path, const std::string& payload);

/// Loads a save_checked file, validates the trailer, and returns the
/// payload.  Throws util::ParseError (section "atomic.trailer") on
/// truncation, length mismatch, or CRC failure; util::Error when the file
/// cannot be opened.
std::string load_checked(const std::string& path);

/// load_checked that treats every failure (missing file, torn write, CRC
/// mismatch) as "no usable record": returns nullopt instead of throwing.
/// The crash-recovery primitive: callers redo the work a bad record stood
/// for.  (util::io::SimulatedCrash is the one exception and is rethrown —
/// the injector's crash model must not be absorbed by recovery paths.)
std::optional<std::string> try_load_checked(const std::string& path);

/// Creates `dir` (and parents) if missing.  Throws util::Error when the
/// path exists but is not a directory or creation fails.
void ensure_directory(const std::string& dir);

}  // namespace pmacx::util
