// Deterministic random number generation.
//
// Every stochastic choice in pmacx (synthetic address streams, noise on
// scaling laws, k-means seeding) draws from an Xoshiro256** stream seeded by
// SplitMix64 so that the entire pipeline — trace collection through
// prediction — is reproducible bit-for-bit across runs and platforms.  Seeds
// are derived hierarchically (app → rank → block) via `derive_seed` so that
// changing one block's stream does not perturb any other stream.
#pragma once

#include <cstdint>

namespace pmacx::util {

/// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
/// Used for seeding and for hierarchical seed derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derives an independent child seed from a parent seed and an index.
/// derive_seed(s, i) != derive_seed(s, j) for i != j with high probability.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t index);

/// Xoshiro256** PRNG — fast, high-quality, 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words through SplitMix64 as recommended by the
  /// generator's authors; any seed (including 0) is valid.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniformly random bits.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal deviate (Box–Muller, stateless variant using two draws).
  double normal();

  /// Normal deviate with given mean and standard deviation.
  double normal(double mean, double stddev);

 private:
  std::uint64_t state_[4];
};

}  // namespace pmacx::util
