// AVX2 kernel implementations.  This is the only translation unit compiled
// with -mavx2 (and only when PMACX_DISABLE_AVX2 is off); nothing here runs
// unless the runtime CPUID check in simd.cpp passed.
//
// Identity discipline: each lane carries one element, and each lane's
// arithmetic is the exact operation sequence of the scalar kernel — same
// additions in the same order, mul and add kept as separate instructions
// (no FMA: -mavx2 does not enable it, and fusing would change rounding).
// Tail elements (count % 4) run the scalar loop verbatim.

#include "util/simd.hpp"

#if !defined(PMACX_DISABLE_AVX2) && defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

namespace pmacx::util::simd {
namespace {

constexpr std::size_t kLanes = 4;  // doubles / u64s per ymm register

void avx2_col_mean(const double* y, std::size_t stride, std::size_t count,
                   std::size_t n, double* out) {
  const __m256d inv = _mm256_set1_pd(static_cast<double>(n));
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    __m256d sum = _mm256_setzero_pd();
    for (std::size_t s = 0; s < n; ++s) {
      sum = _mm256_add_pd(sum, _mm256_loadu_pd(y + s * stride + e));
    }
    _mm256_storeu_pd(out + e, _mm256_div_pd(sum, inv));
  }
  for (; e < count; ++e) {
    double sum = 0.0;
    for (std::size_t s = 0; s < n; ++s) sum += y[s * stride + e];
    out[e] = sum / static_cast<double>(n);
  }
}

void avx2_col_sst(const double* y, std::size_t stride, std::size_t count,
                  std::size_t n, const double* mean, double* out) {
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    __m256d total = _mm256_setzero_pd();
    const __m256d m = _mm256_loadu_pd(mean + e);
    for (std::size_t s = 0; s < n; ++s) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(y + s * stride + e), m);
      total = _mm256_add_pd(total, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + e, total);
  }
  for (; e < count; ++e) {
    double total = 0.0;
    const double m = mean[e];
    for (std::size_t s = 0; s < n; ++s) {
      const double d = y[s * stride + e] - m;
      total += d * d;
    }
    out[e] = total;
  }
}

void avx2_col_sxy(const double* y, std::size_t stride, std::size_t count,
                  std::size_t n, const double* dx, const double* mean_y,
                  double* out) {
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    __m256d total = _mm256_setzero_pd();
    const __m256d m = _mm256_loadu_pd(mean_y + e);
    for (std::size_t s = 0; s < n; ++s) {
      const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(y + s * stride + e), m);
      total = _mm256_add_pd(total, _mm256_mul_pd(_mm256_set1_pd(dx[s]), d));
    }
    _mm256_storeu_pd(out + e, total);
  }
  for (; e < count; ++e) {
    double total = 0.0;
    const double m = mean_y[e];
    for (std::size_t s = 0; s < n; ++s) {
      total += dx[s] * (y[s * stride + e] - m);
    }
    out[e] = total;
  }
}

void avx2_col_sse_affine(const double* y, std::size_t stride,
                         std::size_t count, std::size_t n, const double* t,
                         const double* a, const double* b, double* out) {
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    __m256d total = _mm256_setzero_pd();
    const __m256d ae = _mm256_loadu_pd(a + e);
    const __m256d be = _mm256_loadu_pd(b + e);
    for (std::size_t s = 0; s < n; ++s) {
      const __m256d pred =
          _mm256_add_pd(ae, _mm256_mul_pd(be, _mm256_set1_pd(t[s])));
      const __m256d r =
          _mm256_sub_pd(_mm256_loadu_pd(y + s * stride + e), pred);
      total = _mm256_add_pd(total, _mm256_mul_pd(r, r));
    }
    _mm256_storeu_pd(out + e, total);
  }
  for (; e < count; ++e) {
    double total = 0.0;
    const double av = a[e];
    const double bv = b[e];
    for (std::size_t s = 0; s < n; ++s) {
      const double r = y[s * stride + e] - (av + bv * t[s]);
      total += r * r;
    }
    out[e] = total;
  }
}

void avx2_col_sse_affine_div(const double* y, std::size_t stride,
                             std::size_t count, std::size_t n,
                             const double* p, const double* a, const double* b,
                             double* out) {
  std::size_t e = 0;
  for (; e + kLanes <= count; e += kLanes) {
    __m256d total = _mm256_setzero_pd();
    const __m256d ae = _mm256_loadu_pd(a + e);
    const __m256d be = _mm256_loadu_pd(b + e);
    for (std::size_t s = 0; s < n; ++s) {
      const __m256d pred =
          _mm256_add_pd(ae, _mm256_div_pd(be, _mm256_set1_pd(p[s])));
      const __m256d r =
          _mm256_sub_pd(_mm256_loadu_pd(y + s * stride + e), pred);
      total = _mm256_add_pd(total, _mm256_mul_pd(r, r));
    }
    _mm256_storeu_pd(out + e, total);
  }
  for (; e < count; ++e) {
    double total = 0.0;
    const double av = a[e];
    const double bv = b[e];
    for (std::size_t s = 0; s < n; ++s) {
      const double r = y[s * stride + e] - (av + bv / p[s]);
      total += r * r;
    }
    out[e] = total;
  }
}

int avx2_find_tag(const std::uint64_t* tags, const std::uint8_t* valid,
                  std::size_t ways, std::uint64_t needle) {
  const __m256i want = _mm256_set1_epi64x(static_cast<long long>(needle));
  std::size_t w = 0;
  for (; w + kLanes <= ways; w += kLanes) {
    const __m256i lanes = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(tags + w));
    int mask = _mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(lanes, want)));
    // Ascending bit order = ascending way order, so the first *valid* hit
    // matches the scalar scan even when an invalid way's stale tag collides.
    while (mask != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(mask));
      const std::size_t cand = w + static_cast<std::size_t>(bit);
      if (valid[cand]) return static_cast<int>(cand);
      mask &= mask - 1;
    }
  }
  for (; w < ways; ++w) {
    if (valid[w] && tags[w] == needle) return static_cast<int>(w);
  }
  return -1;
}

/// One demand probe: hit way (with *hit = 1), else the replacement victim
/// (first invalid way, else the way holding rank ways-1).  Inlined into
/// the batch loops below, which hoists the loop-invariant vector constants
/// out of the per-probe work.  With move-to-front ranks the victim search
/// is a single equality scan — rank ways-1 names the eviction candidate
/// directly — instead of the mispredict-prone argmin a timestamp encoding
/// needs over what is essentially random data.
inline int avx2_probe_set(const std::uint64_t* tags, const std::uint8_t* valid,
                          const std::uint16_t* ranks, std::size_t ways,
                          std::uint64_t needle, int* hit) {
  const __m256i want = _mm256_set1_epi64x(static_cast<long long>(needle));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t first_invalid = ways;
  std::size_t w = 0;
  for (; w + kLanes <= ways; w += kLanes) {
    const __m256i lanes = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(tags + w));
    // Valid bytes widened to per-lane masks, so a stale tag of an invalid
    // way can never report a hit and the match scan needs no byte loop.
    std::int32_t valid4;
    std::memcpy(&valid4, valid + w, sizeof valid4);
    const __m256i vmask = _mm256_cmpgt_epi64(
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(valid4)), zero);
    const int vbits = _mm256_movemask_pd(_mm256_castsi256_pd(vmask));
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_and_si256(_mm256_cmpeq_epi64(lanes, want), vmask)));
    if (mask != 0) {
      // Lowest set bit = lowest way; at most one valid way can match.
      *hit = 1;
      return static_cast<int>(
          w + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(mask))));
    }
    // Steady-state sets are fully valid, so this branch predicts cleanly.
    if (first_invalid == ways && vbits != 0xF) {
      first_invalid =
          w + static_cast<std::size_t>(
                  __builtin_ctz(static_cast<unsigned>(~vbits & 0xF)));
    }
  }
  for (; w < ways; ++w) {
    if (valid[w] != 0) {
      if (tags[w] == needle) {
        *hit = 1;
        return static_cast<int>(w);
      }
    } else if (first_invalid == ways) {
      first_invalid = w;
    }
  }
  *hit = 0;
  if (first_invalid != ways) return static_cast<int>(first_invalid);
  const std::uint16_t last = static_cast<std::uint16_t>(ways - 1);
  w = 0;
  if (ways >= 16) {
    const __m256i last16 = _mm256_set1_epi16(static_cast<short>(last));
    for (; w + 16 <= ways; w += 16) {
      const int m = _mm256_movemask_epi8(_mm256_cmpeq_epi16(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ranks + w)),
          last16));
      if (m != 0) {
        return static_cast<int>(
            w + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(m)) / 2));
      }
    }
  }
  if (w + 8 <= ways) {
    const __m128i last8 = _mm_set1_epi16(static_cast<short>(last));
    const int m = _mm_movemask_epi8(_mm_cmpeq_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ranks + w)), last8));
    if (m != 0) {
      return static_cast<int>(
          w + static_cast<std::size_t>(__builtin_ctz(static_cast<unsigned>(m)) / 2));
    }
    w += 8;
  }
  for (; w < ways; ++w) {
    if (ranks[w] == last) return static_cast<int>(w);
  }
  return static_cast<int>(ways - 1);  // unreachable for a well-formed permutation
}

/// Moves way w (set-relative) to rank 0; ways with smaller ranks slide up.
/// Signed 16-bit compares are exact because ways is capped at 32768.
inline void avx2_promote(std::uint16_t* ranks, std::uint32_t ways,
                         std::size_t w) {
  const std::uint16_t r = ranks[w];
  if (r == 0) return;  // already most recent: nothing moves
  std::uint32_t i = 0;
  if (ways >= 16) {
    const __m256i rs = _mm256_set1_epi16(static_cast<short>(r));
    for (; i + 16 <= ways; i += 16) {
      __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ranks + i));
      // cmpgt yields -1 where v < r; subtracting it increments those lanes.
      v = _mm256_sub_epi16(v, _mm256_cmpgt_epi16(rs, v));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(ranks + i), v);
    }
  }
  if (i + 8 <= ways) {
    const __m128i rs = _mm_set1_epi16(static_cast<short>(r));
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ranks + i));
    v = _mm_sub_epi16(v, _mm_cmpgt_epi16(rs, v));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ranks + i), v);
    i += 8;
  }
  for (; i < ways; ++i) {
    ranks[i] = static_cast<std::uint16_t>(ranks[i] + (ranks[i] < r ? 1 : 0));
  }
  ranks[w] = 0;
}

// ---------------------------------------------------------------------------
// Set-operation policies.  The batch drivers below are templated on one of
// these so the common associativities (2/4/8 ways — every level of the
// bundled machine targets except 16-way LLCs) run fully unrolled probe and
// promote sequences with no way loop at all; Generic handles everything
// else.  The dispatch happens once per batch, not per probe.
// ---------------------------------------------------------------------------

struct SetOpsGeneric {
  static inline int probe(const std::uint64_t* tags, const std::uint8_t* valid,
                          const std::uint16_t* ranks, std::size_t ways,
                          std::uint64_t needle, int* hit) {
    return avx2_probe_set(tags, valid, ranks, ways, needle, hit);
  }
  static inline void promote(std::uint16_t* ranks, std::uint32_t ways,
                             std::size_t w) {
    avx2_promote(ranks, ways, w);
  }
};

struct SetOps2 {
  static inline int probe(const std::uint64_t* tags, const std::uint8_t* valid,
                          const std::uint16_t* ranks, std::size_t,
                          std::uint64_t needle, int* hit) {
    const bool v0 = valid[0] != 0;
    const bool v1 = valid[1] != 0;
    if (v0 && tags[0] == needle) {
      *hit = 1;
      return 0;
    }
    if (v1 && tags[1] == needle) {
      *hit = 1;
      return 1;
    }
    *hit = 0;
    if (!v0) return 0;
    if (!v1) return 1;
    return ranks[0] == 1 ? 0 : 1;
  }
  static inline void promote(std::uint16_t* ranks, std::uint32_t,
                             std::size_t w) {
    if (ranks[w] != 0) {
      ranks[w] = 0;
      ranks[w ^ 1] = 1;
    }
  }
};

struct SetOps4 {
  static inline int probe(const std::uint64_t* tags, const std::uint8_t* valid,
                          const std::uint16_t* ranks, std::size_t,
                          std::uint64_t needle, int* hit) {
    const __m256i want = _mm256_set1_epi64x(static_cast<long long>(needle));
    const __m256i zero = _mm256_setzero_si256();
    const __m256i lanes =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags));
    std::int32_t valid4;
    std::memcpy(&valid4, valid, sizeof valid4);
    const __m256i vmask = _mm256_cmpgt_epi64(
        _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(valid4)), zero);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_and_si256(_mm256_cmpeq_epi64(lanes, want), vmask)));
    if (mask != 0) {
      *hit = 1;
      return __builtin_ctz(static_cast<unsigned>(mask));
    }
    *hit = 0;
    const int vbits = _mm256_movemask_pd(_mm256_castsi256_pd(vmask));
    if (vbits != 0xF) return __builtin_ctz(static_cast<unsigned>(~vbits & 0xF));
    const int m = _mm_movemask_epi8(_mm_cmpeq_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ranks)),
        _mm_set1_epi16(3)));
    return __builtin_ctz(static_cast<unsigned>(m)) / 2;
  }
  static inline void promote(std::uint16_t* ranks, std::uint32_t,
                             std::size_t w) {
    const std::uint16_t r = ranks[w];
    if (r == 0) return;
    __m128i v = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(ranks));
    v = _mm_sub_epi16(v, _mm_cmpgt_epi16(_mm_set1_epi16(static_cast<short>(r)), v));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(ranks), v);
    ranks[w] = 0;
  }
};

struct SetOps8 {
  static inline int probe(const std::uint64_t* tags, const std::uint8_t* valid,
                          const std::uint16_t* ranks, std::size_t,
                          std::uint64_t needle, int* hit) {
    const __m256i want = _mm256_set1_epi64x(static_cast<long long>(needle));
    const __m256i zero = _mm256_setzero_si256();
    const __m256i t0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags));
    const __m256i t1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags + 4));
    std::int64_t valid8;
    std::memcpy(&valid8, valid, sizeof valid8);
    const __m128i vb = _mm_cvtsi64_si128(valid8);
    const __m256i vm0 = _mm256_cmpgt_epi64(_mm256_cvtepu8_epi64(vb), zero);
    const __m256i vm1 = _mm256_cmpgt_epi64(
        _mm256_cvtepu8_epi64(_mm_srli_si128(vb, 4)), zero);
    const int m0 = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_and_si256(_mm256_cmpeq_epi64(t0, want), vm0)));
    const int m1 = _mm256_movemask_pd(_mm256_castsi256_pd(
        _mm256_and_si256(_mm256_cmpeq_epi64(t1, want), vm1)));
    const int mask = m0 | (m1 << 4);
    if (mask != 0) {
      *hit = 1;
      return __builtin_ctz(static_cast<unsigned>(mask));
    }
    *hit = 0;
    const int vbits = _mm256_movemask_pd(_mm256_castsi256_pd(vm0)) |
                      (_mm256_movemask_pd(_mm256_castsi256_pd(vm1)) << 4);
    if (vbits != 0xFF)
      return __builtin_ctz(static_cast<unsigned>(~vbits & 0xFF));
    const int m = _mm_movemask_epi8(_mm_cmpeq_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ranks)),
        _mm_set1_epi16(7)));
    return __builtin_ctz(static_cast<unsigned>(m)) / 2;
  }
  static inline void promote(std::uint16_t* ranks, std::uint32_t,
                             std::size_t w) {
    const std::uint16_t r = ranks[w];
    if (r == 0) return;
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(ranks));
    v = _mm_sub_epi16(v, _mm_cmpgt_epi16(_mm_set1_epi16(static_cast<short>(r)), v));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(ranks), v);
    ranks[w] = 0;
  }
};

template <class Ops>
ProbeReplay probe_stream_impl(const SetView& view, const std::uint64_t* lines,
                              const std::uint8_t* stores,
                              const std::uint32_t* indices, std::size_t count,
                              std::uint32_t* misses) {
  ProbeReplay r;
  const std::uint32_t ways = view.ways;
  // Probes visit sets in effectively random order, so large levels pay a
  // host-cache miss per metadata row; prefetching a few probes ahead
  // overlaps those misses with the current probe's work.
  constexpr std::size_t kAhead = 8;
  for (std::size_t k = 0; k < count; ++k) {
    if (k + kAhead < count) {
      const std::uint32_t pf = indices != nullptr
                                   ? indices[k + kAhead]
                                   : static_cast<std::uint32_t>(k + kAhead);
      const std::size_t pb =
          static_cast<std::size_t>(lines[pf] & view.set_mask) * ways;
      __builtin_prefetch(view.tags + pb, 1);
      __builtin_prefetch(view.ranks + pb, 1);
    }
    const std::uint32_t p =
        indices != nullptr ? indices[k] : static_cast<std::uint32_t>(k);
    const std::uint64_t line = lines[p];
    const std::size_t base =
        static_cast<std::size_t>(line & view.set_mask) * ways;
    int hit = 0;
    const std::size_t wr = static_cast<std::size_t>(Ops::probe(
        view.tags + base, view.valid + base, view.ranks + base, ways, line,
        &hit));
    const std::size_t w = base + wr;
    if (hit != 0) {
      if (view.lru != 0) Ops::promote(view.ranks + base, ways, wr);
      if (stores[p] != 0) view.dirty[w] = 1;
      ++r.hits;
    } else {
      r.writebacks += view.valid[w] != 0 && view.dirty[w] != 0;
      view.tags[w] = line;
      view.valid[w] = 1;
      Ops::promote(view.ranks + base, ways, wr);
      view.dirty[w] = stores[p];
      misses[r.miss_count++] = p;
    }
  }
  return r;
}

template <class Ops>
ProbeReplay probe_grouped_impl(const SetView& view, const std::uint64_t* lines,
                               const std::uint8_t* stores,
                               std::uint8_t* resolved,
                               const std::uint32_t* grouped,
                               const std::uint32_t* set_start) {
  ProbeReplay r;
  const std::uint32_t ways = view.ways;
  const std::uint64_t nsets = view.set_mask + 1;
  for (std::uint64_t set = 0; set < nsets; ++set) {
    std::uint32_t k = set_start[set];
    const std::uint32_t end = set_start[set + 1];
    if (k == end) continue;
    const std::size_t base = static_cast<std::size_t>(set) * ways;
    for (; k < end; ++k) {
      const std::uint32_t p = grouped[k];
      const std::uint64_t line = lines[p];
      int hit = 0;
      const std::size_t wr = static_cast<std::size_t>(Ops::probe(
          view.tags + base, view.valid + base, view.ranks + base, ways, line,
          &hit));
      const std::size_t w = base + wr;
      if (hit != 0) {
        if (view.lru != 0) Ops::promote(view.ranks + base, ways, wr);
        if (stores[p] != 0) view.dirty[w] = 1;
        resolved[p] = 1;
        ++r.hits;
      } else {
        r.writebacks += view.valid[w] != 0 && view.dirty[w] != 0;
        view.tags[w] = line;
        view.valid[w] = 1;
        Ops::promote(view.ranks + base, ways, wr);
        view.dirty[w] = stores[p];
      }
    }
  }
  return r;
}

ProbeReplay avx2_probe_stream(const SetView& view, const std::uint64_t* lines,
                              const std::uint8_t* stores,
                              const std::uint32_t* indices, std::size_t count,
                              std::uint32_t* misses) {
  switch (view.ways) {
    case 2:
      return probe_stream_impl<SetOps2>(view, lines, stores, indices, count,
                                        misses);
    case 4:
      return probe_stream_impl<SetOps4>(view, lines, stores, indices, count,
                                        misses);
    case 8:
      return probe_stream_impl<SetOps8>(view, lines, stores, indices, count,
                                        misses);
    default:
      return probe_stream_impl<SetOpsGeneric>(view, lines, stores, indices,
                                              count, misses);
  }
}

ProbeReplay avx2_probe_grouped(const SetView& view, const std::uint64_t* lines,
                               const std::uint8_t* stores,
                               std::uint8_t* resolved,
                               const std::uint32_t* grouped,
                               const std::uint32_t* set_start) {
  switch (view.ways) {
    case 2:
      return probe_grouped_impl<SetOps2>(view, lines, stores, resolved,
                                         grouped, set_start);
    case 4:
      return probe_grouped_impl<SetOps4>(view, lines, stores, resolved,
                                         grouped, set_start);
    case 8:
      return probe_grouped_impl<SetOps8>(view, lines, stores, resolved,
                                         grouped, set_start);
    default:
      return probe_grouped_impl<SetOpsGeneric>(view, lines, stores, resolved,
                                               grouped, set_start);
  }
}

const Kernels kAvx2Kernels = {
    Level::Avx2,         avx2_col_mean,       avx2_col_sst,
    avx2_col_sxy,        avx2_col_sse_affine, avx2_col_sse_affine_div,
    avx2_find_tag,       avx2_probe_stream,   avx2_probe_grouped,
};

}  // namespace

const Kernels* avx2_kernels_impl() { return &kAvx2Kernels; }

}  // namespace pmacx::util::simd

#else  // PMACX_DISABLE_AVX2 or non-x86: no AVX2 code in this binary.

namespace pmacx::util::simd {
const Kernels* avx2_kernels_impl() { return nullptr; }
}  // namespace pmacx::util::simd

#endif
