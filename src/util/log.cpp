#include "util/log.hpp"

#include <cstdio>

namespace pmacx::util {
namespace {

LogLevel g_level = LogLevel::Info;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace pmacx::util
