#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pmacx::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

/// Serializes sink writes so lines from pool workers never interleave.
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::scoped_lock lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace pmacx::util
