// Chunked bump allocator for short-lived, uniformly-released scratch data:
// the SoA fitting batch buffers and the memsim trace-block staging both
// allocate thousands of small arrays per batch and free them all at once.
// An arena turns that into pointer bumps plus a handful of chunk mallocs
// that are amortized across every subsequent reset()/reuse cycle.
//
// All allocations are 32-byte aligned so SoA buffers can be loaded with
// full-width AVX2 instructions without alignment faults regardless of the
// allocation sequence that preceded them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace pmacx::util {

class Arena {
 public:
  static constexpr std::size_t kAlignment = 32;
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 18;  // 256 KiB

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < kAlignment ? kAlignment : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw 32-byte-aligned storage.  Never returns null; size 0 yields a
  /// valid, unique-enough pointer into the current chunk.
  void* allocate_bytes(std::size_t bytes) {
    const std::size_t need = round_up(bytes);
    if (current_ >= chunks_.size() || used_ + need > chunks_[current_].size) {
      advance_to_fit(need);
    }
    void* ptr = chunks_[current_].data.get() + used_;
    used_ += need;
    return ptr;
  }

  /// Typed uninitialized storage for `count` trivially-destructible Ts.
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is released without running destructors");
    static_assert(alignof(T) <= kAlignment);
    return static_cast<T*>(allocate_bytes(count * sizeof(T)));
  }

  /// Releases every allocation at once; chunk memory is retained for reuse,
  /// so a steady-state batch loop stops allocating after the first pass.
  void reset() {
    current_ = 0;
    used_ = 0;
  }

  /// Total bytes of chunk capacity currently owned (diagnostics).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const { ::operator delete[](p, std::align_val_t{kAlignment}); }
  };
  struct Chunk {
    std::unique_ptr<std::byte[], AlignedDelete> data;
    std::size_t size = 0;
  };

  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) & ~(kAlignment - 1);
  }

  void advance_to_fit(std::size_t need) {
    // Reuse the next retained chunk when it is big enough; otherwise grow.
    const std::size_t next = chunks_.empty() ? 0 : current_ + 1;
    if (next < chunks_.size() && chunks_[next].size >= need) {
      current_ = next;
      used_ = 0;
      return;
    }
    const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    Chunk chunk;
    chunk.data.reset(static_cast<std::byte*>(
        ::operator new[](size, std::align_val_t{kAlignment})));
    chunk.size = size;
    chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(next),
                   std::move(chunk));
    current_ = next;
    used_ = 0;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // index of the chunk being bumped
  std::size_t used_ = 0;     // bytes consumed in chunks_[current_]
};

}  // namespace pmacx::util
