// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used by the binary trace format v002 to checksum every section so that
// bit-rot, torn writes, and transfer corruption are detected at load time
// instead of silently poisoning an extrapolation.  This is the standard
// zlib-compatible CRC so externally produced files can be verified with
// stock tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pmacx::util {

/// CRC-32 of `size` bytes starting at `data`.  Pass a previous result as
/// `seed` to checksum discontiguous ranges incrementally.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

/// Convenience overload for string payloads.
std::uint32_t crc32(std::string_view bytes, std::uint32_t seed = 0);

}  // namespace pmacx::util
