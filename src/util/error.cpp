#include "util/error.hpp"

namespace pmacx::util {

void throw_error(const char* file, int line, const std::string& message) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": " + message);
}

}  // namespace pmacx::util
