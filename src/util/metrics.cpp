#include "util/metrics.hpp"

#include <bit>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"
#include "util/error.hpp"

#ifndef PMACX_VERSION
#define PMACX_VERSION "0.3.0"
#endif
#ifndef PMACX_GIT_SHA
#define PMACX_GIT_SHA "unknown"
#endif

namespace pmacx::util::metrics {

void Histogram::record(std::uint64_t nanos) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
  // min/max via CAS loops: uncontended in practice (stage timers fire once
  // per stage, not per element).
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (nanos < seen &&
         !min_.compare_exchange_weak(seen, nanos, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_.compare_exchange_weak(seen, nanos, std::memory_order_relaxed)) {
  }
  const std::size_t bucket =
      nanos == 0 ? 0
                 : std::min<std::size_t>(kBuckets - 1,
                                         static_cast<std::size_t>(std::bit_width(nanos)) - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::min() const {
  const std::uint64_t raw = min_.load(std::memory_order_relaxed);
  return raw == ~std::uint64_t{0} ? 0 : raw;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::scoped_lock lock(mutex_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snap.counters.emplace_back(name, counter->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) snap.gauges.emplace_back(name, gauge->value());
  snap.timers.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.count = hist->count();
    h.sum = hist->sum();
    h.min = hist->min();
    h.max = hist->max();
    snap.timers.emplace_back(name, h);
  }
  return snap;
}

void Registry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

StageTimer::StageTimer(std::string_view stage, Registry& registry)
    : wall_(registry.histogram(std::string(stage) + ".wall_ns")),
      cpu_(registry.histogram(std::string(stage) + ".cpu_ns")),
      start_(std::chrono::steady_clock::now()),
      cpu_start_(std::clock()) {}

StageTimer::~StageTimer() {
  const auto wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  wall_.record(wall_ns > 0 ? static_cast<std::uint64_t>(wall_ns) : 0);
  const std::clock_t cpu_end = std::clock();
  std::uint64_t cpu_ns = 0;
  if (cpu_end != std::clock_t(-1) && cpu_start_ != std::clock_t(-1) && cpu_end > cpu_start_)
    cpu_ns = static_cast<std::uint64_t>(
        (static_cast<double>(cpu_end - cpu_start_) / CLOCKS_PER_SEC) * 1e9);
  cpu_.record(cpu_ns);
}

RunManifest RunManifest::for_tool(std::string tool) {
  RunManifest manifest;
  manifest.tool = std::move(tool);
  manifest.version = PMACX_VERSION;
  manifest.git_sha = PMACX_GIT_SHA;
  return manifest;
}

void RunManifest::add_input(const std::string& path) {
  InputDigest digest;
  digest.path = path;
  std::ifstream in(path, std::ios::binary);
  if (in.good()) {
    // Stream in chunks: input traces can be large and the manifest must not
    // double the tool's peak memory.
    char buffer[1 << 16];
    std::uint32_t crc = 0;
    std::uint64_t bytes = 0;
    while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
      crc = util::crc32(buffer, static_cast<std::size_t>(in.gcount()), crc);
      bytes += static_cast<std::uint64_t>(in.gcount());
      if (in.eof()) break;
    }
    // A directory opens but reads nothing on some platforms and fails the
    // read on others; either way "no bytes and not at EOF" means unreadable.
    digest.readable = in.eof() || bytes > 0;
    digest.bytes = bytes;
    digest.crc32 = crc;
  }
  inputs.push_back(std::move(digest));
}

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string json_double(double value) {
  // %.17g round-trips doubles; trim to a plain integer rendering when exact
  // so counters-as-gauges stay readable.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

std::string to_json(const RunManifest& manifest, const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": ";
  append_escaped(out, kSchemaVersion);
  out += ",\n  \"manifest\": {\n    \"tool\": ";
  append_escaped(out, manifest.tool);
  out += ",\n    \"version\": ";
  append_escaped(out, manifest.version);
  out += ",\n    \"git_sha\": ";
  append_escaped(out, manifest.git_sha);
  out += ",\n    \"threads\": " + std::to_string(manifest.threads);
  out += ",\n    \"config\": {";
  for (std::size_t i = 0; i < manifest.config.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "      ";
    append_escaped(out, manifest.config[i].first);
    out += ": ";
    append_escaped(out, manifest.config[i].second);
  }
  out += manifest.config.empty() ? "}" : "\n    }";
  out += ",\n    \"inputs\": [";
  for (std::size_t i = 0; i < manifest.inputs.size(); ++i) {
    const InputDigest& input = manifest.inputs[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"path\": ";
    append_escaped(out, input.path);
    out += ", \"bytes\": " + std::to_string(input.bytes);
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", input.crc32);
    out += ", \"crc32\": \"";
    out += crc;
    out += "\", \"readable\": ";
    out += input.readable ? "true" : "false";
    out += "}";
  }
  out += manifest.inputs.empty() ? "]" : "\n    ]";
  out += "\n  },\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, snapshot.counters[i].first);
    out += ": " + std::to_string(snapshot.counters[i].second);
  }
  out += snapshot.counters.empty() ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, snapshot.gauges[i].first);
    out += ": " + json_double(snapshot.gauges[i].second);
  }
  out += snapshot.gauges.empty() ? "}" : "\n  }";
  out += ",\n  \"timers\": {";
  for (std::size_t i = 0; i < snapshot.timers.size(); ++i) {
    const auto& [name, h] = snapshot.timers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    append_escaped(out, name);
    out += ": {\"count\": " + std::to_string(h.count) + ", \"sum\": " +
           std::to_string(h.sum) + ", \"min\": " + std::to_string(h.min) +
           ", \"max\": " + std::to_string(h.max) + "}";
  }
  out += snapshot.timers.empty() ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

void write_json(const std::string& path, const RunManifest& manifest,
                const Snapshot& snapshot) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  PMACX_CHECK(out.good(), "cannot open '" + path + "' for writing");
  const std::string text = to_json(manifest, snapshot);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  PMACX_CHECK(out.good(), "write to '" + path + "' failed");
}

}  // namespace pmacx::util::metrics
