// Small string utilities shared across pmacx: splitting, trimming, numeric
// parsing with error reporting, and human-readable formatting of quantities
// (bytes, rates, percentages) used by the experiment harnesses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pmacx::util {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a double; throws util::Error naming `context` on failure or
/// trailing garbage.
double parse_double(std::string_view text, std::string_view context);

/// Parses a non-negative integer; throws util::Error naming `context` on
/// failure.
std::uint64_t parse_u64(std::string_view text, std::string_view context);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1.5 KB", "3.2 MB", ... (powers of 1024, one decimal).
std::string human_bytes(double bytes);

/// "1.5 GB/s" style rate formatting.
std::string human_rate(double bytes_per_second);

/// Fixed-precision percentage: human_percent(0.8735) == "87.35%".
std::string human_percent(double fraction, int decimals = 2);

}  // namespace pmacx::util
