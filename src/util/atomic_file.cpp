#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/parse_error.hpp"

namespace pmacx::util {
namespace {

/// Trailer appended by save_checked: payload length then payload CRC.
constexpr std::size_t kTrailerSize = 12;

std::string parent_directory(const std::string& path) {
  const std::string parent = std::filesystem::path(path).parent_path().string();
  return parent.empty() ? std::string(".") : parent;
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& bytes) {
  // Same-directory temp name so the rename stays within one filesystem.
  // The pid suffix keeps concurrent writers (two processes checkpointing
  // the same directory) from clobbering each other's temp file; the rename
  // itself serializes whose bytes win.
  const std::string temp = path + ".tmp." + std::to_string(::getpid());

  int fd = io::open_file(temp, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  try {
    io::write_all(fd, bytes, temp);
    // The data must be on disk before the rename publishes the name; a
    // crash between rename and data writeback would otherwise yield a
    // *new* file with stale or empty content — exactly the torn state this
    // helper exists to rule out.
    io::fsync_file(fd, temp);
    io::close_file(fd, temp);
    fd = -1;
    io::rename_file(temp, path);
  } catch (...) {
    // Every failure path drops the temp: a leaked *.tmp.<pid> per failed
    // fsync would accumulate forever in long-lived checkpoint directories.
    // (Under a simulated crash unlink_quiet deliberately no-ops — a dead
    // process cleans nothing up; the startup scrubber owns those.)
    if (fd >= 0) io::close_quiet(fd);
    io::unlink_quiet(temp);
    throw;
  }

  // Durability of the rename itself: fsync the containing directory.  Some
  // filesystems reject directory fsync (EINVAL); best-effort there — the
  // write is still atomic, just not yet durable.
  io::fsync_dir_best_effort(parent_directory(path));
}

std::string read_file(const std::string& path) {
  const int fd = io::open_file(path, O_RDONLY);
  std::string out;
  try {
    char buffer[64 * 1024];
    while (true) {
      const std::size_t n = io::read_some(fd, buffer, sizeof buffer, path);
      if (n == 0) break;
      out.append(buffer, n);
    }
  } catch (...) {
    io::close_quiet(fd);
    throw;
  }
  io::close_quiet(fd);
  return out;
}

void save_checked(const std::string& path, const std::string& payload) {
  std::string bytes = payload;
  const std::uint64_t size = payload.size();
  const std::uint32_t crc = crc32(payload);
  char trailer[kTrailerSize];
  std::memcpy(trailer, &size, 8);
  std::memcpy(trailer + 8, &crc, 4);
  bytes.append(trailer, kTrailerSize);
  write_file_atomic(path, bytes);
}

std::string load_checked(const std::string& path) {
  const std::string bytes = read_file(path);
  if (bytes.size() < kTrailerSize) {
    throw ParseError(path, bytes.size(), "atomic.trailer",
                     "file too small for the integrity trailer (" +
                         std::to_string(bytes.size()) + " bytes)");
  }
  const std::size_t payload_size = bytes.size() - kTrailerSize;
  std::uint64_t declared = 0;
  std::uint32_t declared_crc = 0;
  std::memcpy(&declared, bytes.data() + payload_size, 8);
  std::memcpy(&declared_crc, bytes.data() + payload_size + 8, 4);
  if (declared != payload_size) {
    throw ParseError(path, payload_size, "atomic.trailer",
                     "declared payload length " + std::to_string(declared) +
                         " does not match actual " + std::to_string(payload_size));
  }
  const std::uint32_t actual_crc = crc32(bytes.data(), payload_size);
  if (actual_crc != declared_crc) {
    throw ParseError(path, payload_size, "atomic.trailer", "payload CRC mismatch");
  }
  return bytes.substr(0, payload_size);
}

std::optional<std::string> try_load_checked(const std::string& path) {
  try {
    return load_checked(path);
  } catch (const io::SimulatedCrash&) {
    throw;  // the harness's crash model must never be absorbed as "torn file"
  } catch (const Error&) {
    return std::nullopt;
  }
}

void ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  PMACX_CHECK(!ec, "cannot create directory '" + dir + "': " + ec.message());
  PMACX_CHECK(std::filesystem::is_directory(dir, ec),
              "'" + dir + "' exists but is not a directory");
}

}  // namespace pmacx::util
