#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/parse_error.hpp"

namespace pmacx::util {
namespace {

/// Trailer appended by save_checked: payload length then payload CRC.
constexpr std::size_t kTrailerSize = 12;

std::string parent_directory(const std::string& path) {
  const std::string parent = std::filesystem::path(path).parent_path().string();
  return parent.empty() ? std::string(".") : parent;
}

void fsync_fd_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("fsync " + what + ": " + reason);
  }
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& bytes) {
  // Same-directory temp name so the rename stays within one filesystem.
  // The pid suffix keeps concurrent writers (two processes checkpointing
  // the same directory) from clobbering each other's temp file; the rename
  // itself serializes whose bytes win.
  const std::string temp = path + ".tmp." + std::to_string(::getpid());

  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  PMACX_CHECK(fd >= 0, "cannot create '" + temp + "': " + std::strerror(errno));

  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      const std::string reason = n < 0 ? std::strerror(errno) : "short write";
      ::close(fd);
      ::unlink(temp.c_str());
      throw Error("write '" + temp + "': " + reason);
    }
    written += static_cast<std::size_t>(n);
  }
  // The data must be on disk before the rename publishes the name; a crash
  // between rename and data writeback would otherwise yield a *new* file
  // with stale or empty content — exactly the torn state this helper exists
  // to rule out.
  fsync_fd_or_throw(fd, "'" + temp + "'");
  if (::close(fd) != 0) {
    ::unlink(temp.c_str());
    throw Error("close '" + temp + "': " + std::strerror(errno));
  }

  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    ::unlink(temp.c_str());
    throw Error("rename '" + temp + "' -> '" + path + "': " + reason);
  }

  // Durability of the rename itself: fsync the containing directory.  Some
  // filesystems reject directory fsync (EINVAL); best-effort there — the
  // write is still atomic, just not yet durable.
  const std::string dir = parent_directory(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PMACX_CHECK(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  PMACX_CHECK(!in.bad(), "read '" + path + "' failed");
  return buffer.str();
}

void save_checked(const std::string& path, const std::string& payload) {
  std::string bytes = payload;
  const std::uint64_t size = payload.size();
  const std::uint32_t crc = crc32(payload);
  char trailer[kTrailerSize];
  std::memcpy(trailer, &size, 8);
  std::memcpy(trailer + 8, &crc, 4);
  bytes.append(trailer, kTrailerSize);
  write_file_atomic(path, bytes);
}

std::string load_checked(const std::string& path) {
  const std::string bytes = read_file(path);
  if (bytes.size() < kTrailerSize) {
    throw ParseError(path, bytes.size(), "atomic.trailer",
                     "file too small for the integrity trailer (" +
                         std::to_string(bytes.size()) + " bytes)");
  }
  const std::size_t payload_size = bytes.size() - kTrailerSize;
  std::uint64_t declared = 0;
  std::uint32_t declared_crc = 0;
  std::memcpy(&declared, bytes.data() + payload_size, 8);
  std::memcpy(&declared_crc, bytes.data() + payload_size + 8, 4);
  if (declared != payload_size) {
    throw ParseError(path, payload_size, "atomic.trailer",
                     "declared payload length " + std::to_string(declared) +
                         " does not match actual " + std::to_string(payload_size));
  }
  const std::uint32_t actual_crc = crc32(bytes.data(), payload_size);
  if (actual_crc != declared_crc) {
    throw ParseError(path, payload_size, "atomic.trailer", "payload CRC mismatch");
  }
  return bytes.substr(0, payload_size);
}

std::optional<std::string> try_load_checked(const std::string& path) {
  try {
    return load_checked(path);
  } catch (const Error&) {
    return std::nullopt;
  }
}

void ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  PMACX_CHECK(!ec, "cannot create directory '" + dir + "': " + ec.message());
  PMACX_CHECK(std::filesystem::is_directory(dir, ec),
              "'" + dir + "' exists but is not a directory");
}

}  // namespace pmacx::util
