// Error handling primitives for pmacx.
//
// The library reports contract violations and unrecoverable conditions via
// pmacx::util::Error (derived from std::runtime_error) so callers can catch a
// single type at API boundaries.  PMACX_CHECK is used for preconditions on
// public entry points; internal invariants use PMACX_ASSERT which compiles to
// the same check (this is a modelling library, not a hot inner loop — we keep
// checks on in release builds).
#pragma once

#include <stdexcept>
#include <string>

namespace pmacx::util {

/// Exception type thrown by all pmacx components on contract violation or
/// unrecoverable error (bad input file, impossible configuration, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Builds the "file:line: message" text and throws Error.  Out-of-line so the
/// check macros stay cheap at call sites.
[[noreturn]] void throw_error(const char* file, int line, const std::string& message);

}  // namespace pmacx::util

/// Precondition / invariant check: throws pmacx::util::Error with location
/// info when `cond` is false.  `msg` may use stream-free string concatenation.
#define PMACX_CHECK(cond, msg)                                   \
  do {                                                           \
    if (!(cond)) {                                               \
      ::pmacx::util::throw_error(__FILE__, __LINE__,             \
                                 std::string("check failed: ") + \
                                     #cond + " — " + (msg));     \
    }                                                            \
  } while (0)

/// Internal invariant check; identical behaviour to PMACX_CHECK but signals
/// a library bug rather than caller misuse.
#define PMACX_ASSERT(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::pmacx::util::throw_error(__FILE__, __LINE__,                  \
                                 std::string("internal invariant: ") + \
                                     #cond + " — " + (msg));          \
    }                                                                 \
  } while (0)
