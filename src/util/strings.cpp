#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

#include "util/error.hpp"

namespace pmacx::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view text, std::string_view context) {
  const std::string_view body = trim(text);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), value);
  PMACX_CHECK(ec == std::errc{} && ptr == body.data() + body.size(),
              std::string("cannot parse '") + std::string(body) + "' as double in " +
                  std::string(context));
  return value;
}

std::uint64_t parse_u64(std::string_view text, std::string_view context) {
  const std::string_view body = trim(text);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(body.data(), body.data() + body.size(), value);
  PMACX_CHECK(ec == std::errc{} && ptr == body.data() + body.size(),
              std::string("cannot parse '") + std::string(body) + "' as u64 in " +
                  std::string(context));
  return value;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

namespace {

std::string scaled(double value, const char* const* units, int count) {
  int unit = 0;
  while (value >= 1024.0 && unit + 1 < count) {
    value /= 1024.0;
    ++unit;
  }
  return format("%.1f %s", value, units[unit]);
}

}  // namespace

std::string human_bytes(double bytes) {
  static const char* const kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  return scaled(bytes, kUnits, 6);
}

std::string human_rate(double bytes_per_second) {
  static const char* const kUnits[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
  return scaled(bytes_per_second, kUnits, 5);
}

std::string human_percent(double fraction, int decimals) {
  return format("%.*f%%", decimals, fraction * 100.0);
}

}  // namespace pmacx::util
