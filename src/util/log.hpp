// Minimal leveled logger.
//
// Experiment harnesses and the tracing pipeline emit progress at Info level;
// tests silence it by setting the level to Warn.  A single global sink keeps
// the interface trivial.  The sink is thread-safe: util::ThreadPool workers
// log concurrently, so the level is atomic and line emission is serialized.
#pragma once

#include <sstream>
#include <string>

namespace pmacx::util {

/// Severity levels in increasing order of importance.
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);

/// Returns the current global minimum level.
LogLevel log_level();

/// Emits one line to stderr as "[level] message" if `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style one-shot builder: `LogLine(LogLevel::Info) << "x=" << x;`
/// emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace pmacx::util

#define PMACX_LOG_DEBUG ::pmacx::util::detail::LogLine(::pmacx::util::LogLevel::Debug)
#define PMACX_LOG_INFO ::pmacx::util::detail::LogLine(::pmacx::util::LogLevel::Info)
#define PMACX_LOG_WARN ::pmacx::util::detail::LogLine(::pmacx::util::LogLevel::Warn)
#define PMACX_LOG_ERROR ::pmacx::util::detail::LogLine(::pmacx::util::LogLevel::Error)
