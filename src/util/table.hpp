// ASCII table and CSV emission for the experiment harnesses.
//
// Every bench binary reproduces one of the paper's tables or figures; Table
// renders the rows the paper reports both as an aligned ASCII table (for the
// terminal) and as CSV (for downstream plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pmacx::util {

/// Column-aligned table builder.  All rows must have the same arity as the
/// header.  Cells are stored as strings; use util::format for numbers.
class Table {
 public:
  /// Creates a table with the given column headers (must be non-empty).
  explicit Table(std::vector<std::string> header);

  /// Appends one row; throws util::Error if the arity differs from header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Renders an aligned ASCII table with a header separator line.
  std::string to_ascii() const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, quotes doubled).
  std::string to_csv() const;

  /// Writes the ASCII rendering to `out`, prefixed by `title` if non-empty.
  void print(std::ostream& out, const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmacx::util
