// Structured parse errors for untrusted input files.
//
// Loaders for traces and machine profiles consume multi-gigabyte files
// collected across many runs and machines; when one is corrupted the error
// must say *which file*, *where in it*, and *what was being read* — not just
// "truncated".  ParseError subclasses util::Error (so existing catch sites
// keep working) and carries the file path, the byte offset (or line number
// for text formats), and the section being parsed.  Parsers that work on
// in-memory bytes throw without a path; the file-level wrappers catch and
// re-throw with the path attached via with_path().
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace pmacx::util {

/// Error thrown by input parsers on malformed, truncated, or corrupted
/// input.  what() renders all known context:
/// "<path>: <section>: <message> (at byte <offset>)".
class ParseError : public Error {
 public:
  /// Sentinel for "offset unknown / not applicable" (e.g. stream errors).
  static constexpr std::uint64_t kNoOffset = ~std::uint64_t{0};

  ParseError(std::string path, std::uint64_t byte_offset, std::string section,
             std::string message);

  const std::string& path() const { return path_; }
  std::uint64_t byte_offset() const { return byte_offset_; }
  const std::string& section() const { return section_; }
  const std::string& message() const { return message_; }

  /// Copy of this error with the path filled in; used by file-level loaders
  /// to add the path to errors thrown by in-memory parsers.
  ParseError with_path(const std::string& path) const;

 private:
  std::string path_;
  std::uint64_t byte_offset_ = kNoOffset;
  std::string section_;
  std::string message_;
};

/// Runs `body()`, re-throwing any ParseError with `path` attached and
/// wrapping any other util::Error as "<path>: <original message>".  Keeps
/// the file-level loaders' error paths uniform.
template <typename Fn>
auto with_parse_context(const std::string& path, Fn&& body) {
  try {
    return body();
  } catch (const ParseError& e) {
    throw e.with_path(path);
  } catch (const Error& e) {
    throw Error(path + ": " + e.what());
  }
}

}  // namespace pmacx::util
