// Tiny command-line option parser for the example and bench executables.
//
// Supports `--name value` and `--name=value` long options plus `--flag`
// booleans.  Unknown options are an error so typos surface immediately;
// `--help` text is generated from the registered options.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pmacx::util {

/// Checked numeric parsing for command-line values.  Unlike the generic
/// strings.hpp parsers these throw ParseError carrying the offending flag
/// name in its section field, so tool error messages always say which
/// option was malformed ("--target-cores: cannot parse 'abc' as u64").
std::uint64_t parse_flag_u64(std::string_view text, std::string_view flag);
double parse_flag_double(std::string_view text, std::string_view flag);

/// Declarative option set; register options, then parse(argc, argv).
class Cli {
 public:
  /// `program` and `summary` appear in --help output.
  Cli(std::string program, std::string summary);

  /// Registers a string option with a default.
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Registers an integer option with a default.
  void add_u64(const std::string& name, std::uint64_t default_value, const std::string& help);
  /// Registers a floating-point option with a default.
  void add_double(const std::string& name, double default_value, const std::string& help);
  /// Registers a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false if --help was requested (help text printed
  /// to stdout); throws util::Error on unknown options or bad values.
  bool parse(int argc, const char* const* argv);

  /// Accessors; throw util::Error if `name` was never registered.
  std::string get_string(const std::string& name) const;
  std::uint64_t get_u64(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Generated usage text.
  std::string help() const;

  /// Every option's current textual value in registration order — the
  /// resolved configuration a tool ran with, for run manifests.
  std::vector<std::pair<std::string, std::string>> values() const;

 private:
  enum class Kind { String, U64, Double, Flag };
  struct Option {
    Kind kind;
    std::string value;  // textual form; flags store "0"/"1"
    std::string default_value;
    std::string help;
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string summary_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace pmacx::util
