// util::io — the one gate every durable-state byte passes through.
//
// The serving stack keeps real on-disk state (ckpt-v2 checkpoints, ingest
// spools, collection manifests, atomically published traces), and every
// byte of it used to reach the kernel through bare ::open/::write/::fsync
// calls that assumed storage never fails.  This header is the storage-side
// twin of service::ChaosProxy: a narrow wrapper API over the POSIX file
// calls with a seeded, deterministic fault injector underneath, so the
// failure modes production disks actually exhibit — EIO, ENOSPC, short
// writes, EINTR storms, a crash that tears a rename in half, an fsync that
// reports success after dropping the writes — can be rehearsed in-process,
// under ASan, on every seed of a CI sweep (tools/pmacx_diskchaos.cpp).
//
// Contract for callers (util::atomic_file, core::ModelCheckpoint,
// ingest::upload, ingest::CollectionRegistry, ingest::Scrub):
//
//   * Every wrapper either completes the operation or throws a typed
//     IoError naming the operation, the path, and the errno — never a
//     silent partial success, never a crash.  EINTR and short transfers
//     are retried internally with a *bounded* loop (kMaxEintrRetries) so a
//     signal storm degrades into a clean error instead of a spin.
//   * SimulatedCrash (a subclass) models the process dying mid-operation:
//     once it fires, every subsequent faultable call throws it too, and
//     best-effort cleanup (unlink_quiet) becomes a no-op — exactly the
//     disk state a real SIGKILL leaves behind.  Harnesses catch it, treat
//     it as a restart, and re-install faults with a derived seed.
//   * With no faults installed (the production default) each wrapper is a
//     thin retry loop over the syscall; the fast path is one relaxed
//     atomic load.
//
// Observability: io.ops.* count syscall-level operations, io.faults.*
// count injected faults by kind (io.faults.injected totals them), and
// io.retries.* count absorbed EINTR/short-transfer retries.  All live in
// util::metrics::Registry::global() (docs/OBSERVABILITY.md).
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.hpp"

namespace pmacx::util::io {

/// Upper bound on consecutive EINTR (or injected-EINTR) retries before a
/// wrapper gives up with errno=EINTR.  Generous for real signal traffic,
/// small enough that p_eintr=1 proves the loops are bounded in one test.
inline constexpr int kMaxEintrRetries = 16;

/// Typed storage error: operation + path + errno context, always thrown,
/// never printed-and-ignored.  err() is the errno (0 for logical faults
/// like a torn rename detected by the injector).
class IoError : public Error {
 public:
  IoError(std::string op, std::string path, std::string reason, int err = 0);

  const std::string& op() const { return op_; }
  const std::string& path() const { return path_; }
  int err() const { return err_; }

 private:
  std::string op_;
  std::string path_;
  int err_;
};

/// The injector's model of the process dying mid-operation (crash_after_ops
/// exhausted, or the armed crash after an fsync lie).  Latches: once thrown
/// every subsequent faultable operation throws it too until faults are
/// re-installed or cleared.
class SimulatedCrash : public IoError {
 public:
  SimulatedCrash(std::string op, std::string path);
};

/// One seeded fault mix.  Probabilities are per-operation in [0,1];
/// count/byte thresholds are 0-disabled.  When fail_op is set the injector
/// is fully deterministic: exactly the fail_op-th faultable disk operation
/// fails with fail_errno and nothing else fires — the mode the per-failure-
/// point sweep tests use.
struct FaultConfig {
  std::uint64_t seed = 0;
  double p_eio = 0.0;          ///< read/write/fsync/rename/unlink/open fails EIO
  double p_enospc = 0.0;       ///< write-side ops fail ENOSPC (one-shot)
  double p_short_write = 0.0;  ///< write transfers a seeded prefix (retried)
  double p_short_read = 0.0;   ///< read returns a seeded prefix (retried)
  double p_eintr = 0.0;        ///< op reports EINTR (retried, bounded)
  double p_torn_rename = 0.0;  ///< rename publishes a truncated file, then throws
  double p_fsync_lie = 0.0;    ///< fsync "succeeds" after dropping a suffix; arms a crash
  std::uint64_t crash_after_ops = 0;    ///< SimulatedCrash from the Nth faultable op on
  std::uint64_t enospc_after_bytes = 0; ///< sticky ENOSPC once cumulative writes pass N
  std::uint64_t fail_op = 0;            ///< 1-based: exactly this op fails with fail_errno
  int fail_errno = 0;                   ///< errno for fail_op (default EIO when 0)
};

/// Installs (replacing) the process-wide fault mix.  Resets the injector's
/// op/byte counters and crash latch — installing with a derived seed is how
/// harnesses model "the node restarted".
void install_faults(const FaultConfig& config);

/// Removes all fault injection; wrappers go back to thin syscall loops.
void clear_faults();

/// True while a fault mix is installed (fast: one relaxed atomic load).
bool faults_active();

/// Number of faultable disk operations the injector has seen since the
/// last install/clear (diagnostic; used by tests to aim fail_op).
std::uint64_t fault_ops_seen();

/// Parses a "key=value,key=value" spec (keys named exactly as FaultConfig
/// fields, e.g. "seed=7,p_eio=0.01,crash_after_ops=200"); fail_errno also
/// accepts "eio"/"enospc".  Throws util::Error on unknown keys or bad
/// values.
FaultConfig parse_fault_spec(const std::string& spec);

/// Installs parse_fault_spec($PMACX_IO_FAULTS) when the variable is set and
/// non-empty; returns whether anything was installed.  Tools call this at
/// startup so operators (and spawn tests) can fault-inject any binary.
bool install_faults_from_env();

// --- File wrappers.  All throw IoError (SimulatedCrash included) ----------

/// open(2) with fault points; returns the fd.
int open_file(const std::string& path, int flags, unsigned mode = 0644);

/// Writes all of `data` at the current offset, retrying EINTR and short
/// writes (bounded).
void write_all(int fd, std::string_view data, const std::string& path);

/// Positional variant of write_all (pwrite).
void pwrite_all(int fd, std::string_view data, std::uint64_t offset,
                const std::string& path);

/// Reads up to `size` bytes at the current offset; returns 0 at EOF.
/// Retries EINTR (bounded); injected short reads surface as a smaller
/// return, which every caller's loop already handles.
std::size_t read_some(int fd, char* out, std::size_t size, const std::string& path);

/// Positional variant of read_some (pread).
std::size_t pread_some(int fd, char* out, std::size_t size, std::uint64_t offset,
                       const std::string& path);

/// ftruncate(2) with fault points (a write-side op: ENOSPC applies).
void truncate_file(int fd, std::uint64_t size, const std::string& path);

/// fsync(2) with fault points.  The fsync-lie fault drops a suffix of the
/// file's bytes, returns success, and arms a SimulatedCrash within the
/// next few operations — the one storage fault that cannot be surfaced as
/// an error, only survived by the recovery path.
void fsync_file(int fd, const std::string& path);

/// Directory fsync after a rename; best-effort (some filesystems reject
/// directory fsync), so it never throws and consults no fault points.
void fsync_dir_best_effort(const std::string& dir);

/// rename(2) with fault points.  The torn-rename fault truncates the
/// source to a seeded prefix, performs the real rename, then throws — the
/// caller sees a failed publish while the disk holds the torn file a crash
/// between data writeback and rename would leave.
void rename_file(const std::string& from, const std::string& to);

/// unlink(2); throws on failure (ENOENT included).
void unlink_file(const std::string& path);

/// Best-effort unlink for cleanup paths: never throws, and deliberately
/// does nothing once a SimulatedCrash has latched (a dead process cleans
/// nothing up — the scrubber owns those temps).  Returns whether the entry
/// was removed.
bool unlink_quiet(const std::string& path) noexcept;

/// close(2) with fault points; throws if close reports an error (write
/// errors can surface here on NFS-like filesystems).
void close_file(int fd, const std::string& path);

/// Best-effort close for cleanup paths; never throws, never faulted (the
/// harness must not leak real fds while simulating crashes).
void close_quiet(int fd) noexcept;

// --- Socket helpers (satellite: bounded EINTR on the RPC loops) -----------
//
// Sockets consult only the EINTR/short-transfer fault points — never EIO/
// ENOSPC/crash, and they do not advance the disk op counter — so a disk
// fault spec cannot corrupt network semantics, and crash_after_ops budgets
// stay deterministic regardless of socket traffic.

/// recv(2) retrying EINTR up to kMaxEintrRetries; after that returns -1
/// with errno=EINTR.  Otherwise exactly recv's contract (0 = orderly
/// close, -1 = error with errno set, e.g. EAGAIN on a timeout).
ssize_t socket_recv(int fd, char* out, std::size_t size) noexcept;

/// Sends the whole range with MSG_NOSIGNAL, retrying EINTR (bounded) and
/// short sends; returns false on timeout, peer close, or hard error.
bool socket_send_all(int fd, const char* data, std::size_t size) noexcept;

inline bool socket_send_all(int fd, std::string_view data) noexcept {
  return socket_send_all(fd, data.data(), data.size());
}

}  // namespace pmacx::util::io
