// Deterministic fault injection for serialized inputs.
//
// The robustness contract for every pmacx loader is: given *any* corruption
// of a valid file, the loader must parse, salvage, or throw util::ParseError
// — never crash, hang, or silently mis-parse.  This library generates the
// corruptions: seeded random plans (bit-flips, truncations, byte mutations,
// garbage extensions) plus exhaustive sweeps (truncate at every position,
// flip every bit of a prefix).  Both tests/robustness_test.cpp and the
// pmacx_faultinject tool drive loaders through it; determinism (util::Rng)
// makes every reported failure replayable from its seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace pmacx::util {

/// One corruption of a byte string.
struct Corruption {
  enum class Kind {
    BitFlip,     ///< flip bit (position*8 + bit_index)
    Truncate,    ///< drop everything from byte `position` on
    MutateByte,  ///< overwrite byte `position` with `value`
    Extend,      ///< append `value`-seeded garbage of length `position`
  };

  Kind kind = Kind::BitFlip;
  std::size_t position = 0;  ///< byte index, new size, or appended length
  std::uint8_t value = 0;    ///< replacement byte / bit index / garbage seed

  /// "bitflip@123.5", "truncate@64", ... — replayable description.
  std::string describe() const;
};

/// Applies one corruption; the input is taken by value and mutated.
std::string apply_corruption(std::string bytes, const Corruption& corruption);

/// Draws a random corruption plan for an input of `size` bytes.  All kinds
/// are reachable; positions cover the whole input uniformly.
Corruption random_corruption(Rng& rng, std::size_t size);

/// Exhaustive plan: truncate at every multiple of `step` in [0, size).
std::vector<Corruption> truncation_sweep(std::size_t size, std::size_t step = 1);

/// Exhaustive plan: flip every bit of the first `prefix_bytes` bytes.
std::vector<Corruption> bit_flip_sweep(std::size_t prefix_bytes);

}  // namespace pmacx::util
