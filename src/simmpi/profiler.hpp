// Lightweight MPI profiling — the PSiNSTracer role.
//
// Section IV: "this task is identified using a lightweight MPI profiling
// library based on the PSiNSTracer package".  Given the per-rank
// communication timelines and a per-rank computation-cost estimate, the
// profiler replays the run once and reports per-rank computation and
// communication time, exposing the most computationally demanding task that
// the extrapolation methodology focuses on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "simmpi/replay.hpp"
#include "trace/comm.hpp"

namespace pmacx::simmpi {

/// Per-rank profile line.
struct RankProfile {
  std::uint32_t rank = 0;
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Whole-run profile.
struct RunProfile {
  std::vector<RankProfile> ranks;
  double runtime = 0.0;
  std::uint32_t most_demanding_rank = 0;  ///< argmax compute_seconds

  /// Fraction of aggregate time spent communicating (load-balance signal).
  double comm_fraction() const;
};

/// Profiles a run described by comm traces whose compute bursts are scaled
/// by `seconds_per_unit` (one entry per rank).
RunProfile profile_run(std::span<const trace::CommTrace> traces,
                       std::span<const double> seconds_per_unit,
                       const NetworkModel& network);

}  // namespace pmacx::simmpi
