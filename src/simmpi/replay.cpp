#include "simmpi/replay.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace pmacx::simmpi {
namespace {

using trace::CommOp;

/// A rank waiting at a point-to-point event (or, for eager sends, the
/// record a sender left behind after continuing).
struct PendingP2p {
  std::uint32_t rank;
  double arrival;
  std::uint64_t bytes;
  bool eager_sender = false;  ///< sender already resumed; don't touch it
};

/// One SPMD collective occurrence being gathered across ranks.
struct CollectiveOccurrence {
  CommOp op = CommOp::Barrier;
  std::uint64_t max_bytes = 0;
  std::uint32_t arrivals = 0;
  double max_arrival = 0.0;
  bool resolved = false;
  double completion = 0.0;
};

enum class Phase { Running, Blocked, Done };

struct RankState {
  Phase phase = Phase::Running;
  std::size_t step = 0;
  double time = 0.0;
  double arrival = 0.0;  ///< arrival time at the event we are blocked on
  std::size_t collective_index = 0;
  std::optional<double> resume;
  RankOutcome outcome;
};

}  // namespace

std::uint32_t ReplayResult::most_demanding_rank() const {
  PMACX_CHECK(!ranks.empty(), "empty replay result");
  std::uint32_t best = 0;
  for (std::uint32_t r = 1; r < ranks.size(); ++r)
    if (ranks[r].compute_seconds > ranks[best].compute_seconds) best = r;
  return best;
}

ReplayResult replay(std::span<const RankTimeline> timelines, const NetworkModel& network) {
  const std::uint32_t n = static_cast<std::uint32_t>(timelines.size());
  PMACX_CHECK(n > 0, "replay requires at least one rank");
  util::metrics::StageTimer timer("simmpi.replay");

  // Tally the replayed workload up front from the timelines themselves —
  // deterministic and independent of how the engine below makes progress.
  {
    std::uint64_t events = 0, collectives = 0, bytes = 0;
    for (const RankTimeline& tl : timelines) {
      events += tl.steps.size();
      for (const RankTimeline::Step& step : tl.steps) {
        bytes += step.event.bytes;
        if (trace::comm_op_is_collective(step.event.op)) ++collectives;
      }
    }
    util::metrics::Registry& metrics = util::metrics::Registry::global();
    metrics.counter("simmpi.replays").add();
    metrics.counter("simmpi.ranks_replayed").add(n);
    metrics.counter("simmpi.events_replayed").add(events);
    metrics.counter("simmpi.collectives_replayed").add(collectives);
    metrics.counter("simmpi.bytes_replayed").add(bytes);
  }

  std::vector<RankState> st(n);
  // Pending point-to-point arrivals keyed by (sender, receiver).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::deque<PendingP2p>> pending_sends;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::deque<PendingP2p>> pending_recvs;
  std::vector<CollectiveOccurrence> collectives;

  auto validate_peer = [&](std::uint32_t rank, std::int32_t peer) {
    PMACX_CHECK(peer >= 0 && static_cast<std::uint32_t>(peer) < n,
                "rank " + std::to_string(rank) + ": peer " + std::to_string(peer) +
                    " out of range");
    PMACX_CHECK(static_cast<std::uint32_t>(peer) != rank,
                "rank " + std::to_string(rank) + ": send/recv to self");
  };

  // Resolves a matched send/recv pair.  Rendezvous: both ranks resume when
  // the synchronized transfer completes.  Eager: the sender resumed long
  // ago; the receiver resumes when the in-flight message lands.
  auto resolve_p2p = [&](const PendingP2p& send, const PendingP2p& recv) {
    const double transfer = network.p2p_time_between(send.rank, recv.rank, send.bytes);
    if (send.eager_sender) {
      st[recv.rank].resume = std::max(recv.arrival, send.arrival + transfer);
      return;
    }
    const double completion = std::max(send.arrival, recv.arrival) + transfer;
    st[send.rank].resume = completion;
    st[recv.rank].resume = completion;
  };

  // Advances one rank as far as it can go; returns true if any progress.
  auto advance = [&](std::uint32_t r) -> bool {
    RankState& s = st[r];
    const RankTimeline& tl = timelines[r];
    bool progressed = false;

    for (;;) {
      if (s.phase == Phase::Done) return progressed;

      if (s.phase == Phase::Blocked) {
        // A collective may have been resolved by another rank's arrival.
        if (!s.resume) {
          const trace::CommEvent& ev = tl.steps[s.step].event;
          if (trace::comm_op_is_collective(ev.op)) {
            const CollectiveOccurrence& occ = collectives[s.collective_index - 1];
            if (occ.resolved) s.resume = occ.completion;
          }
        }
        if (!s.resume) return progressed;
        const double resume_at = *s.resume;
        s.resume.reset();
        PMACX_ASSERT(resume_at >= s.arrival - 1e-12, "resume before arrival");
        s.outcome.comm_seconds += resume_at - s.arrival;
        s.time = resume_at;
        ++s.step;
        s.phase = Phase::Running;
        progressed = true;
        continue;
      }

      // Phase::Running — execute the compute burst, then arrive at the event.
      if (s.step >= tl.steps.size()) {
        s.time += tl.tail_compute_seconds;
        s.outcome.compute_seconds += tl.tail_compute_seconds;
        s.outcome.finish_time = s.time;
        s.phase = Phase::Done;
        progressed = true;
        continue;
      }

      const RankTimeline::Step& step = tl.steps[s.step];
      PMACX_CHECK(step.compute_seconds_before >= 0, "negative compute burst");
      s.time += step.compute_seconds_before;
      s.outcome.compute_seconds += step.compute_seconds_before;
      s.arrival = s.time;
      s.phase = Phase::Blocked;
      progressed = true;

      const trace::CommEvent& ev = step.event;
      if (ev.op == CommOp::Send) {
        validate_peer(r, ev.peer);
        const auto key = std::make_pair(r, static_cast<std::uint32_t>(ev.peer));
        const bool eager = network.is_eager(ev.bytes);
        const PendingP2p me{r, s.arrival, ev.bytes, eager};
        auto& recv_queue = pending_recvs[key];
        if (!recv_queue.empty()) {
          const PendingP2p recv = recv_queue.front();
          recv_queue.pop_front();
          resolve_p2p(me, recv);
        } else {
          pending_sends[key].push_back(me);
        }
        // Eager senders continue after the local buffer deposit, whether or
        // not the receive is posted yet.
        if (eager) s.resume = s.arrival + network.per_stage_overhead_s;
      } else if (ev.op == CommOp::Recv) {
        validate_peer(r, ev.peer);
        const auto key = std::make_pair(static_cast<std::uint32_t>(ev.peer), r);
        auto& send_queue = pending_sends[key];
        if (!send_queue.empty()) {
          const PendingP2p send = send_queue.front();
          send_queue.pop_front();
          resolve_p2p(send, PendingP2p{r, s.arrival, ev.bytes});
        } else {
          pending_recvs[key].push_back(PendingP2p{r, s.arrival, ev.bytes});
        }
      } else {
        // Collective, matched SPMD-style by occurrence index.
        const std::size_t k = s.collective_index++;
        if (k >= collectives.size()) collectives.resize(k + 1);
        CollectiveOccurrence& occ = collectives[k];
        if (occ.arrivals == 0) occ.op = ev.op;
        PMACX_CHECK(occ.op == ev.op,
                    "collective sequence mismatch at occurrence " + std::to_string(k) +
                        ": rank " + std::to_string(r) + " executes " +
                        trace::comm_op_name(ev.op) + " but others executed " +
                        trace::comm_op_name(occ.op));
        occ.max_bytes = std::max(occ.max_bytes, ev.bytes);
        occ.max_arrival = std::max(occ.max_arrival, s.arrival);
        ++occ.arrivals;
        if (occ.arrivals == n) {
          occ.resolved = true;
          occ.completion =
              occ.max_arrival + network.collective_time(occ.op, occ.max_bytes, n);
          s.resume = occ.completion;  // others pick it up via occ.resolved
        }
      }
    }
  };

  // Round-robin until quiescent.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t r = 0; r < n; ++r)
      if (advance(r)) progress = true;
  }

  std::vector<std::uint32_t> stuck;
  for (std::uint32_t r = 0; r < n; ++r)
    if (st[r].phase != Phase::Done) stuck.push_back(r);
  if (!stuck.empty()) {
    std::string who;
    for (std::size_t i = 0; i < std::min<std::size_t>(stuck.size(), 8); ++i)
      who += (i ? "," : "") + std::to_string(stuck[i]);
    PMACX_CHECK(false, "communication deadlock: " + std::to_string(stuck.size()) +
                           " rank(s) stuck (first: " + who + ")");
  }

  ReplayResult result;
  result.ranks.reserve(n);
  for (std::uint32_t r = 0; r < n; ++r) {
    result.ranks.push_back(st[r].outcome);
    result.runtime = std::max(result.runtime, st[r].outcome.finish_time);
  }
  return result;
}

std::vector<RankTimeline> timelines_from_comm(std::span<const trace::CommTrace> traces,
                                              std::span<const double> seconds_per_unit) {
  PMACX_CHECK(traces.size() == seconds_per_unit.size(),
              "timelines_from_comm: traces/scales size mismatch");
  std::vector<RankTimeline> timelines(traces.size());
  for (std::size_t r = 0; r < traces.size(); ++r) {
    const double scale = seconds_per_unit[r];
    PMACX_CHECK(scale >= 0, "negative seconds-per-unit scale");
    RankTimeline& tl = timelines[r];
    tl.steps.reserve(traces[r].events.size());
    for (const trace::CommEvent& event : traces[r].events)
      tl.steps.push_back({event, event.compute_units_before * scale});
    tl.tail_compute_seconds = traces[r].tail_compute_units * scale;
  }
  return timelines;
}

}  // namespace pmacx::simmpi
