// Deterministic replay of per-rank MPI timelines.
//
// This is the execution-replay half of PSiNS: every rank's timeline is an
// alternating sequence of computation bursts (already converted to seconds
// by the caller's computation model) and MPI events.  The engine advances
// each rank until it blocks — a point-to-point event blocks until its
// partner has arrived, a collective blocks until every rank has arrived at
// the same occurrence — and resolves matches with the network model's
// transfer times.  Semantics:
//
//   * Send/Recv are rendezvous: the k-th send from a to b matches the k-th
//     recv on b from a; both sides complete at
//     max(sender arrival, receiver arrival) + p2p transfer time.
//   * Collectives are SPMD-matched by occurrence index: the k-th collective
//     executed by each rank is the same operation on every rank (validated);
//     all ranks complete at max(arrivals) + collective time.
//
// The engine detects deadlock (no rank can make progress) and reports the
// stuck ranks, which turns malformed synthetic comm traces into loud errors
// instead of hangs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "simmpi/network.hpp"
#include "trace/comm.hpp"

namespace pmacx::simmpi {

/// One rank's timeline, ready for replay (compute already in seconds).
struct RankTimeline {
  struct Step {
    trace::CommEvent event;
    double compute_seconds_before = 0.0;  ///< CPU burst preceding the event
  };
  std::vector<Step> steps;
  double tail_compute_seconds = 0.0;  ///< CPU burst after the last event
};

/// Replay outcome for one rank.
struct RankOutcome {
  double finish_time = 0.0;
  double compute_seconds = 0.0;  ///< time spent in CPU bursts
  double comm_seconds = 0.0;     ///< time spent blocked in / transferring MPI
};

/// Whole-run replay outcome.
struct ReplayResult {
  std::vector<RankOutcome> ranks;
  double runtime = 0.0;  ///< max finish time across ranks

  /// Rank with the largest compute_seconds — the paper's "most
  /// computationally demanding MPI task".
  std::uint32_t most_demanding_rank() const;
};

/// Replays the timelines (index = rank).  Throws util::Error on deadlock or
/// mismatched collective sequences.
ReplayResult replay(std::span<const RankTimeline> timelines, const NetworkModel& network);

/// Builds replay-ready timelines from comm traces by scaling each rank's
/// abstract compute units with `seconds_per_unit[rank]`.
std::vector<RankTimeline> timelines_from_comm(std::span<const trace::CommTrace> traces,
                                              std::span<const double> seconds_per_unit);

}  // namespace pmacx::simmpi
