#include "simmpi/profiler.hpp"

namespace pmacx::simmpi {

double RunProfile::comm_fraction() const {
  double comm = 0.0, total = 0.0;
  for (const RankProfile& r : ranks) {
    comm += r.comm_seconds;
    total += r.total_seconds;
  }
  return total > 0.0 ? comm / total : 0.0;
}

RunProfile profile_run(std::span<const trace::CommTrace> traces,
                       std::span<const double> seconds_per_unit,
                       const NetworkModel& network) {
  const std::vector<RankTimeline> timelines = timelines_from_comm(traces, seconds_per_unit);
  const ReplayResult replayed = replay(timelines, network);

  RunProfile profile;
  profile.runtime = replayed.runtime;
  profile.most_demanding_rank = replayed.most_demanding_rank();
  profile.ranks.reserve(replayed.ranks.size());
  for (std::uint32_t r = 0; r < replayed.ranks.size(); ++r) {
    const RankOutcome& o = replayed.ranks[r];
    profile.ranks.push_back(RankProfile{r, o.compute_seconds, o.comm_seconds, o.finish_time});
  }
  return profile;
}

}  // namespace pmacx::simmpi
