#include "simmpi/network.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"

namespace pmacx::simmpi {

double NetworkModel::p2p_time(std::uint64_t bytes) const {
  return latency_s + static_cast<double>(bytes) / bandwidth_bytes_per_s;
}

std::uint32_t NetworkModel::torus_hops(std::uint32_t src, std::uint32_t dst) const {
  if (!torus.enabled) return 0;
  const std::uint64_t nodes = static_cast<std::uint64_t>(torus.dims[0]) * torus.dims[1] *
                              torus.dims[2];
  PMACX_CHECK(nodes > 0, "torus with zero nodes");
  std::uint64_t a = src % nodes;
  std::uint64_t b = dst % nodes;
  std::uint32_t hops = 0;
  for (std::uint32_t dim : torus.dims) {
    const auto ca = static_cast<std::int64_t>(a % dim);
    const auto cb = static_cast<std::int64_t>(b % dim);
    const std::int64_t direct = std::llabs(ca - cb);
    hops += static_cast<std::uint32_t>(std::min<std::int64_t>(direct, dim - direct));
    a /= dim;
    b /= dim;
  }
  return hops;
}

double NetworkModel::p2p_time_between(std::uint32_t src, std::uint32_t dst,
                                      std::uint64_t bytes) const {
  return p2p_time(bytes) + torus_hops(src, dst) * torus.per_hop_latency_s;
}

double NetworkModel::collective_time(trace::CommOp op, std::uint64_t bytes,
                                     std::uint32_t ranks) const {
  PMACX_CHECK(ranks > 0, "collective over zero ranks");
  if (ranks == 1) return per_stage_overhead_s;
  const double stages = std::ceil(std::log2(static_cast<double>(ranks)));
  const double stage_cost = p2p_time(bytes) + per_stage_overhead_s;

  switch (op) {
    case trace::CommOp::Barrier:
      // Payload-free dissemination barrier.
      return stages * (latency_s + per_stage_overhead_s);
    case trace::CommOp::Bcast:
    case trace::CommOp::Reduce:
      return stages * stage_cost;
    case trace::CommOp::Allreduce: {
      // Small payloads: recursive doubling (latency-optimal, 2·log2 P
      // stages).  Large payloads: the ring algorithm — 2·(P-1) cheap stages
      // moving only bytes/P each, bandwidth-optimal (what real MPI
      // implementations switch to).
      const double tree = 2.0 * stages * stage_cost;
      if (bytes < allreduce_ring_threshold_bytes) return tree;
      const double chunk = static_cast<double>(bytes) / static_cast<double>(ranks);
      const double ring =
          2.0 * static_cast<double>(ranks - 1) *
          (latency_s + per_stage_overhead_s + chunk / bandwidth_bytes_per_s);
      return std::min(tree, ring);
    }
    case trace::CommOp::Allgather:
      // Recursive doubling: payload grows each stage; bound with the final
      // full payload per stage (conservative first-order model).
      return stages * (latency_s + per_stage_overhead_s) +
             static_cast<double>(bytes) * static_cast<double>(ranks - 1) /
                 bandwidth_bytes_per_s;
    case trace::CommOp::Alltoall:
      // P-1 personalized exchanges, pipelined.
      return static_cast<double>(ranks - 1) * latency_s +
             static_cast<double>(bytes) * static_cast<double>(ranks - 1) /
                 bandwidth_bytes_per_s;
    case trace::CommOp::Send:
    case trace::CommOp::Recv:
      break;
  }
  PMACX_CHECK(false, "collective_time called with point-to-point op");
  return 0.0;
}

}  // namespace pmacx::simmpi
