// Interconnect timing model.
//
// The machine profile's communication side: point-to-point transfers follow
// a latency + size/bandwidth model, collectives follow log₂(P)-stage tree
// models — the same first-order models PMaC's machine profiles use for
// "communications events ... at various message sizes" (Section III).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "trace/comm.hpp"

namespace pmacx::simmpi {

/// Optional 3-D torus topology (Cray SeaStar-style): ranks map row-major
/// onto the torus and each hop adds latency, so physically distant pairs
/// pay more than neighbours.
struct TorusTopology {
  bool enabled = false;
  std::array<std::uint32_t, 3> dims{1, 1, 1};
  double per_hop_latency_s = 5.0e-8;
};

/// Interconnect parameters of one machine.
struct NetworkModel {
  std::string name = "generic-ib";
  double latency_s = 2.0e-6;            ///< per-message launch latency
  double bandwidth_bytes_per_s = 5e9;   ///< sustained point-to-point bandwidth
  double per_stage_overhead_s = 1.0e-6; ///< software overhead per tree stage
  /// Messages of at most this many bytes use the *eager* protocol: the
  /// sender deposits into a remote buffer and continues without waiting for
  /// the receive to be posted (real MPI behaviour for small messages).
  /// Larger messages rendezvous — both sides synchronize for the transfer.
  /// 0 disables eager entirely (every send rendezvouses).
  std::uint64_t eager_threshold_bytes = 0;
  /// Allreduce algorithm switch (as real MPI libraries do): payloads at or
  /// above this use the bandwidth-optimal ring algorithm, smaller ones the
  /// latency-optimal recursive-doubling tree.
  std::uint64_t allreduce_ring_threshold_bytes = 32768;

  /// True when a message of this size uses the eager protocol.
  bool is_eager(std::uint64_t bytes) const {
    return eager_threshold_bytes > 0 && bytes <= eager_threshold_bytes;
  }

  TorusTopology torus;

  /// Topology-blind point-to-point transfer time for `bytes`.
  double p2p_time(std::uint64_t bytes) const;

  /// Manhattan hop distance between two ranks mapped row-major onto the
  /// torus (0 when the topology is disabled).  Ranks beyond the torus's
  /// node count wrap modulo the node count.
  std::uint32_t torus_hops(std::uint32_t src, std::uint32_t dst) const;

  /// Topology-aware point-to-point time: p2p_time plus per-hop latency.
  double p2p_time_between(std::uint32_t src, std::uint32_t dst,
                          std::uint64_t bytes) const;

  /// Time for collective `op` over `ranks` participants moving `bytes` per
  /// rank.  Tree collectives cost ceil(log2 P) stages of p2p transfers;
  /// all-to-all pays an extra linear factor for its P-way personalization.
  double collective_time(trace::CommOp op, std::uint64_t bytes, std::uint32_t ranks) const;
};

}  // namespace pmacx::simmpi
