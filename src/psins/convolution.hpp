// The PMaC convolution: application signature × machine profile.
//
// Implements Equation 1 of the paper:
//
//     memory_time = Σ_blocks Σ_type (memory_ref_{i,j} × size_of_ref) / memory_BW_j
//
// where a block's "type" — its working set and access pattern as expressed
// through its cache hit rates — selects the bandwidth from the MultiMAPS
// surface.  Floating-point time uses the profile's issue model with the
// block's ILP, and memory/FP work overlap by the machine's overlap factor
// ("Floating point time is modeled in a similar way with some overlap of
// memory and floating-point work", Section III-B).
#pragma once

#include <cstdint>
#include <vector>

#include "machine/profile.hpp"
#include "trace/task_trace.hpp"

namespace pmacx::psins {

/// Predicted time of one basic block on the target machine.
struct BlockTime {
  std::uint64_t block_id = 0;
  double memory_seconds = 0.0;
  double fp_seconds = 0.0;
  double block_seconds = 0.0;  ///< after memory/FP overlap
  double bandwidth_bytes_per_s = 0.0;  ///< surface lookup used
};

/// Predicted computation time of one task.
struct ComputePrediction {
  double seconds = 0.0;
  std::vector<BlockTime> blocks;
};

/// Applies Equation 1 to every block of `task` against `machine`.
ComputePrediction convolve_task(const trace::TaskTrace& task,
                                const machine::MachineProfile& machine);

}  // namespace pmacx::psins
