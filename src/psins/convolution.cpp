#include "psins/convolution.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace pmacx::psins {

ComputePrediction convolve_task(const trace::TaskTrace& task,
                                const machine::MachineProfile& machine) {
  util::metrics::StageTimer timer("psins.convolve");
  util::metrics::Registry::global().counter("psins.blocks_convolved").add(task.blocks.size());
  ComputePrediction prediction;
  prediction.blocks.reserve(task.blocks.size());

  for (const trace::BasicBlockRecord& block : task.blocks) {
    BlockTime bt;
    bt.block_id = block.id;

    const double bytes = block.bytes_moved();
    if (bytes > 0) {
      bt.bandwidth_bytes_per_s = machine.surface.lookup({
          block.get(trace::BlockElement::HitRateL1),
          block.get(trace::BlockElement::HitRateL2),
          block.get(trace::BlockElement::HitRateL3),
      });
      PMACX_ASSERT(bt.bandwidth_bytes_per_s > 0, "surface returned non-positive bandwidth");
      bt.memory_seconds = bytes / bt.bandwidth_bytes_per_s;
    }

    const double ilp = std::max(block.get(trace::BlockElement::Ilp), 1e-6);
    bt.fp_seconds = machine.fp_seconds(block.get(trace::BlockElement::FpAdd),
                                       block.get(trace::BlockElement::FpMul),
                                       block.get(trace::BlockElement::FpFma),
                                       block.get(trace::BlockElement::FpDivSqrt), ilp);

    // Overlap model: the overlapped fraction of the shorter stream hides
    // under the longer one; the remainder serializes.
    const double overlap = machine.system.mem_fp_overlap;
    const double longer = std::max(bt.memory_seconds, bt.fp_seconds);
    const double shorter = std::min(bt.memory_seconds, bt.fp_seconds);
    bt.block_seconds = longer + (1.0 - overlap) * shorter;

    prediction.seconds += bt.block_seconds;
    prediction.blocks.push_back(bt);
  }
  return prediction;
}

}  // namespace pmacx::psins
