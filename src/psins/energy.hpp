// The PSiNS energy convolution — the energy counterpart of Equation 1.
//
// Dynamic energy of a basic block is the sum over its references of the
// per-level access energy (weighted by the block's cumulative hit-rate
// split) plus its floating-point operation energies; static energy is the
// target's per-core static power integrated over the predicted runtime
// across all cores.  The same feature vectors drive both convolutions, so
// the extrapolated trace predicts energy at scale for free — the "important
// for both performance and energy" motivation of the paper's Section I.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/profile.hpp"
#include "psins/predictor.hpp"
#include "trace/signature.hpp"

namespace pmacx::psins {

/// Predicted energy of one block (demanding rank).
struct BlockEnergy {
  std::uint64_t block_id = 0;
  double memory_joules = 0.0;  ///< cache + memory access energy
  double fp_joules = 0.0;
};

/// Whole-run energy prediction.
struct EnergyPrediction {
  double dynamic_joules = 0.0;  ///< all ranks' access + fp energy
  double static_joules = 0.0;   ///< static power × cores × runtime
  double total_joules = 0.0;
  double mean_watts = 0.0;      ///< total / runtime
  std::vector<BlockEnergy> blocks;  ///< demanding rank's breakdown
};

/// Applies the energy convolution to `signature`, scaling the demanding
/// rank's dynamic energy to all ranks via their comm-trace work units and
/// integrating static power over `prediction`'s runtime.
EnergyPrediction estimate_energy(const trace::AppSignature& signature,
                                 const machine::MachineProfile& machine,
                                 const PredictionResult& prediction);

}  // namespace pmacx::psins
