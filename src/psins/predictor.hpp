// Whole-application performance prediction.
//
// Combines the convolution (computation model) with the replay engine
// (communication model): the demanding task's trace is convolved into
// compute seconds, every rank's compute bursts are scaled from its abstract
// work units, and the full run is replayed over the target's network model.
// "This mapping takes place in the PSiNS simulator that replays the entire
// execution of the HPC application on the target/predicted system"
// (Section III).
#pragma once

#include <cstdint>
#include <string>

#include "machine/profile.hpp"
#include "psins/convolution.hpp"
#include "trace/signature.hpp"

namespace pmacx::psins {

/// Outcome of one prediction.
struct PredictionResult {
  double runtime_seconds = 0.0;       ///< predicted wall clock of the run
  double compute_seconds = 0.0;       ///< demanding rank's computation time
  double comm_seconds = 0.0;          ///< demanding rank's communication time
  bool from_extrapolated_trace = false;  ///< provenance of the input trace
  ComputePrediction blocks;           ///< per-block breakdown (demanding rank)
};

/// Predicts the runtime of the run described by `signature` on `machine`.
/// The signature must contain the demanding rank's computation trace and the
/// comm traces of all ranks.
PredictionResult predict(const trace::AppSignature& signature,
                         const machine::MachineProfile& machine);

/// Hybrid MPI/OpenMP prediction: the signature describes per-*rank* work
/// (its traces collected in hybrid mode so hit rates include shared-cache
/// contention — synth::TracerOptions::threads_per_rank), and each rank's
/// computation executes on `threads_per_rank` cores at the given parallel
/// efficiency.  Communication replays over the (fewer) ranks unchanged.
PredictionResult predict_hybrid(const trace::AppSignature& signature,
                                const machine::MachineProfile& machine,
                                std::uint32_t threads_per_rank,
                                double thread_efficiency = 0.9);

/// Renders the human-readable result block exactly as pmacx_predict prints
/// it.  Shared between the CLI tool and the serving layer's PREDICT
/// responses, so a served answer is byte-identical to the tool's output for
/// the same inputs (the service golden tests assert this).
std::string render_prediction(const trace::TaskTrace& task, const std::string& machine_name,
                              const PredictionResult& prediction);

}  // namespace pmacx::psins
