#include "psins/reference.hpp"

#include <algorithm>
#include <optional>

#include "memsim/hierarchy.hpp"
#include "memsim/threaded.hpp"
#include "simmpi/replay.hpp"
#include "synth/patterns.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pmacx::psins {
namespace {

/// Per-reference-timed computation seconds of one rank: every kernel's
/// stream goes through the cache simulator and is charged exact per-level
/// costs; sampled kernels scale time by their sampling factor.
double simulate_rank_compute_seconds(const synth::SyntheticApp& app, std::uint32_t cores,
                                     std::uint32_t rank,
                                     const machine::MachineProfile& machine,
                                     const ReferenceOptions& options) {
  const std::uint32_t threads = std::max<std::uint32_t>(options.threads_per_rank, 1);
  std::optional<memsim::CacheHierarchy> flat;
  std::optional<memsim::ThreadedHierarchy> threaded;
  if (threads == 1) {
    flat.emplace(machine.system.hierarchy);
  } else {
    threaded.emplace(machine.system.hierarchy, threads,
                     std::min(options.shared_from_level,
                              machine.system.hierarchy.levels.size()));
  }
  double seconds = 0.0;

  for (const synth::KernelSpec& kernel : app.kernels(cores, rank)) {
    const std::uint64_t total_refs = kernel.total_refs();
    const std::uint64_t sim_refs = std::min(total_refs, options.max_refs_per_kernel);
    const double scale =
        sim_refs > 0 ? static_cast<double>(total_refs) / static_cast<double>(sim_refs) : 0.0;

    if (sim_refs > 0) {
      // Same stream construction (slicing, seeds) as the tracer: the
      // "machine" executes the same address streams the tracer observed.
      const std::uint64_t slice_bytes = synth::thread_slice_bytes(
          kernel.footprint_bytes, threads, machine.system.hierarchy.line_bytes());
      std::vector<synth::RefStream> streams;
      streams.reserve(threads);
      for (std::uint32_t t = 0; t < threads; ++t) {
        synth::StreamSpec spec;
        spec.pattern = kernel.pattern;
        spec.base_addr = (kernel.block_id << 40) + t * slice_bytes;
        spec.footprint_bytes = slice_bytes;
        spec.elem_bytes = kernel.elem_bytes;
        spec.stride_elems = kernel.stride_elems;
        spec.store_fraction = kernel.store_fraction;
        streams.emplace_back(spec, util::derive_seed(0x7ace, kernel.block_id * 64 + t));
      }

      if (flat)
        flat->set_scope(kernel.block_id);
      else
        threaded->set_scope(kernel.block_id);
      const memsim::AccessCounters before =
          flat ? flat->scope(kernel.block_id) : threaded->scope(kernel.block_id);
      for (std::uint64_t i = 0; i < sim_refs; ++i) {
        const auto t = static_cast<std::uint32_t>(i % threads);
        if (flat)
          flat->access(streams[t].next());
        else
          threaded->access(t, streams[t].next());
      }
      memsim::AccessCounters delta =
          flat ? flat->scope(kernel.block_id) : threaded->scope(kernel.block_id);
      delta.line_accesses -= before.line_accesses;
      for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl)
        delta.level_hits[lvl] -= before.level_hits[lvl];
      delta.memory_accesses -= before.memory_accesses;
      delta.tlb_misses -= before.tlb_misses;

      seconds += machine.timing.seconds_for(delta) * scale;
    }

    seconds += machine.fp_seconds(
                   static_cast<double>(kernel.visits) * kernel.fp_per_visit.adds,
                   static_cast<double>(kernel.visits) * kernel.fp_per_visit.muls,
                   static_cast<double>(kernel.visits) * kernel.fp_per_visit.fmas,
                   static_cast<double>(kernel.visits) * kernel.fp_per_visit.divs, kernel.ilp) *
               (1.0 - machine.system.mem_fp_overlap);
    // The overlapped FP fraction hides under memory time in this
    // memory-bound regime, mirroring the machine's real behaviour.
  }
  // Hybrid: the rank's work ran on `threads` cores at the given efficiency.
  // Pure MPI (one thread) has no intra-rank parallel overhead to model.
  if (threads == 1) return seconds;
  return seconds / (static_cast<double>(threads) * options.thread_efficiency);
}

}  // namespace

MeasuredRun measure_run(const synth::SyntheticApp& app, std::uint32_t cores,
                        const machine::MachineProfile& machine,
                        const ReferenceOptions& options) {
  PMACX_CHECK(cores > 0, "measure_run: zero cores");
  const std::uint32_t demanding = app.demanding_rank(cores);

  const double demanding_seconds =
      simulate_rank_compute_seconds(app, cores, demanding, machine, options);
  const double demanding_units = app.work_units(cores, demanding);
  PMACX_CHECK(demanding_units > 0, "measure_run: zero work units");
  const double seconds_per_unit = demanding_seconds / demanding_units;

  // Per-rank noise: run-to-run variation of the "measurement".
  std::vector<trace::CommTrace> comm;
  comm.reserve(cores);
  std::vector<double> scales(cores);
  util::Rng rng(options.seed);
  for (std::uint32_t rank = 0; rank < cores; ++rank) {
    comm.push_back(app.comm_trace(cores, rank));
    const double noise = 1.0 + options.noise * rng.normal();
    scales[rank] = seconds_per_unit * std::max(noise, 0.5);
  }

  const std::vector<simmpi::RankTimeline> timelines = simmpi::timelines_from_comm(comm, scales);
  const simmpi::ReplayResult replayed = simmpi::replay(timelines, machine.system.network);

  MeasuredRun run;
  run.runtime_seconds = replayed.runtime;
  run.compute_seconds = replayed.ranks[demanding].compute_seconds;
  run.comm_seconds = replayed.ranks[demanding].comm_seconds;
  return run;
}

}  // namespace pmacx::psins
