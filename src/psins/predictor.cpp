#include "psins/predictor.hpp"

#include <cstdio>

#include "simmpi/replay.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"

namespace pmacx::psins {

namespace {

PredictionResult predict_scaled(const trace::AppSignature& signature,
                                const machine::MachineProfile& machine,
                                double compute_speedup);

}  // namespace

PredictionResult predict(const trace::AppSignature& signature,
                         const machine::MachineProfile& machine) {
  return predict_scaled(signature, machine, 1.0);
}

PredictionResult predict_hybrid(const trace::AppSignature& signature,
                                const machine::MachineProfile& machine,
                                std::uint32_t threads_per_rank,
                                double thread_efficiency) {
  PMACX_CHECK(threads_per_rank >= 1, "hybrid prediction needs >= 1 thread per rank");
  PMACX_CHECK(thread_efficiency > 0.0 && thread_efficiency <= 1.0,
              "thread efficiency out of (0, 1]");
  return predict_scaled(signature, machine,
                        static_cast<double>(threads_per_rank) * thread_efficiency);
}

namespace {

PredictionResult predict_scaled(const trace::AppSignature& signature,
                                const machine::MachineProfile& machine,
                                double compute_speedup) {
  util::metrics::StageTimer timer("psins.predict");
  util::metrics::Registry::global().counter("psins.predictions").add();
  signature.validate();
  PMACX_CHECK(!signature.comm.empty(),
              "prediction requires communication traces for every rank");

  const trace::TaskTrace& demanding = signature.demanding_task();

  PredictionResult result;
  result.from_extrapolated_trace = demanding.extrapolated;
  result.blocks = convolve_task(demanding, machine);
  // Hybrid mode: the rank's work executes on several cores in parallel.
  result.compute_seconds = result.blocks.seconds / compute_speedup;

  // All ranks run the same code, so one convolution calibrates the
  // seconds-per-work-unit rate; each rank's compute bursts scale by its own
  // unit count carried in its comm trace.
  const double demanding_units =
      signature.comm[signature.demanding_rank].total_compute_units();
  PMACX_CHECK(demanding_units > 0, "demanding rank reports zero compute units");
  const double seconds_per_unit = result.compute_seconds / demanding_units;

  std::vector<double> scales(signature.core_count, seconds_per_unit);
  const std::vector<simmpi::RankTimeline> timelines =
      simmpi::timelines_from_comm(signature.comm, scales);
  const simmpi::ReplayResult replayed = simmpi::replay(timelines, machine.system.network);

  result.runtime_seconds = replayed.runtime;
  result.comm_seconds = replayed.ranks[signature.demanding_rank].comm_seconds;
  return result;
}

}  // namespace

std::string render_prediction(const trace::TaskTrace& task, const std::string& machine_name,
                              const PredictionResult& prediction) {
  char buffer[512];
  const int written = std::snprintf(
      buffer, sizeof(buffer),
      "\n%s @ %u cores on %s (%s trace):\n"
      "  predicted runtime: %.3f s\n"
      "  demanding rank:    %.3f s compute, %.3f s communication\n",
      task.app.c_str(), task.core_count, machine_name.c_str(),
      task.extrapolated ? "extrapolated" : "collected", prediction.runtime_seconds,
      prediction.compute_seconds, prediction.comm_seconds);
  PMACX_CHECK(written > 0 && static_cast<std::size_t>(written) < sizeof(buffer),
              "prediction rendering overflowed its buffer");
  return std::string(buffer, static_cast<std::size_t>(written));
}

}  // namespace pmacx::psins
