#include "psins/energy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pmacx::psins {
namespace {

/// Dynamic energy of one block from its feature vector.
BlockEnergy block_energy(const trace::BasicBlockRecord& block,
                         const machine::EnergyModel& model) {
  BlockEnergy energy;
  energy.block_id = block.id;

  // Split the block's references by resolving level: the incremental hit
  // fraction at level i is hr_i - hr_{i-1}; the remainder goes to memory.
  const double refs = block.memory_ops();
  if (refs > 0) {
    const double rates[] = {block.get(trace::BlockElement::HitRateL1),
                            block.get(trace::BlockElement::HitRateL2),
                            block.get(trace::BlockElement::HitRateL3)};
    double previous = 0.0;
    double joules = 0.0;
    for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl) {
      const double fraction = std::max(rates[lvl] - previous, 0.0);
      joules += refs * fraction * model.level_nj[lvl] * 1e-9;
      previous = std::max(previous, rates[lvl]);
    }
    joules += refs * std::max(1.0 - previous, 0.0) * model.memory_nj * 1e-9;
    energy.memory_joules = joules;
  }

  const double pipelined = block.get(trace::BlockElement::FpAdd) +
                           block.get(trace::BlockElement::FpMul) +
                           2.0 * block.get(trace::BlockElement::FpFma);
  const double divs = block.get(trace::BlockElement::FpDivSqrt);
  energy.fp_joules =
      pipelined * model.fp_nj * 1e-9 + divs * (model.fp_nj + model.div_extra_nj) * 1e-9;
  return energy;
}

}  // namespace

EnergyPrediction estimate_energy(const trace::AppSignature& signature,
                                 const machine::MachineProfile& machine,
                                 const PredictionResult& prediction) {
  signature.validate();
  PMACX_CHECK(prediction.runtime_seconds > 0, "energy needs a positive predicted runtime");
  const machine::EnergyModel& model = machine.system.energy;

  EnergyPrediction result;
  const trace::TaskTrace& demanding = signature.demanding_task();
  double demanding_joules = 0.0;
  result.blocks.reserve(demanding.blocks.size());
  for (const auto& block : demanding.blocks) {
    BlockEnergy energy = block_energy(block, model);
    demanding_joules += energy.memory_joules + energy.fp_joules;
    result.blocks.push_back(energy);
  }

  // Scale to all ranks by their work-unit share (all ranks run the same
  // code; dynamic energy tracks work almost linearly).
  PMACX_CHECK(!signature.comm.empty(), "energy scaling needs comm traces");
  const double demanding_units =
      signature.comm[signature.demanding_rank].total_compute_units();
  PMACX_CHECK(demanding_units > 0, "demanding rank reports zero work units");
  double total_units = 0.0;
  for (const auto& comm : signature.comm) total_units += comm.total_compute_units();
  result.dynamic_joules = demanding_joules * total_units / demanding_units;

  result.static_joules = model.static_watts_per_core *
                         static_cast<double>(signature.core_count) *
                         prediction.runtime_seconds;
  result.total_joules = result.dynamic_joules + result.static_joules;
  result.mean_watts = result.total_joules / prediction.runtime_seconds;
  return result;
}

}  // namespace pmacx::psins
