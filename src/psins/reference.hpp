// Reference ("measured") runtime simulation.
//
// The paper compares its predictions to the application's real measured
// runtime on the target machine (e.g. SPECFEM3D's 143 s on Phase-I Blue
// Waters).  We have no Blue Waters, so the measured runtime is produced by
// a *higher-fidelity* simulation that shares no aggregation shortcuts with
// the convolution: the demanding rank's kernels are pushed through the
// target's cache simulator and timed **per reference** with the parametric
// timing model (exact per-level hit counts × per-level costs — no MultiMAPS
// surface, no per-block bandwidth aggregation), and the run is replayed over
// the network model with per-rank measurement noise.  The gap between this
// path and the convolution's is the honest modeling error Table I reports.
#pragma once

#include <cstdint>

#include "machine/profile.hpp"
#include "synth/app.hpp"

namespace pmacx::psins {

/// Reference-run knobs.
struct ReferenceOptions {
  /// Per-kernel simulated reference cap (higher fidelity than the tracer's).
  std::uint64_t max_refs_per_kernel = 3'000'000;
  /// Per-rank run-to-run measurement noise (relative sigma).
  double noise = 0.01;
  /// Hybrid MPI/OpenMP runs: threads hosted per rank (cache simulation uses
  /// the thread-aware hierarchy; compute time divides by threads×efficiency).
  std::uint32_t threads_per_rank = 1;
  double thread_efficiency = 0.9;
  std::size_t shared_from_level = 2;
  std::uint64_t seed = 0x9ea5;
};

/// Breakdown of one measured run.
struct MeasuredRun {
  double runtime_seconds = 0.0;
  double compute_seconds = 0.0;  ///< demanding rank computation
  double comm_seconds = 0.0;     ///< demanding rank communication
};

/// "Runs" the application at `cores` on the machine and measures it.
MeasuredRun measure_run(const synth::SyntheticApp& app, std::uint32_t cores,
                        const machine::MachineProfile& machine,
                        const ReferenceOptions& options = {});

}  // namespace pmacx::psins
