#include "core/report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace pmacx::core {

std::vector<std::pair<std::string, std::size_t>> FitReport::form_histogram() const {
  std::map<std::string, std::size_t> counts;
  for (const ElementFit& fit : elements)
    if (fit.influential) ++counts[stats::form_name(fit.model.form)];
  return {counts.begin(), counts.end()};
}

double FitReport::worst_influential_error() const {
  double worst = 0.0;
  for (const ElementFit& fit : elements)
    if (fit.influential) worst = std::max(worst, fit.max_fit_rel_error);
  return worst;
}

std::vector<const ElementFit*> FitReport::worst_elements(std::size_t count) const {
  std::vector<const ElementFit*> influential;
  for (const ElementFit& fit : elements)
    if (fit.influential) influential.push_back(&fit);
  std::sort(influential.begin(), influential.end(),
            [](const ElementFit* a, const ElementFit* b) {
              return a->max_fit_rel_error > b->max_fit_rel_error;
            });
  if (influential.size() > count) influential.resize(count);
  return influential;
}

std::string FitReport::to_csv() const {
  std::vector<std::string> header = {"block", "instr", "element"};
  for (double value : axis) header.push_back(util::format("at_%g", value));
  for (const char* column : {"form", "a", "b", "c", "sse", "r2", "max_fit_rel_error",
                             "extrapolated", "clamped", "influential", "ci_lo", "ci_hi",
                             "bayes_lo", "bayes_median", "bayes_hi", "bayes_form",
                             "bayes_weight"})
    header.emplace_back(column);

  util::Table table(std::move(header));
  for (const ElementFit& fit : elements) {
    std::vector<std::string> row;
    row.push_back(std::to_string(fit.key.block_id));
    row.push_back(fit.key.is_block_level() ? "-" : std::to_string(fit.key.instr_index));
    row.push_back(fit.key.is_block_level()
                      ? trace::block_element_name(
                            static_cast<trace::BlockElement>(fit.key.element))
                      : trace::instr_element_name(
                            static_cast<trace::InstrElement>(fit.key.element)));
    for (double value : fit.inputs) row.push_back(util::format("%.17g", value));
    row.push_back(stats::form_name(fit.model.form));
    for (double param : fit.model.params) row.push_back(util::format("%.17g", param));
    row.push_back(util::format("%.6g", fit.model.sse));
    row.push_back(util::format("%.6f", fit.model.r2));
    row.push_back(util::format("%.6g", fit.max_fit_rel_error));
    row.push_back(util::format("%.17g", fit.extrapolated));
    row.push_back(util::format("%.17g", fit.clamped));
    row.push_back(fit.influential ? "1" : "0");
    row.push_back(fit.has_interval ? util::format("%.17g", fit.interval.lo) : "");
    row.push_back(fit.has_interval ? util::format("%.17g", fit.interval.hi) : "");
    row.push_back(fit.has_bayes ? util::format("%.17g", fit.bayes.lo) : "");
    row.push_back(fit.has_bayes ? util::format("%.17g", fit.bayes.median) : "");
    row.push_back(fit.has_bayes ? util::format("%.17g", fit.bayes.hi) : "");
    row.push_back(fit.has_bayes ? stats::form_name(fit.bayes.map_form) : "");
    row.push_back(fit.has_bayes ? util::format("%.6g", fit.bayes.map_weight) : "");
    table.add_row(std::move(row));
  }
  return table.to_csv();
}

std::string FitReport::summary() const {
  std::size_t influential = 0;
  for (const ElementFit& fit : elements)
    if (fit.influential) ++influential;

  std::ostringstream out;
  out << "extrapolation to " << target << " " << axis_name << " from {";
  for (std::size_t i = 0; i < axis.size(); ++i) out << (i ? ", " : "") << axis[i];
  out << "}\n";
  out << "  elements: " << elements.size() << " total, " << influential << " influential\n";
  out << "  winning forms (influential elements):\n";
  for (const auto& [form, count] : form_histogram())
    out << "    " << form << ": " << count << "\n";
  out << "  worst influential fit error: "
      << util::human_percent(worst_influential_error()) << "\n";
  return out.str();
}

}  // namespace pmacx::core
