// The trace extrapolator — the paper's primary contribution (Section IV).
//
// Given the demanding task's trace files at a series of small core counts,
// every element of every basic block's (and instruction's) feature vector is
// fitted against the core count with each canonical form — constant, linear,
// logarithmic, exponential (plus optional extension forms) — and the best
// fit, evaluated at the target core count, becomes that element's value in
// the synthesized trace.  Domain knowledge is applied after evaluation:
// rates clamp into [0, 1], counts floor at 0, and cumulative hit rates are
// re-monotonized (L1 ≤ L2 ≤ L3).
#pragma once

#include <span>

#include "core/align.hpp"
#include "core/diagnostics.hpp"
#include "core/report.hpp"
#include "stats/canonical.hpp"
#include "stats/suffstats.hpp"
#include "trace/task_trace.hpp"

namespace pmacx::util {
class ThreadPool;
}

namespace pmacx::core {

/// Extrapolation policy knobs.
struct ExtrapolationOptions {
  stats::FitOptions fit;                   ///< canonical form set & selection
  MissingPolicy missing = MissingPolicy::ZeroFill;
  /// Influence threshold: an element is influential when its instruction
  /// (or block) carries more than this fraction of the task's total memory
  /// operations — or floating-point operations for memory-less instructions.
  /// The paper uses 0.1 %.
  double influence_threshold = 0.001;
  /// Round count-like elements (visits, op counts) to integers in the
  /// output trace.
  bool round_counts = false;
  /// When > 0, attach residual-bootstrap confidence intervals (this many
  /// resamples, 90 % coverage) to every *influential* element's report
  /// entry.  Off by default: it multiplies fitting cost by the resample
  /// count.
  std::size_t bootstrap_resamples = 0;
  /// Bayesian interval mode: when in (0, 1), every element additionally gets
  /// posterior-predictive lo/median/hi values at this central coverage
  /// (stats::bayes over the already-fitted candidates — no refitting), the
  /// report rows carry them (bayes_* CSV columns), and the result gains
  /// clamped lo/median/hi traces.  The point path — trace bytes, point
  /// report columns, diagnostics, every non-fits.bayes.* counter — is
  /// bit-identical to a run with interval mode off.  0 disables.
  double interval_coverage = 0.0;
  /// Posterior-predictive mixture draws per element in interval mode.
  std::size_t interval_samples = 256;
  /// Domain-aware selection: a candidate fit whose *extrapolated* value
  /// falls outside the element's valid domain (negative count, rate outside
  /// [0,1]) is rejected in favour of the next-best in-domain candidate —
  /// e.g. a log fit of decaying counts that extrapolates negative loses to
  /// the exponential, and a linear fit of a rising hit rate that overshoots
  /// 1.0 loses to the saturating inverse-p.  When no candidate is in-domain
  /// the overall best fit is used and its value clamped.
  bool reject_out_of_domain = true;
  /// Execution parallelism for per-element fitting and synthesis.
  /// 0 = run on a lazily created process-wide pool, sized once at first use
  /// from PMACX_THREADS (else the hardware thread count) — repeated calls
  /// never pay thread spawn/join; 1 = serial; N > 1 = a private pool of N
  /// workers for this call.  The parallel path produces byte-identical
  /// traces, reports, and diagnostics to the serial path: fits run
  /// concurrently but results are applied in element order.
  std::size_t threads = 0;
  /// Externally owned pool to run on (overrides `threads`); not owned.
  /// Lets the pipeline, tools, and benches amortize one pool across many
  /// extrapolations instead of spawning workers per call.
  util::ThreadPool* pool = nullptr;
};

/// Result of one extrapolation: the synthetic trace plus the fit report
/// and the degradation ledger (fallback fits, clamped values).
struct ExtrapolationResult {
  trace::TaskTrace trace;
  FitReport report;
  DiagnosticsReport diagnostics;
  /// Interval mode only (ExtrapolationOptions::interval_coverage in (0,1)):
  /// domain-clamped lo/median/hi synthetic traces bracketing `trace` with
  /// the per-element posterior-predictive quantiles.  Element-wise
  /// lo ≤ median ≤ hi holds after clamping and hit-rate monotonization.
  bool has_interval = false;
  trace::TaskTrace trace_lo;
  trace::TaskTrace trace_median;
  trace::TaskTrace trace_hi;
};

/// Extrapolates the series of traces (strictly increasing core counts, ≥ 2,
/// same app/rank/target) to `target_cores`.  The output trace is marked
/// extrapolated=true.
ExtrapolationResult extrapolate_task(std::span<const trace::TaskTrace> inputs,
                                     std::uint32_t target_cores,
                                     const ExtrapolationOptions& options = {});

/// Target-independent fitted candidates for one aligned element: the
/// (possibly FitPresent-restricted) series that was actually fitted, every
/// canonical candidate from stats::fit_all, and their selection scores.
/// Nothing here depends on the extrapolation target — which is what makes a
/// fitted model set reusable across "what happens at 6144 cores? at 24576?"
/// queries.
struct ElementModels {
  std::vector<double> fit_axis;
  std::vector<double> fit_values;
  std::vector<stats::FittedModel> candidates;  ///< order of options.fit.forms
  std::vector<double> scores;                  ///< stats::selection_scores
  /// Sufficient statistics of the fit series (every transform family).
  /// Fixed-size and O(1)-appendable: an ingested trace at a new core count
  /// extends these per element without re-reading earlier samples.
  stats::SeriesMoments moments;
  bool influential = false;                    ///< paper's 0.1 % rule
};

/// The expensive, target-independent half of an extrapolation: the
/// alignment plus per-element canonical fits.  Evaluate it at any target
/// with extrapolate_from_models.  This is the unit the serving layer's
/// content-addressed model store caches ("fit once, query many").
struct TaskModelSet {
  Alignment alignment;
  std::vector<ElementModels> models;  ///< parallel to alignment.elements
  /// Policy snapshot used for fitting (pool pointer cleared: a cached set
  /// must not retain a reference to a caller-owned pool).
  ExtrapolationOptions options;
  std::string app;
  std::uint32_t rank = 0;
  std::string target_system;
  std::string axis_name = "cores";

  /// Approximate resident size, for byte-bounded cache accounting.
  std::size_t memory_bytes() const;
};

/// Fits canonical models for every aligned element of the input series —
/// the expensive half of extrapolate_task — without committing to a target.
/// The per-element fit stage fans out across the pool exactly like
/// extrapolate_task's (timed under extrapolate.fit).
TaskModelSet fit_task_models(std::span<const trace::TaskTrace> inputs,
                             const ExtrapolationOptions& options = {});

/// Evaluates a fitted model set at `target_cores`: per-element model
/// selection (domain-aware when the set was fitted with
/// reject_out_of_domain), evaluation, clamping, and trace synthesis.  For
/// the same inputs and options the result is byte-identical to
/// extrapolate_task(inputs, target_cores, options) — trace, report, and
/// diagnostics all match — so cached answers are indistinguishable from
/// freshly computed ones (tested in tests/core_extrap_test.cpp).  The
/// selection stage runs serially (timed under extrapolate.select): without
/// refitting it is far off any hot path.
ExtrapolationResult extrapolate_from_models(const TaskModelSet& models,
                                            std::uint32_t target_cores);

/// extrapolate_from_models with the model set's interval mode overridden:
/// `interval_coverage` in (0, 1) turns Bayesian intervals on at that
/// coverage, 0 turns them off — without refitting or touching the cached
/// set.  The point half of the result is bit-identical to
/// extrapolate_from_models(models, target_cores) either way, which is what
/// lets the serving layer answer PREDICT and PREDICT_INTERVAL from one
/// cached model set.
ExtrapolationResult extrapolate_from_models(const TaskModelSet& models,
                                            std::uint32_t target_cores,
                                            double interval_coverage);

/// Input-parameter extrapolation (Section VI future work): the same
/// machinery along a problem-size axis at a *fixed* core count.  `inputs`
/// were traced with strictly increasing `parameter_values` (e.g. mesh
/// elements, particle counts); the result predicts the feature vectors at
/// `target_value`.  All inputs must share one core count.
ExtrapolationResult extrapolate_parameter(std::span<const trace::TaskTrace> inputs,
                                          std::span<const double> parameter_values,
                                          double target_value,
                                          const ExtrapolationOptions& options = {});

}  // namespace pmacx::core
