#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>

#include "core/checkpoint.hpp"
#include "core/comm_extrap.hpp"
#include "stats/descriptive.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/threadpool.hpp"

namespace pmacx::core {
namespace {

/// What a cached collection must have been produced by for the pipeline to
/// trust it: everything that shapes a collected signature.  Text form, saved
/// via save_checked and compared by equality — a human can also `cat` the
/// stamp (modulo the trailer) to see why a resume redid a collection.
std::string collection_stamp(const std::string& app_name, std::uint32_t cores,
                             const synth::TracerOptions& tracer) {
  std::ostringstream stamp;
  stamp << kCheckpointVersion << '\n'
        << "app=" << app_name << '\n'
        << "cores=" << cores << '\n'
        << "target=" << tracer.target.name << '\n'
        << "max_refs=" << tracer.max_refs_per_kernel << '\n'
        << "sample_shift=" << tracer.sample_shift << '\n'
        << "threads_per_rank=" << tracer.threads_per_rank << '\n'
        << "shared_from_level=" << tracer.shared_from_level << '\n'
        << "instruction_detail=" << (tracer.instruction_detail ? 1 : 0) << '\n'
        << "seed=" << tracer.seed << '\n';
  return stamp.str();
}

}  // namespace

double PipelineResult::extrapolated_error() const {
  PMACX_CHECK(measured.has_value(), "pipeline did not measure the target run");
  return stats::absolute_relative_error(prediction_from_extrapolated.runtime_seconds,
                                        measured->runtime_seconds);
}

double PipelineResult::collected_error() const {
  PMACX_CHECK(measured.has_value(), "pipeline did not measure the target run");
  PMACX_CHECK(prediction_from_collected.has_value(),
              "pipeline did not collect at the target count");
  return stats::absolute_relative_error(prediction_from_collected->runtime_seconds,
                                        measured->runtime_seconds);
}

PipelineResult run_pipeline(const synth::SyntheticApp& app,
                            const machine::MachineProfile& machine,
                            const PipelineConfig& config) {
  PMACX_CHECK(config.small_core_counts.size() >= 2,
              "pipeline needs at least two small core counts");
  PMACX_CHECK(std::is_sorted(config.small_core_counts.begin(), config.small_core_counts.end()),
              "small core counts must be ascending");
  PMACX_CHECK(config.target_core_count > config.small_core_counts.back(),
              "target core count must exceed the largest small count");
  PMACX_CHECK(config.tracer.target.name == machine.system.hierarchy.name,
              "tracer must simulate the prediction target's hierarchy");

  PipelineResult result;

  // Resolve the run's pool once and share it across collection, fitting,
  // and comm synthesis.  An externally supplied extrapolation pool wins.
  util::ThreadPool* pool = config.extrapolation.pool;
  std::optional<util::ThreadPool> pool_storage;
  if (pool == nullptr) {
    const std::size_t threads = util::ThreadPool::resolve_threads(config.threads);
    if (threads > 1) {
      pool_storage.emplace(threads);
      pool = &*pool_storage;
    }
  }
  const bool parallel = pool != nullptr && !pool->serial();

  const bool checkpointed = !config.checkpoint_dir.empty();
  if (checkpointed) util::ensure_directory(config.checkpoint_dir);

  // 1. Collect at the small counts.  Each count's collection is an
  // independent simulation, so they overlap across the pool; parallel_map
  // keeps the signatures in ascending-count order.  With a checkpoint
  // directory, each count persists its signature plus a stamp; a resume
  // loads stamped collections instead of re-simulating them.  The stamp is
  // written only after the signature directory is complete, so a crash
  // mid-save leaves an unstamped (ignored) directory, never a half-loaded
  // signature.
  std::atomic<std::size_t> collections_reused{0};
  {
    util::metrics::StageTimer timer("pipeline.collect");
    auto collect = [&](std::size_t i) {
      const std::uint32_t cores = config.small_core_counts[i];
      const std::string sig_dir =
          config.checkpoint_dir + "/collect_" + std::to_string(cores);
      const std::string stamp_path = sig_dir + ".stamp";
      const std::string stamp = collection_stamp(app.name(), cores, config.tracer);
      if (checkpointed) {
        const std::optional<std::string> prior = util::try_load_checked(stamp_path);
        if (prior && *prior == stamp) {
          try {
            trace::AppSignature cached = trace::AppSignature::load(sig_dir);
            PMACX_LOG_INFO << app.name() << ": reusing checkpointed signature at "
                           << cores << " cores";
            collections_reused.fetch_add(1, std::memory_order_relaxed);
            return cached;
          } catch (const util::Error&) {
            // Stamped but unloadable (damaged files): fall through and
            // re-collect — a checkpoint must never be able to fail a run.
          }
        }
      }
      PMACX_LOG_INFO << app.name() << ": collecting signature at " << cores << " cores";
      synth::TracerOptions tracer = config.tracer;
      tracer.pool = pool;  // nested fan-out: waiting tasks help, so this is safe
      trace::AppSignature signature = synth::collect_signature(app, cores, tracer);
      if (checkpointed) {
        util::ensure_directory(sig_dir);
        signature.save(sig_dir);
        util::save_checked(stamp_path, stamp);
      }
      return signature;
    };
    if (parallel) {
      result.small_signatures = pool->parallel_map<trace::AppSignature>(
          config.small_core_counts.size(), collect);
    } else {
      for (std::size_t i = 0; i < config.small_core_counts.size(); ++i)
        result.small_signatures.push_back(collect(i));
    }
  }
  std::vector<trace::TaskTrace> series;
  for (const trace::AppSignature& signature : result.small_signatures)
    series.push_back(signature.demanding_task());

  // 2. Extrapolate the demanding task to the target count.
  PMACX_LOG_INFO << app.name() << ": extrapolating to " << config.target_core_count
                 << " cores";
  ExtrapolationOptions extrapolation = config.extrapolation;
  extrapolation.pool = pool;
  if (pool == nullptr) extrapolation.threads = 1;
  ExtrapolationResult extrapolated = [&] {
    util::metrics::StageTimer timer("pipeline.extrapolate");
    if (!checkpointed)
      return extrapolate_task(series, config.target_core_count, extrapolation);
    // Checkpointed fitting + evaluation — byte-identical to extrapolate_task
    // (the extrapolate_from_models contract), but a killed run resumes from
    // the persisted chunks.  The digest covers the collected traces' bytes
    // and the fit options, so stale chunks can never leak into the result.
    CheckpointConfig ckpt;
    ckpt.dir = config.checkpoint_dir + "/models";
    ckpt.digest = models_digest_for_traces(series, extrapolation);
    const TaskModelSet models = fit_task_models_checkpointed(series, extrapolation, ckpt);
    return extrapolate_from_models(models, config.target_core_count);
  }();
  result.report = std::move(extrapolated.report);
  result.diagnostics.merge(extrapolated.diagnostics);
  if (!result.diagnostics.clean())
    PMACX_LOG_WARN << app.name() << ": extrapolation degraded — "
                   << result.diagnostics.fallback_fits << " fallback fits, "
                   << result.diagnostics.clamped_values << " clamped values";

  // 3. Assemble the synthetic signature and predict.
  {
    util::metrics::StageTimer timer("pipeline.assemble_predict");
    trace::AppSignature& synthetic = result.extrapolated_signature;
    synthetic.app = app.name();
    synthetic.core_count = config.target_core_count;
    synthetic.target_system = config.tracer.target.name;
    synthetic.demanding_rank = app.demanding_rank(config.target_core_count);
    extrapolated.trace.rank = synthetic.demanding_rank;
    synthetic.tasks.push_back(std::move(extrapolated.trace));
    if (config.extrapolate_comm) {
      PMACX_LOG_INFO << app.name() << ": extrapolating communication traces";
      synthetic.comm =
          extrapolate_comm(result.small_signatures, config.target_core_count).comm;
    } else if (parallel) {
      // Instantiating one comm trace per target rank is the widest loop in
      // the pipeline (e.g. 6144 ranks); rank order is preserved.
      synthetic.comm = pool->parallel_map<trace::CommTrace>(
          config.target_core_count,
          [&](std::size_t rank) {
            return app.comm_trace(config.target_core_count,
                                  static_cast<std::uint32_t>(rank));
          },
          /*grain=*/64);
    } else {
      synthetic.comm.reserve(config.target_core_count);
      for (std::uint32_t rank = 0; rank < config.target_core_count; ++rank)
        synthetic.comm.push_back(app.comm_trace(config.target_core_count, rank));
    }
    synthetic.validate();

    result.prediction_from_extrapolated = psins::predict(synthetic, machine);
  }

  // 4. Optionally collect at the target count and predict from that.
  if (config.collect_at_target) {
    util::metrics::StageTimer timer("pipeline.collect_target");
    PMACX_LOG_INFO << app.name() << ": collecting signature at target count "
                   << config.target_core_count;
    synth::TracerOptions tracer = config.tracer;
    tracer.pool = pool;
    result.collected_signature =
        synth::collect_signature(app, config.target_core_count, tracer);
    result.prediction_from_collected = psins::predict(*result.collected_signature, machine);
  }

  // 5. Optionally measure the "real" runtime.
  if (config.measure_at_target) {
    util::metrics::StageTimer timer("pipeline.measure");
    PMACX_LOG_INFO << app.name() << ": measuring reference run at "
                   << config.target_core_count;
    result.measured =
        psins::measure_run(app, config.target_core_count, machine, config.reference);
  }

  // The DiagnosticsReport above is the per-run ledger; these counters make
  // the same events visible across runs in metrics snapshots.
  util::metrics::Registry& metrics = util::metrics::Registry::global();
  metrics.counter("pipeline.runs").add();
  if (!result.diagnostics.clean()) metrics.counter("pipeline.degraded_runs").add();
  metrics.counter("pipeline.salvaged_files").add(result.diagnostics.salvaged_files);
  metrics.counter("pipeline.lost_blocks").add(result.diagnostics.lost_blocks);
  metrics.counter("pipeline.checkpoint.collections_reused")
      .add(collections_reused.load(std::memory_order_relaxed));

  return result;
}

}  // namespace pmacx::core
