// Per-run degradation accounting.
//
// The pipeline is designed to *degrade* rather than abort on imperfect
// input: damaged binary traces are salvaged block-by-block, failed or
// non-finite canonical fits fall back to the constant form, and
// out-of-domain extrapolations are clamped.  Each of those recoveries is
// silent at the point it happens — which is exactly how a corrupted trace
// poisons a Table I prediction unnoticed.  DiagnosticsReport is the ledger:
// every layer records what it salvaged, substituted, or clamped, the
// pipeline merges the ledgers, and the tools print them so a run that
// degraded is visibly different from a clean one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pmacx::core {

/// Counts of every graceful-degradation event in one run, plus a bounded
/// list of human-readable warnings describing the first offenders.
struct DiagnosticsReport {
  /// Warnings kept verbatim; beyond this only the count grows.
  static constexpr std::size_t kMaxWarnings = 32;

  /// Blocks recovered from damaged trace files via salvage loading.
  std::size_t salvaged_blocks = 0;
  /// Blocks the damaged files declared but salvage could not recover.
  std::uint64_t lost_blocks = 0;
  /// Input files that needed salvage at all.
  std::size_t salvaged_files = 0;
  /// Element fits where no canonical form produced a usable (finite)
  /// extrapolation and the constant fallback was substituted.
  std::size_t fallback_fits = 0;
  /// Extrapolated values clamped back into their element's domain
  /// (negative counts floored, rates clipped to [0, 1]).
  std::size_t clamped_values = 0;

  std::vector<std::string> warnings;
  /// Warnings dropped after `warnings` filled up.
  std::size_t suppressed_warnings = 0;

  /// Records a warning, keeping at most kMaxWarnings verbatim.
  void warn(std::string message);

  /// Accumulates another report (e.g. per-file salvage into the run total).
  void merge(const DiagnosticsReport& other);

  /// True when nothing degraded — every input parsed cleanly and every fit
  /// extrapolated in-domain.
  bool clean() const;

  /// Multi-line human-readable account ("clean" collapses to one line).
  std::string summary() const;
};

}  // namespace pmacx::core
