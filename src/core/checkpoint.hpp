// Crash-safe checkpointing of fitted model sets (pmacx-ckpt-v1).
//
// The expensive half of an extrapolation is per-element canonical fitting;
// everything after it is cheap and deterministic.  A checkpointed fit
// persists ElementModels in fixed-size chunks as they complete — each chunk
// written atomically (util::save_checked: temp + fsync + rename + CRC
// trailer) — so a kill -9 at any instant loses at most the chunk in flight.
// A resume re-fits only the missing chunks and, because doubles round-trip
// as raw bit patterns and extrapolate_from_models == extrapolate_task is an
// existing tested contract, produces byte-identical traces, reports, and
// diagnostics to an uninterrupted run.
//
// Staleness is ruled out by content addressing: every store is keyed by the
// same 16-hex-char digest the serving layer uses (input trace CRCs + the
// option fields that shape fitting).  The manifest and every chunk carry the
// digest; any mismatch — different inputs, different options, a different
// element count, or a torn/corrupt file — discards the stale state and
// triggers a clean full re-fit.  A checkpoint can therefore never smuggle
// wrong models into a run; the worst failure mode is redoing work.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/extrapolator.hpp"

namespace pmacx::core {

/// On-disk format version; bumped whenever the manifest or chunk layout
/// changes.  A version mismatch discards the checkpoint (full re-fit).
/// v2 appended the per-element sufficient-statistics block (SeriesMoments)
/// after the influential flag; v1 checkpoints are discarded cleanly.
inline constexpr const char* kCheckpointVersion = "pmacx-ckpt-v2";

/// Content digest of a fitting workload: 16 lowercase hex chars over the
/// input trace CRCs and every option field that changes fitted models.
/// This is the same digest (same preimage, same wire format, documented in
/// docs/FORMATS.md) that pmacx-rpc-v1 clients and the serving layer's model
/// store use, so a checkpoint written by the CLI addresses the same content
/// as a server cache entry.
std::string models_digest(const std::vector<std::uint32_t>& input_crcs,
                          const ExtrapolationOptions& options);

/// models_digest over the raw bytes of trace files on disk (CRC of the file
/// content, matching service::ModelStore's keying of on-disk traces).
std::string models_digest_for_files(const std::vector<std::string>& trace_paths,
                                    const ExtrapolationOptions& options);

/// models_digest over in-memory traces (CRC of their canonical binary
/// encoding) — for callers like the pipeline whose inputs never hit disk.
std::string models_digest_for_traces(std::span<const trace::TaskTrace> inputs,
                                     const ExtrapolationOptions& options);

/// Where and how to checkpoint one fitting workload.
struct CheckpointConfig {
  std::string dir;     ///< checkpoint directory (created if missing)
  std::string digest;  ///< models_digest of the workload
  /// Elements per chunk file.  Smaller chunks lose less work to a crash but
  /// pay more fsyncs; 256 keeps both costs negligible against fitting.
  std::size_t chunk_elements = 256;
  /// Test hook: after this many chunk *writes* (0 = never), raise SIGKILL —
  /// a real, unmaskable mid-run crash for resume tests, placed exactly at
  /// the worst moment a scheduler could pick.
  std::size_t kill_after_chunks = 0;
};

/// What a checkpointed fit did — reuse vs. recompute accounting.  Mirrored
/// into the metrics registry (checkpoint.elements_reused, .elements_fitted,
/// .chunks_discarded, .resumes).
struct CheckpointStats {
  std::size_t elements_total = 0;
  std::size_t elements_reused = 0;   ///< loaded from valid chunks
  std::size_t elements_fitted = 0;   ///< recomputed this run
  std::size_t chunks_discarded = 0;  ///< stale/torn chunk files dropped
  bool resumed = false;              ///< at least one chunk was reused
};

/// The chunked on-disk store behind fit_task_models_checkpointed.  Exposed
/// for tests (corruption sweeps, version/digest mismatch) and future
/// subsystems that persist per-range results.
class ModelCheckpoint {
 public:
  explicit ModelCheckpoint(CheckpointConfig config);

  /// Validates or (re)initializes the store for `element_count` elements.
  /// An absent, torn, or mismatching manifest (version, digest, element
  /// count, chunk size) discards every existing chunk and writes a fresh
  /// manifest — never throws for bad prior state, only for I/O failures.
  void open(std::size_t element_count);

  std::size_t chunk_count() const;
  std::size_t chunk_begin(std::size_t chunk) const;
  std::size_t chunk_end(std::size_t chunk) const;

  /// Loads chunk `chunk` if a complete, digest-matching record exists.
  /// Torn or stale files are deleted, counted, and reported as absent.
  std::optional<std::vector<ElementModels>> load_chunk(std::size_t chunk);

  /// Atomically persists chunk `chunk` (must hold exactly the chunk's
  /// element range).
  void save_chunk(std::size_t chunk, std::span<const ElementModels> models);

  std::size_t chunks_discarded() const { return discarded_; }
  const CheckpointConfig& config() const { return config_; }

 private:
  std::string manifest_path() const;
  std::string chunk_path(std::size_t chunk) const;
  void discard_all_chunks();

  CheckpointConfig config_;
  std::size_t element_count_ = 0;
  bool opened_ = false;
  std::size_t discarded_ = 0;
};

/// fit_task_models with crash-safe persistence: chunks already on disk under
/// a matching digest are loaded instead of fitted (so resumed runs attempt
/// strictly fewer fits — visible in fits.attempted.* metrics), missing ones
/// are fitted with the options' pool policy and persisted as they complete.
/// The returned set is byte-for-byte the one fit_task_models would produce.
TaskModelSet fit_task_models_checkpointed(std::span<const trace::TaskTrace> inputs,
                                          const ExtrapolationOptions& options,
                                          const CheckpointConfig& config,
                                          CheckpointStats* stats = nullptr);

}  // namespace pmacx::core
