// Clustered multi-task extrapolation — the paper's future-work direction.
//
// Section VI: a full signature at 8192 cores is 8192 trace files, and the
// open question is how per-task work migrates as the app strong-scales.
// "These algorithms could be used to first cluster MPI-tasks with similar
// properties and then use the 'centroid' file from each cluster as a base to
// extrapolate data in the centroid trace files."  This module implements
// that: tasks of the largest input signature are clustered on aggregate
// feature vectors (k-means, elbow-selected k), each cluster's centroid task
// is matched across core counts by relative rank position, and each centroid
// series is extrapolated like the single demanding task is.
#pragma once

#include <cstdint>
#include <span>

#include "core/extrapolator.hpp"
#include "trace/signature.hpp"

namespace pmacx::core {

/// Clustering policy.
struct ClusterOptions {
  std::size_t max_clusters = 4;
  double elbow_threshold = 0.15;
  ExtrapolationOptions extrapolation;
  std::uint64_t seed = 0xc105;  ///< deterministic k-means seeding
};

/// One cluster's extrapolated representative.
struct ExtrapolatedCluster {
  std::vector<std::uint32_t> member_ranks;  ///< ranks (largest input signature)
  double rank_share = 0.0;                  ///< |members| / traced ranks
  trace::TaskTrace representative;          ///< extrapolated centroid trace
  FitReport report;
};

/// Result of clustered extrapolation.
struct ClusteredExtrapolation {
  std::size_t k = 0;
  std::vector<ExtrapolatedCluster> clusters;

  /// Synthesizes per-rank compute-work weights at the target core count:
  /// each rank inherits its cluster representative's work share (uniform
  /// within cluster).  Useful for building full target signatures.
  std::vector<double> rank_work_weights(std::uint32_t target_cores) const;
};

/// Runs clustered extrapolation.  Every input signature must trace the same
/// number of ranks (≥ 2 ranks recommended); core counts strictly increase.
ClusteredExtrapolation extrapolate_clustered(std::span<const trace::AppSignature> inputs,
                                             std::uint32_t target_cores,
                                             const ClusterOptions& options = {});

}  // namespace pmacx::core
