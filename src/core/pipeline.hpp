// End-to-end methodology pipeline.
//
// Automates the paper's full evaluation flow for one application and one
// target machine (Section V):
//
//   1. collect signatures at a series of small core counts (tracer + target
//      cache simulation),
//   2. extrapolate the demanding task's trace to the large core count,
//   3. assemble a synthetic signature at the large core count and predict
//      runtime with PSiNS,
//   4. optionally also collect a real signature at the large core count and
//      predict from it (the paper's "Coll." rows), and
//   5. optionally measure the "real" runtime with the reference simulator.
//
// Communication traces at the target count come from the application model
// directly by default, as in the paper (communication-trace extrapolation
// is complementary, cited work — ScalaExtrap [22]).  Setting
// `extrapolate_comm` synthesizes them from the small-count collections too
// (core/comm_extrap.hpp), making the target signature fully trace-derived.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/diagnostics.hpp"
#include "core/extrapolator.hpp"
#include "machine/profile.hpp"
#include "psins/predictor.hpp"
#include "psins/reference.hpp"
#include "synth/tracer.hpp"
#include "trace/signature.hpp"

namespace pmacx::core {

/// Pipeline configuration.
struct PipelineConfig {
  std::vector<std::uint32_t> small_core_counts;  ///< e.g. {96, 384, 1536}
  std::uint32_t target_core_count = 0;           ///< e.g. 6144
  synth::TracerOptions tracer;                   ///< includes the target hierarchy
  ExtrapolationOptions extrapolation;
  bool collect_at_target = false;  ///< also trace at the target count ("Coll." row)
  bool measure_at_target = false;  ///< also run the reference simulator
  /// Synthesize target-count comm traces from the small collections
  /// (ScalaExtrap-style) instead of taking them from the application model.
  bool extrapolate_comm = false;
  /// When non-empty, checkpoint the expensive stages here so a killed run
  /// resumes instead of restarting: each small-count collection persists its
  /// signature plus a stamp (pipeline version, app, core count, tracer
  /// knobs) and is skipped when a matching stamp exists, and element fitting
  /// runs through fit_task_models_checkpointed (pmacx-ckpt-v1 chunks under
  /// <dir>/models, keyed by the collected traces' content digest).  Stale
  /// state — different app, counts, tracer or fit options — is detected by
  /// stamp/digest mismatch and redone; results are byte-identical to an
  /// uncheckpointed run.
  std::string checkpoint_dir;
  psins::ReferenceOptions reference;
  /// Execution parallelism for the whole run: signature collection at the
  /// small counts proceeds concurrently (overlapping the per-count cache
  /// simulation), element fitting fans out inside the extrapolator, and
  /// target-count comm timelines instantiate in parallel.  0 = resolve from
  /// PMACX_THREADS (else hardware threads); 1 = serial.  Results are
  /// identical to the serial path — all merges happen in deterministic
  /// (count/rank/element) order.  Ignored when `extrapolation.pool` is set,
  /// which then supplies the workers.
  std::size_t threads = 0;
};

/// Everything the Table I comparison needs.
struct PipelineResult {
  std::vector<trace::AppSignature> small_signatures;
  FitReport report;                             ///< extrapolation fit quality
  /// Degradation ledger for the whole run (salvaged inputs, fallback fits,
  /// clamped values).  A non-clean report means the prediction rests on
  /// recovered or substituted data — check it before trusting Table I rows.
  DiagnosticsReport diagnostics;
  trace::AppSignature extrapolated_signature;   ///< synthetic, at target count
  psins::PredictionResult prediction_from_extrapolated;
  std::optional<trace::AppSignature> collected_signature;
  std::optional<psins::PredictionResult> prediction_from_collected;
  std::optional<psins::MeasuredRun> measured;

  /// |predicted - measured| / measured for the extrapolated-trace
  /// prediction; requires measure_at_target.
  double extrapolated_error() const;
  /// Same for the collected-trace prediction; requires both options.
  double collected_error() const;
};

/// Runs the pipeline.  Throws util::Error on configuration mistakes
/// (no small counts, target not above the largest small count, ...).
PipelineResult run_pipeline(const synth::SyntheticApp& app,
                            const machine::MachineProfile& machine,
                            const PipelineConfig& config);

}  // namespace pmacx::core
