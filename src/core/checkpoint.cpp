#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "trace/binary_io.hpp"
#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/parse_error.hpp"

namespace pmacx::core {
namespace {

/// Canonical byte string the model-set digest is computed over; the layout
/// is part of pmacx-rpc-v1 (docs/FORMATS.md) so clients can predict digests.
/// Moved here from the serving layer so the CLI checkpoint and the server
/// cache address identical content — service::ModelStore::digest delegates.
std::string digest_preimage(const std::vector<std::uint32_t>& input_crcs,
                            const ExtrapolationOptions& options) {
  std::string bytes;
  auto put_u32 = [&bytes](std::uint32_t v) {
    char raw[4];
    std::memcpy(raw, &v, 4);
    bytes.append(raw, 4);
  };
  auto put_f64 = [&bytes](double v) {
    char raw[8];
    std::memcpy(raw, &v, 8);
    bytes.append(raw, 8);
  };
  for (std::uint32_t crc : input_crcs) put_u32(crc);
  bytes.push_back(static_cast<char>(options.missing));
  bytes.push_back(static_cast<char>(options.fit.criterion));
  bytes.push_back(options.fit.loo_cv ? 1 : 0);
  bytes.push_back(options.reject_out_of_domain ? 1 : 0);
  bytes.push_back(options.round_counts ? 1 : 0);
  put_f64(options.fit.tie_tolerance);
  put_f64(options.influence_threshold);
  bytes.push_back(static_cast<char>(options.fit.forms.size()));
  for (stats::Form form : options.fit.forms) bytes.push_back(static_cast<char>(form));
  return bytes;
}

std::string hex_u32(std::uint32_t v) {
  static const char digits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

// ---- pmacx-ckpt-v1 record encoding ---------------------------------------
//
// Little-endian throughout; doubles as raw IEEE-754 bit patterns (memcpy)
// so fitted parameters round-trip exactly — the byte-identity guarantee of
// a resumed run depends on it.  Strings are u32-length-prefixed.

void put_u8(std::string& bytes, std::uint8_t v) { bytes.push_back(static_cast<char>(v)); }

void put_u32(std::string& bytes, std::uint32_t v) {
  char raw[4];
  std::memcpy(raw, &v, 4);
  bytes.append(raw, 4);
}

void put_u64(std::string& bytes, std::uint64_t v) {
  char raw[8];
  std::memcpy(raw, &v, 8);
  bytes.append(raw, 8);
}

void put_f64(std::string& bytes, double v) {
  char raw[8];
  std::memcpy(raw, &v, 8);
  bytes.append(raw, 8);
}

void put_string(std::string& bytes, const std::string& s) {
  put_u32(bytes, static_cast<std::uint32_t>(s.size()));
  bytes.append(s);
}

/// Bounds-checked reader over a checkpoint payload; every overrun throws
/// util::ParseError with the byte offset so torn records are diagnosable.
class Reader {
 public:
  Reader(const std::string& path, const std::string& bytes, std::string section)
      : path_(path), bytes_(bytes), section_(std::move(section)) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }

  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, take(4), 4);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, take(8), 8);
    return v;
  }

  double f64() {
    double v;
    std::memcpy(&v, take(8), 8);
    return v;
  }

  std::string str() {
    const std::uint32_t n = u32();
    if (n > bytes_.size() - offset_) fail("string length overruns the record");
    std::string out(take(n), n);
    return out;
  }

  void expect_done() const {
    if (offset_ != bytes_.size()) {
      throw util::ParseError(path_, offset_, section_,
                             std::to_string(bytes_.size() - offset_) +
                                 " trailing bytes after the record");
    }
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw util::ParseError(path_, offset_, section_, message);
  }

 private:
  const char* take(std::size_t n) {
    if (n > bytes_.size() - offset_ || offset_ > bytes_.size())
      fail("record truncated (need " + std::to_string(n) + " more bytes)");
    const char* p = bytes_.data() + offset_;
    offset_ += n;
    return p;
  }

  const std::string& path_;
  const std::string& bytes_;
  std::string section_;
  std::size_t offset_ = 0;
};

void encode_element(std::string& bytes, const ElementModels& em) {
  PMACX_ASSERT(em.fit_axis.size() == em.fit_values.size(),
               "fit axis and values must be parallel");
  put_u32(bytes, static_cast<std::uint32_t>(em.fit_axis.size()));
  for (double v : em.fit_axis) put_f64(bytes, v);
  for (double v : em.fit_values) put_f64(bytes, v);
  put_u32(bytes, static_cast<std::uint32_t>(em.candidates.size()));
  for (const stats::FittedModel& model : em.candidates) {
    put_u8(bytes, static_cast<std::uint8_t>(model.form));
    put_u8(bytes, model.ok ? 1 : 0);
    for (double p : model.params) put_f64(bytes, p);
    put_f64(bytes, model.sse);
    put_f64(bytes, model.r2);
  }
  put_u32(bytes, static_cast<std::uint32_t>(em.scores.size()));
  for (double v : em.scores) put_f64(bytes, v);
  put_u8(bytes, em.influential ? 1 : 0);
  // v2: the sufficient-statistics block.  Doubles round-trip as raw bit
  // patterns like everything else, so a resumed run's moments are bitwise
  // the ones a cold fit computes.
  const stats::SeriesMoments& sm = em.moments;
  put_u64(bytes, sm.count);
  put_u64(bytes, sm.pos);
  put_u64(bytes, sm.neg);
  put_u64(bytes, sm.zero);
  put_u8(bytes, sm.bad_axis ? 1 : 0);
  put_u32(bytes, sm.fingerprint);
  for (const stats::Moments& m : sm.families) {
    put_u64(bytes, m.n);
    put_f64(bytes, m.sx);
    put_f64(bytes, m.sy);
    put_f64(bytes, m.sxx);
    put_f64(bytes, m.sxy);
    put_f64(bytes, m.syy);
    put_f64(bytes, m.sx3);
    put_f64(bytes, m.sx4);
    put_f64(bytes, m.sx2y);
  }
}

ElementModels decode_element(Reader& reader) {
  ElementModels em;
  const std::uint32_t samples = reader.u32();
  if (samples > 1u << 20) reader.fail("implausible sample count");
  em.fit_axis.reserve(samples);
  em.fit_values.reserve(samples);
  for (std::uint32_t i = 0; i < samples; ++i) em.fit_axis.push_back(reader.f64());
  for (std::uint32_t i = 0; i < samples; ++i) em.fit_values.push_back(reader.f64());
  const std::uint32_t candidates = reader.u32();
  if (candidates > 64) reader.fail("implausible candidate count");
  em.candidates.reserve(candidates);
  for (std::uint32_t i = 0; i < candidates; ++i) {
    stats::FittedModel model;
    model.form = static_cast<stats::Form>(reader.u8());
    model.ok = reader.u8() != 0;
    for (double& p : model.params) p = reader.f64();
    model.sse = reader.f64();
    model.r2 = reader.f64();
    em.candidates.push_back(model);
  }
  const std::uint32_t scores = reader.u32();
  if (scores > 64) reader.fail("implausible score count");
  em.scores.reserve(scores);
  for (std::uint32_t i = 0; i < scores; ++i) em.scores.push_back(reader.f64());
  em.influential = reader.u8() != 0;
  stats::SeriesMoments& sm = em.moments;
  sm.count = reader.u64();
  if (sm.count > 1u << 20) reader.fail("implausible moments sample count");
  sm.pos = reader.u64();
  sm.neg = reader.u64();
  sm.zero = reader.u64();
  sm.bad_axis = reader.u8() != 0;
  sm.fingerprint = reader.u32();
  for (stats::Moments& m : sm.families) {
    m.n = reader.u64();
    m.sx = reader.f64();
    m.sy = reader.f64();
    m.sxx = reader.f64();
    m.sxy = reader.f64();
    m.syy = reader.f64();
    m.sx3 = reader.f64();
    m.sx4 = reader.f64();
    m.sx2y = reader.f64();
  }
  return em;
}

}  // namespace

std::string models_digest(const std::vector<std::uint32_t>& input_crcs,
                          const ExtrapolationOptions& options) {
  const std::string preimage = digest_preimage(input_crcs, options);
  // Two independent CRC passes (different seeds) give 64 digest bits — not
  // cryptographic, but checkpoints and caches only need collision
  // resistance against accidental aliasing of a handful of workloads.
  const std::uint32_t a = util::crc32(preimage);
  const std::uint32_t b = util::crc32(preimage, /*seed=*/0x9e3779b9u);
  return hex_u32(a) + hex_u32(b);
}

std::string models_digest_for_files(const std::vector<std::string>& trace_paths,
                                    const ExtrapolationOptions& options) {
  PMACX_CHECK(!trace_paths.empty(), "digest of an empty trace list");
  std::vector<std::uint32_t> crcs;
  crcs.reserve(trace_paths.size());
  for (const std::string& path : trace_paths)
    crcs.push_back(util::crc32(util::read_file(path)));
  return models_digest(crcs, options);
}

std::string models_digest_for_traces(std::span<const trace::TaskTrace> inputs,
                                     const ExtrapolationOptions& options) {
  PMACX_CHECK(!inputs.empty(), "digest of an empty trace list");
  std::vector<std::uint32_t> crcs;
  crcs.reserve(inputs.size());
  for (const trace::TaskTrace& input : inputs)
    crcs.push_back(util::crc32(trace::to_binary(input)));
  return models_digest(crcs, options);
}

ModelCheckpoint::ModelCheckpoint(CheckpointConfig config) : config_(std::move(config)) {
  PMACX_CHECK(!config_.dir.empty(), "checkpoint directory must be set");
  PMACX_CHECK(!config_.digest.empty(), "checkpoint digest must be set");
  PMACX_CHECK(config_.chunk_elements > 0, "checkpoint chunk size must be positive");
}

std::string ModelCheckpoint::manifest_path() const { return config_.dir + "/manifest.ckpt"; }

std::string ModelCheckpoint::chunk_path(std::size_t chunk) const {
  char name[32];
  std::snprintf(name, sizeof(name), "models_%06zu.ckpt", chunk);
  return config_.dir + "/" + name;
}

void ModelCheckpoint::discard_all_chunks() {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("models_", 0) != 0 || name.size() < 5 ||
        name.substr(name.size() - 5) != ".ckpt")
      continue;
    if (util::io::unlink_quiet(entry.path().string())) ++discarded_;
  }
}

void ModelCheckpoint::open(std::size_t element_count) {
  PMACX_CHECK(element_count > 0, "checkpoint of an empty element set");
  util::ensure_directory(config_.dir);
  element_count_ = element_count;
  opened_ = true;

  bool manifest_valid = false;
  if (std::optional<std::string> payload = util::try_load_checked(manifest_path())) {
    try {
      Reader reader(manifest_path(), *payload, "ckpt.manifest");
      const std::string version = reader.str();
      const std::string digest = reader.str();
      const std::uint64_t elements = reader.u64();
      const std::uint64_t chunk_elements = reader.u64();
      reader.expect_done();
      manifest_valid = version == kCheckpointVersion && digest == config_.digest &&
                       elements == element_count_ && chunk_elements == config_.chunk_elements;
    } catch (const util::Error&) {
      manifest_valid = false;
    }
  }
  if (manifest_valid) return;

  // Wrong version/digest/shape, torn manifest, or a fresh directory: drop
  // every chunk (they describe some other workload) and start clean.  Even
  // if a deletion fails, stale chunks stay inert — load_chunk re-checks the
  // digest embedded in each one.
  discard_all_chunks();
  std::string payload;
  put_string(payload, kCheckpointVersion);
  put_string(payload, config_.digest);
  put_u64(payload, element_count_);
  put_u64(payload, config_.chunk_elements);
  util::save_checked(manifest_path(), payload);
}

std::size_t ModelCheckpoint::chunk_count() const {
  PMACX_ASSERT(opened_, "checkpoint used before open()");
  return (element_count_ + config_.chunk_elements - 1) / config_.chunk_elements;
}

std::size_t ModelCheckpoint::chunk_begin(std::size_t chunk) const {
  return chunk * config_.chunk_elements;
}

std::size_t ModelCheckpoint::chunk_end(std::size_t chunk) const {
  return std::min(element_count_, (chunk + 1) * config_.chunk_elements);
}

std::optional<std::vector<ElementModels>> ModelCheckpoint::load_chunk(std::size_t chunk) {
  PMACX_ASSERT(opened_, "checkpoint used before open()");
  const std::string path = chunk_path(chunk);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;

  auto drop = [&]() {
    util::io::unlink_quiet(path);
    ++discarded_;
    return std::nullopt;
  };

  std::optional<std::string> payload = util::try_load_checked(path);
  if (!payload) return drop();  // torn write or bit rot — redo this range
  try {
    Reader reader(path, *payload, "ckpt.chunk");
    const std::string digest = reader.str();
    const std::uint64_t index = reader.u64();
    const std::uint64_t begin = reader.u64();
    const std::uint64_t count = reader.u64();
    if (digest != config_.digest) reader.fail("chunk digest does not match the workload");
    if (index != chunk || begin != chunk_begin(chunk) ||
        count != chunk_end(chunk) - chunk_begin(chunk))
      reader.fail("chunk range does not match the manifest layout");
    std::vector<ElementModels> models;
    models.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) models.push_back(decode_element(reader));
    reader.expect_done();
    return models;
  } catch (const util::Error&) {
    return drop();
  }
}

void ModelCheckpoint::save_chunk(std::size_t chunk, std::span<const ElementModels> models) {
  PMACX_ASSERT(opened_, "checkpoint used before open()");
  PMACX_CHECK(models.size() == chunk_end(chunk) - chunk_begin(chunk),
              "chunk payload does not cover the chunk's element range");
  std::string payload;
  put_string(payload, config_.digest);
  put_u64(payload, chunk);
  put_u64(payload, chunk_begin(chunk));
  put_u64(payload, models.size());
  for (const ElementModels& em : models) encode_element(payload, em);
  util::save_checked(chunk_path(chunk), payload);
}

}  // namespace pmacx::core
