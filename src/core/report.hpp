// Fit-quality reporting for an extrapolation run.
//
// Section IV evaluates element-level fit quality on "influential"
// instructions — those contributing ≥ 0.1 % of the task's memory operations
// (or, for memory-less instructions, floating-point operations) — and
// reports that every influential element fit within 20 % absolute relative
// error.  FitReport captures the same accounting: per element, the winning
// form, its parameters, the fit error over the inputs, the extrapolated
// value, and the influence flag.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/align.hpp"
#include "stats/bayes.hpp"
#include "stats/canonical.hpp"

namespace pmacx::core {

/// One element's extrapolation record.
struct ElementFit {
  ElementKey key;
  stats::FittedModel model;
  std::vector<double> inputs;       ///< measured series
  double extrapolated = 0.0;        ///< model value at the target core count
  double clamped = 0.0;             ///< after domain clamping (what's emitted)
  /// max over inputs of |fit(p_i) - y_i| / |y_i| (0 where y_i == 0 == fit).
  double max_fit_rel_error = 0.0;
  bool influential = false;
  /// Residual-bootstrap uncertainty of the extrapolated value; populated
  /// only when ExtrapolationOptions::bootstrap_resamples > 0 (and only for
  /// influential elements, to bound cost).
  bool has_interval = false;
  stats::PredictionInterval interval;
  /// Bayesian posterior-predictive interval (stats::bayes) at the run's
  /// requested coverage; populated for every element when
  /// ExtrapolationOptions::interval_coverage is set.  Raw (unclamped)
  /// predictive quantiles — the interval *traces* clamp into each element's
  /// domain, the report keeps the honest values.
  bool has_bayes = false;
  stats::bayes::Prediction bayes;
};

/// Whole-run extrapolation report.
struct FitReport {
  /// Input series abscissa: core counts on the paper's scaling axis, or
  /// parameter values for input-parameter extrapolation.
  std::vector<double> axis;
  double target = 0.0;  ///< the abscissa the trace was synthesized at
  std::string axis_name = "cores";
  std::vector<ElementFit> elements;

  /// Counts of winning forms over influential elements, for summaries.
  std::vector<std::pair<std::string, std::size_t>> form_histogram() const;
  /// Largest max_fit_rel_error over influential elements.
  double worst_influential_error() const;
  /// Influential elements with the largest fit errors, most erroneous first.
  std::vector<const ElementFit*> worst_elements(std::size_t count) const;
  /// Multi-line human-readable summary.
  std::string summary() const;

  /// Full per-element dump as CSV (one row per element: key, inputs,
  /// winning form + parameters, fit error, extrapolated value, influence
  /// flag, bootstrap bounds when present) — the plotting-friendly view.
  std::string to_csv() const;
};

}  // namespace pmacx::core
