// Communication-trace extrapolation (ScalaExtrap-style).
//
// The paper extrapolates the *computation* side of the signature and cites
// Wu & Mueller's ScalaExtrap [22] as the complementary technique for the
// communication side ("The work presented in this paper is for scaling an
// application's computation behavior, which can be complemented by
// communication trace extrapolation").  This module implements that
// complement for SPMD bulk-synchronous applications, so a full signature at
// the target core count can be synthesized from small-count collections
// alone:
//
//   * Events are aligned positionally per rank-role class (even/odd rank —
//     the classes a two-phase neighbour exchange induces); the op sequence
//     must be identical across core counts within a class.
//   * Point-to-point partners are modeled as rank-relative deltas
//     ((peer - rank) mod P).  A delta that is constant or affine in the
//     core count across the inputs (e.g. the wrap-around neighbour P-1 =
//     1·P - 1) is evaluated at the target; anything else carries the
//     largest input's delta.
//   * Payload bytes and per-event compute units are extrapolated with the
//     same canonical-form machinery as computation elements; compute-unit
//     series are taken from rank-fraction-matched source ranks so load
//     imbalance profiles survive the scaling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/canonical.hpp"
#include "trace/signature.hpp"

namespace pmacx::core {

/// Policy knobs for communication extrapolation.
struct CommExtrapolationOptions {
  /// Forms used for bytes and compute-unit series.
  stats::FitOptions fit;
};

/// Result: the synthesized per-rank comm traces plus diagnostics.
struct CommExtrapolation {
  std::vector<trace::CommTrace> comm;  ///< index = target rank
  std::size_t events_per_rank = 0;
  /// P2p events whose peer delta was exactly affine in the core count
  /// (constant deltas count too).
  std::size_t affine_peer_events = 0;
  /// P2p events that fell back to carrying the largest input's delta.
  std::size_t carried_peer_events = 0;
};

/// Synthesizes the communication side of a target-count signature from the
/// comm traces of the input signatures (each must carry comm traces for all
/// of its ranks; ≥ 2 inputs with strictly increasing core counts; even core
/// counts, as the two-phase exchange requires).  Throws util::Error when
/// the event structure is not SPMD-stable across the inputs.
CommExtrapolation extrapolate_comm(std::span<const trace::AppSignature> inputs,
                                   std::uint32_t target_cores,
                                   const CommExtrapolationOptions& options = {});

}  // namespace pmacx::core
