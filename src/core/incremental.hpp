// Incremental model-set refitting — the fitting half of live ingestion.
//
// A long-lived server that accepts trace uploads re-derives its model sets
// as the input series grows.  fit_task_models_incremental takes the
// *previous* fitted set for the same workload and produces the set for the
// extended input list while doing strictly less work than a cold fit:
//
//   * elements whose fit series is unchanged (FitPresent-restricted series
//     the new trace does not touch, or a re-upload of identical content)
//     are bit-copied from the previous set — no fitting at all;
//   * elements whose series grew get their sufficient statistics extended
//     in O(1) per element (prefix identity proven by the moments
//     fingerprint) and are refitted through the same shared fit stage every
//     other entry point uses;
//
// so the result is byte-for-byte the set fit_task_models would produce
// from scratch (pinned by tests/core_incremental_test.cpp: traces,
// intervals, and models_digest all match a cold fit, for every upload
// order).  An incompatible previous set — different fitting options, app,
// rank, or target system — is ignored and the call degrades to a cold fit;
// the worst failure mode is redoing work, never a wrong model.
#pragma once

#include <cstddef>
#include <span>

#include "core/extrapolator.hpp"

namespace pmacx::core {

/// Reuse-vs-recompute accounting of one incremental fit.  Mirrored into
/// the metrics registry (fits.incremental.reused, .refit, .extended,
/// .cold).
struct IncrementalFitStats {
  std::size_t elements_total = 0;
  std::size_t elements_reused = 0;    ///< bit-copied: fit series unchanged
  std::size_t elements_refit = 0;     ///< refitted over a changed series
  std::size_t moments_extended = 0;   ///< O(1) suffix extension (prefix matched)
  bool cold = false;                  ///< previous set absent or incompatible
};

/// fit_task_models over `inputs`, reusing `previous` (the fitted set for a
/// prefix/earlier version of the same workload) wherever the per-element
/// fit series is unchanged.  `previous == nullptr` or an options/identity
/// mismatch falls back to a cold fit.  The returned set is byte-identical
/// to fit_task_models(inputs, options).
TaskModelSet fit_task_models_incremental(std::span<const trace::TaskTrace> inputs,
                                         const ExtrapolationOptions& options,
                                         const TaskModelSet* previous,
                                         IncrementalFitStats* stats = nullptr);

}  // namespace pmacx::core
