#include "core/extrapolator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <csignal>
#include <cstring>
#include <optional>
#include <unordered_map>

#include "core/checkpoint.hpp"
#include "core/incremental.hpp"
#include "stats/batch.hpp"
#include "stats/bayes.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace pmacx::core {
namespace {

bool block_element_is_count(trace::BlockElement element) {
  switch (element) {
    case trace::BlockElement::VisitCount:
    case trace::BlockElement::FpAdd:
    case trace::BlockElement::FpMul:
    case trace::BlockElement::FpFma:
    case trace::BlockElement::FpDivSqrt:
    case trace::BlockElement::MemLoads:
    case trace::BlockElement::MemStores: return true;
    default: return false;
  }
}

bool instr_element_is_count(trace::InstrElement element) {
  switch (element) {
    case trace::InstrElement::ExecCount:
    case trace::InstrElement::MemOps:
    case trace::InstrElement::FpOps: return true;
    default: return false;
  }
}

/// Element domain classification shared by clamping and domain-aware
/// candidate rejection.
struct ElementDomain {
  bool is_rate = false;
  bool is_count = false;
};

ElementDomain domain_of(const ElementKey& key) {
  ElementDomain domain;
  if (key.is_block_level()) {
    const auto element = static_cast<trace::BlockElement>(key.element);
    domain.is_rate = trace::block_element_is_rate(element);
    domain.is_count = block_element_is_count(element);
  } else {
    const auto element = static_cast<trace::InstrElement>(key.element);
    domain.is_rate = trace::instr_element_is_rate(element);
    domain.is_count = instr_element_is_count(element);
  }
  return domain;
}

bool in_domain(const ElementDomain& domain, double value) {
  if (!std::isfinite(value)) return false;
  if (domain.is_rate) return value >= 0.0 && value <= 1.0;
  return value >= 0.0;  // every element in the schema is non-negative
}

/// Clamps an extrapolated value into its element's valid domain.
double clamp_value(const ElementDomain& domain, double value, bool round_counts) {
  if (domain.is_rate) return std::clamp(value, 0.0, 1.0);
  double clamped = std::max(value, 0.0);
  if (domain.is_count && round_counts) clamped = std::round(clamped);
  return clamped;
}

/// Selects the best model among precomputed candidates, like
/// stats::select_best (simplicity tie-break) but, when requested, preferring
/// candidates whose extrapolation at `target` stays inside the element's
/// domain (in-domain candidates rank by raw SSE, matching the historical
/// domain-aware selection).  Falls back to the criterion-ranked best when
/// nothing extrapolates in-domain (the value is clamped later).
stats::FittedModel select_from_models(const ElementModels& em, double target,
                                      const ElementDomain& domain,
                                      const ExtrapolationOptions& options) {
  if (options.reject_out_of_domain) {
    const stats::FittedModel* best = nullptr;
    auto better = [&](const stats::FittedModel& a, const stats::FittedModel& b) {
      const double tolerance = options.fit.tie_tolerance * (1.0 + b.sse);
      if (a.sse < b.sse - tolerance) return true;
      if (std::fabs(a.sse - b.sse) <= tolerance)
        return stats::form_complexity(a.form) < stats::form_complexity(b.form);
      return false;
    };
    for (const stats::FittedModel& fit : em.candidates) {
      if (!fit.ok || !in_domain(domain, fit.evaluate(target))) continue;
      if (best == nullptr || better(fit, *best)) best = &fit;
    }
    if (best != nullptr) return *best;
  }
  return stats::select_from(em.candidates, em.scores, em.fit_axis, em.fit_values,
                            options.fit);
}

/// Last-resort model when no canonical form yields a finite extrapolation:
/// a constant through the mean of the finite samples (0 when none are).
stats::FittedModel constant_fallback(std::span<const double> values) {
  double sum = 0.0;
  std::size_t finite = 0;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    sum += v;
    ++finite;
  }
  stats::FittedModel model;
  model.form = stats::Form::Constant;
  model.params = {finite > 0 ? sum / static_cast<double>(finite) : 0.0, 0.0, 0.0};
  model.ok = true;
  return model;
}

/// max_i |fit(p_i) - y_i| / |y_i|, with a scale-aware denominator floor so
/// zero-valued samples don't blow the metric up.
double max_fit_relative_error(const stats::FittedModel& model,
                              std::span<const double> core_counts,
                              std::span<const double> values) {
  double scale = 0.0;
  for (double v : values) scale = std::max(scale, std::fabs(v));
  if (scale == 0.0) return 0.0;
  const double floor = 1e-9 * scale;
  double worst = 0.0;
  for (std::size_t i = 0; i < core_counts.size(); ++i) {
    const double fitted = model.evaluate(core_counts[i]);
    const double denom = std::max(std::fabs(values[i]), floor);
    worst = std::max(worst, std::fabs(fitted - values[i]) / denom);
  }
  return worst;
}

/// Re-monotonizes cumulative hit rates: a reference resolved by level j is
/// also resolved by every deeper level, so L1 ≤ L2 ≤ L3 must hold.
void monotonize_hit_rates(trace::BasicBlockRecord& block) {
  double rate = block.get(trace::BlockElement::HitRateL1);
  rate = std::max(rate, block.get(trace::BlockElement::HitRateL2));
  block.set(trace::BlockElement::HitRateL2, rate);
  rate = std::max(rate, block.get(trace::BlockElement::HitRateL3));
  block.set(trace::BlockElement::HitRateL3, rate);

  for (auto& instr : block.instructions) {
    double r = instr.get(trace::InstrElement::HitRateL1);
    r = std::max(r, instr.get(trace::InstrElement::HitRateL2));
    instr.set(trace::InstrElement::HitRateL2, r);
    r = std::max(r, instr.get(trace::InstrElement::HitRateL3));
    instr.set(trace::InstrElement::HitRateL3, r);
  }
}

/// Influence flags per the paper's 0.1 % rule, computed on the reference
/// (largest core count) trace.
struct InfluenceIndex {
  std::unordered_map<std::uint64_t, bool> blocks;
  std::unordered_map<std::uint64_t, bool> instrs;  ///< key: block_id*4096+index

  static std::uint64_t instr_key(std::uint64_t block_id, std::uint32_t index) {
    return block_id * 4096 + index;
  }

  InfluenceIndex(const trace::TaskTrace& reference, double threshold) {
    const double total_mem = reference.total_memory_ops();
    const double total_fp = reference.total_fp_ops();
    for (const auto& block : reference.blocks) {
      const double mem = block.memory_ops();
      bool influential = false;
      if (mem > 0 && total_mem > 0) {
        influential = mem / total_mem > threshold;
      } else if (total_fp > 0) {
        influential = block.fp_ops() / total_fp > threshold;
      }
      blocks[block.id] = influential;
      for (const auto& instr : block.instructions) {
        const double imem = instr.get(trace::InstrElement::MemOps);
        bool instr_influential = false;
        if (imem > 0 && total_mem > 0) {
          instr_influential = imem / total_mem > threshold;
        } else if (total_fp > 0) {
          instr_influential = instr.get(trace::InstrElement::FpOps) / total_fp > threshold;
        }
        instrs[instr_key(block.id, instr.index)] = instr_influential;
      }
    }
  }

  bool lookup(const ElementKey& key) const {
    if (key.is_block_level()) {
      const auto it = blocks.find(key.block_id);
      return it != blocks.end() && it->second;
    }
    const auto it = instrs.find(instr_key(key.block_id, static_cast<std::uint32_t>(key.instr_index)));
    return it != instrs.end() && it->second;
  }
};

}  // namespace

namespace {

/// Everything one element's (pure, thread-safe) fit stage produces; the
/// apply stage consumes these strictly in element order so diagnostics and
/// the report are bit-identical however the fits were scheduled.
struct ElementOutcome {
  ElementFit fit;
  bool fallback = false;
};

/// The target-independent half of one element's extrapolation: choose the
/// fit axis (FitPresent restriction), fit every canonical candidate, and
/// score them for selection.  Pure and thread-safe, so it fans out across
/// the pool.
/// The fit-series choice shared by the scalar fit path and the incremental
/// refitter's reuse check: FitPresent restricts the series to the counts
/// where the element was actually observed (≥ 2 needed; otherwise fall
/// back to the full, zero-filled series).
void choose_fit_series(const Alignment& alignment, const AlignedElement& element,
                       const ExtrapolationOptions& options, std::vector<double>& axis,
                       std::vector<double>& values) {
  axis.clear();
  values.clear();
  if (options.missing == MissingPolicy::FitPresent) {
    for (std::size_t i = 0; i < element.values.size(); ++i) {
      if (element.filled[i]) continue;
      axis.push_back(alignment.axis[i]);
      values.push_back(element.values[i]);
    }
    if (axis.size() < 2) {
      axis.clear();
      values.clear();
    }
  }
  if (axis.empty()) {
    axis.assign(alignment.axis.begin(), alignment.axis.end());
    values.assign(element.values.begin(), element.values.end());
  }
}

ElementModels compute_element_models(const Alignment& alignment,
                                     const AlignedElement& element,
                                     const InfluenceIndex& influence,
                                     const ExtrapolationOptions& options) {
  ElementModels em;
  choose_fit_series(alignment, element, options, em.fit_axis, em.fit_values);
  em.candidates = stats::fit_all(em.fit_axis, em.fit_values, options.fit);
  em.scores = stats::selection_scores(em.candidates, em.fit_axis, em.fit_values,
                                      options.fit);
  em.moments = stats::SeriesMoments::from_series(em.fit_axis, em.fit_values);
  em.influential = influence.lookup(element.key);
  return em;
}

/// The target-dependent half: select among the precomputed candidates,
/// evaluate at `target`, degrade to the constant fallback if needed, clamp,
/// and (for influential elements) bootstrap.  Touches no shared mutable
/// state.
ElementOutcome evaluate_element(const Alignment& alignment, const AlignedElement& element,
                                const ElementModels& em, double target,
                                const ExtrapolationOptions& options) {
  const ElementDomain domain = domain_of(element.key);

  ElementOutcome outcome;
  stats::FittedModel model = select_from_models(em, target, domain, options);
  double raw = model.evaluate(target);
  if (!model.ok || !std::isfinite(raw)) {
    // Graceful degradation: no canonical form produced a usable
    // extrapolation (degenerate series, overflowed evaluation).  Rather
    // than poisoning the synthetic trace with a non-finite value, fall
    // back to the constant form through the mean of the finite samples
    // and record the substitution.
    model = constant_fallback(em.fit_values);
    raw = model.evaluate(target);
    outcome.fallback = true;
  }
  const double clamped = clamp_value(domain, raw, options.round_counts);

  ElementFit& fit = outcome.fit;
  fit.key = element.key;
  fit.model = model;
  fit.inputs = element.values;
  fit.extrapolated = raw;
  fit.clamped = clamped;
  fit.max_fit_rel_error = max_fit_relative_error(model, em.fit_axis, em.fit_values);
  fit.influential = em.influential;
  if (fit.influential && options.bootstrap_resamples > 0) {
    fit.has_interval = true;
    fit.interval = stats::bootstrap_interval(
        alignment.axis, element.values, target, options.fit,
        options.bootstrap_resamples, 0.9,
        /*seed=*/element.key.block_id * 131 + element.key.element);
  }
  if (options.interval_coverage > 0.0 && options.interval_coverage < 1.0) {
    // Bayesian interval mode: posterior over the already-fitted candidates
    // (no refitting), sampled with a seed derived purely from the element's
    // identity — deterministic, and invariant under scheduling/thread count
    // like everything else in this stage.
    stats::bayes::Options bayes_options;
    bayes_options.fit = options.fit;
    bayes_options.coverage = options.interval_coverage;
    bayes_options.samples = options.interval_samples;
    bayes_options.seed = util::derive_seed(
        element.key.block_id * 131 + element.key.element,
        static_cast<std::uint64_t>(element.key.instr_index + 2));
    fit.has_bayes = true;
    fit.bayes = stats::bayes::predict(
        stats::bayes::posterior_from(em.candidates, em.fit_axis, em.fit_values,
                                     bayes_options),
        target, bayes_options);
  }
  return outcome;
}

/// Resolves which pool a parallel stage should run on.  nullptr means run
/// serially; `local_pool` owns a private pool when options.threads > 1.
util::ThreadPool* resolve_pool(const ExtrapolationOptions& options,
                               std::optional<util::ThreadPool>& local_pool) {
  if (options.pool != nullptr) return options.pool;
  if (options.threads == 0) {
    // Default (no explicit pool or thread count): one lazily created
    // process-wide pool, sized by PMACX_THREADS / the hardware at first
    // use, shared by every call — library callers looping over
    // extrapolate_task must not pay thread spawn/join per call.
    static util::ThreadPool shared_pool;
    return &shared_pool;
  }
  if (options.threads > 1) {
    // Explicit width: a private pool of exactly that size for this call.
    local_pool.emplace(options.threads);
    return &*local_pool;
  }
  return nullptr;
}

/// Runs `compute(i)` for i in [0, count), fanned out per the options' pool
/// policy, results in index order.
template <typename T, typename F>
std::vector<T> run_stage(std::size_t count, F&& compute,
                         const ExtrapolationOptions& options,
                         std::size_t grain = 16) {
  std::optional<util::ThreadPool> local_pool;
  util::ThreadPool* pool = resolve_pool(options, local_pool);
  if (pool != nullptr && !pool->serial())
    return pool->parallel_map<T>(count, compute, grain);
  std::vector<T> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(compute(i));
  return out;
}

/// Elements whose fit series is the full shared axis are batchable; only
/// FitPresent runs with a genuinely restricted (per-element) axis fall off
/// the SoA fast path.  Mirrors compute_element_models' axis choice exactly:
/// a restriction with < 2 present samples falls back to the full series,
/// and a fully-present element's restriction *is* the full series.
bool fits_full_axis(const AlignedElement& element, const ExtrapolationOptions& options) {
  if (options.missing != MissingPolicy::FitPresent) return true;
  std::size_t present = 0;
  for (bool filled : element.filled)
    if (!filled) ++present;
  return present < 2 || present == element.filled.size();
}

/// Batch size of the SoA fit path: large enough to amortize transposition
/// and fill AVX2 lanes, small enough that chunks still spread across the
/// pool on small alignments.
constexpr std::size_t kFitBatch = 1024;

/// Fits models for elements [lo, hi): full-axis elements go through the
/// shared BatchFitter over a sample-major arena buffer, the rest through
/// the scalar per-element path.  Output order is element order either way,
/// and every model/score is bit-identical to compute_element_models'.
std::vector<ElementModels> compute_models_chunk(const Alignment& alignment,
                                                const InfluenceIndex& influence,
                                                const ExtrapolationOptions& options,
                                                const stats::BatchFitter& fitter,
                                                std::size_t lo, std::size_t hi) {
  const std::size_t n = alignment.axis.size();
  const std::size_t forms = fitter.form_count();
  std::vector<ElementModels> out(hi - lo);
  std::vector<std::size_t> batched;
  batched.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    const AlignedElement& element = alignment.elements[i];
    if (fits_full_axis(element, options)) {
      batched.push_back(i);
    } else {
      out[i - lo] = compute_element_models(alignment, element, influence, options);
    }
  }
  if (batched.empty()) return out;

  util::Arena arena;
  const std::size_t count = batched.size();
  double* y = arena.allocate<double>(n * count);
  for (std::size_t b = 0; b < count; ++b) {
    const AlignedElement& element = alignment.elements[batched[b]];
    for (std::size_t s = 0; s < n; ++s) y[s * count + b] = element.values[s];
  }
  stats::FittedModel* candidates = arena.allocate<stats::FittedModel>(forms * count);
  double* scores = arena.allocate<double>(forms * count);
  fitter.fit(y, count, count, candidates, scores, arena);

  for (std::size_t b = 0; b < count; ++b) {
    const AlignedElement& element = alignment.elements[batched[b]];
    ElementModels& em = out[batched[b] - lo];
    em.fit_axis.assign(alignment.axis.begin(), alignment.axis.end());
    em.fit_values.assign(element.values.begin(), element.values.end());
    em.candidates.assign(candidates + b * forms, candidates + (b + 1) * forms);
    em.scores.assign(scores + b * forms, scores + (b + 1) * forms);
    em.moments = stats::SeriesMoments::from_series(em.fit_axis, em.fit_values);
    em.influential = influence.lookup(element.key);
  }
  return out;
}

/// The fit stage shared by every fitting entry point (direct extrapolation,
/// model-set fitting, checkpointed fitting): batches of kFitBatch elements
/// fan out across the pool, each batch running the SoA fitter.
std::vector<ElementModels> compute_models_stage(const Alignment& alignment,
                                                const InfluenceIndex& influence,
                                                const ExtrapolationOptions& options,
                                                std::size_t begin, std::size_t count) {
  if (count == 0) return {};
  const stats::BatchFitter fitter(alignment.axis, options.fit);
  const std::size_t chunks = (count + kFitBatch - 1) / kFitBatch;
  std::vector<std::vector<ElementModels>> parts =
      run_stage<std::vector<ElementModels>>(
          chunks,
          [&](std::size_t c) {
            const std::size_t lo = begin + c * kFitBatch;
            const std::size_t hi = std::min(lo + kFitBatch, begin + count);
            return compute_models_chunk(alignment, influence, options, fitter, lo, hi);
          },
          options, /*grain=*/1);
  std::vector<ElementModels> out;
  out.reserve(count);
  for (std::vector<ElementModels>& part : parts)
    for (ElementModels& em : part) out.push_back(std::move(em));
  return out;
}

/// Stage 2 of every extrapolation path — apply outcomes in element order:
/// skeleton synthesis, trace writes, degradation tallies, report rows.
/// Serial by construction, so the merge (and every counter tallied here) is
/// deterministic regardless of how the fits were scheduled — and shared
/// between the direct and the cached (model-set) paths, so both emit the
/// same bytes.
ExtrapolationResult apply_outcomes(const Alignment& alignment,
                                   std::vector<ElementOutcome>&& outcomes,
                                   double target, std::uint32_t out_core_count,
                                   const std::string& axis_name, const std::string& app,
                                   std::uint32_t rank, const std::string& target_system,
                                   const ExtrapolationOptions& options) {
  ExtrapolationResult result;
  result.report.axis = alignment.axis;
  result.report.target = target;
  result.report.axis_name = axis_name;

  // Output skeleton.
  trace::TaskTrace& out = result.trace;
  out.app = app;
  out.rank = rank;
  out.core_count = out_core_count;
  out.target_system = target_system;
  out.extrapolated = true;
  out.blocks = alignment.skeleton;
  out.sort_blocks();

  // Index the output blocks for element writes.
  std::unordered_map<std::uint64_t, trace::BasicBlockRecord*> block_index;
  for (auto& block : out.blocks) block_index[block.id] = &block;

  const std::size_t count = alignment.elements.size();
  util::metrics::StageTimer apply_timer("extrapolate.apply");
  util::metrics::Registry& metrics = util::metrics::Registry::global();
  util::metrics::Counter& fits_total = metrics.counter("fits.total");
  util::metrics::Counter& fits_fallback = metrics.counter("fits.constant_fallback");
  util::metrics::Counter& fits_clamped = metrics.counter("fits.clamped_values");
  std::array<util::metrics::Counter*, 7> fits_won{};
  for (stats::Form form : stats::all_forms())
    fits_won[static_cast<std::size_t>(form)] =
        &metrics.counter("fits.won." + stats::form_name(form));
  result.report.elements.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const AlignedElement& element = alignment.elements[i];
    ElementOutcome& outcome = outcomes[i];
    fits_total.add();
    fits_won[static_cast<std::size_t>(outcome.fit.model.form)]->add();
    if (outcome.fallback) {
      fits_fallback.add();
      ++result.diagnostics.fallback_fits;
      result.diagnostics.warn(element.key.describe() +
                              ": no finite canonical fit; using constant fallback");
    }
    if (outcome.fit.clamped != outcome.fit.extrapolated) {
      fits_clamped.add();
      ++result.diagnostics.clamped_values;
    }

    trace::BasicBlockRecord* block = block_index.at(element.key.block_id);
    if (element.key.is_block_level()) {
      block->features[element.key.element] = outcome.fit.clamped;
    } else {
      bool written = false;
      for (auto& instr : block->instructions) {
        if (static_cast<std::int32_t>(instr.index) == element.key.instr_index) {
          instr.features[element.key.element] = outcome.fit.clamped;
          written = true;
          break;
        }
      }
      PMACX_ASSERT(written, "aligned instruction missing from skeleton");
    }
    result.report.elements.push_back(std::move(outcome.fit));
  }

  for (auto& block : out.blocks) monotonize_hit_rates(block);

  if (options.interval_coverage > 0.0 && options.interval_coverage < 1.0) {
    // Interval traces: start from the finished point trace (identical
    // skeleton and metadata) and overwrite every aligned element with its
    // clamped predictive quantile.  Clamping is monotone and hit-rate
    // monotonization is an element-wise max, so lo ≤ median ≤ hi survives
    // both.
    result.has_interval = true;
    result.trace_lo = out;
    result.trace_median = out;
    result.trace_hi = out;
    auto write_quantile = [&](trace::TaskTrace& into,
                              double stats::bayes::Prediction::*quantile) {
      std::unordered_map<std::uint64_t, trace::BasicBlockRecord*> index;
      for (auto& block : into.blocks) index[block.id] = &block;
      for (std::size_t i = 0; i < count; ++i) {
        const ElementFit& fit = result.report.elements[i];
        if (!fit.has_bayes) continue;
        const ElementDomain domain = domain_of(fit.key);
        const double value =
            clamp_value(domain, fit.bayes.*quantile, options.round_counts);
        trace::BasicBlockRecord* block = index.at(fit.key.block_id);
        if (fit.key.is_block_level()) {
          block->features[fit.key.element] = value;
        } else {
          for (auto& instr : block->instructions) {
            if (static_cast<std::int32_t>(instr.index) == fit.key.instr_index) {
              instr.features[fit.key.element] = value;
              break;
            }
          }
        }
      }
      for (auto& block : into.blocks) monotonize_hit_rates(block);
    };
    write_quantile(result.trace_lo, &stats::bayes::Prediction::lo);
    write_quantile(result.trace_median, &stats::bayes::Prediction::median);
    write_quantile(result.trace_hi, &stats::bayes::Prediction::hi);
  }
  return result;
}

/// Shared core of both extrapolation axes: fit every aligned element over
/// `alignment.axis`, evaluate at `target`, and synthesize the output trace.
/// Fitting fans out across the pool (when one is configured); the results
/// are applied serially in element order, so parallel runs emit the same
/// bytes, the same report, and the same diagnostics as serial ones.
ExtrapolationResult extrapolate_alignment(std::span<const trace::TaskTrace> inputs,
                                          const Alignment& alignment, double target,
                                          std::uint32_t out_core_count,
                                          const std::string& axis_name,
                                          const ExtrapolationOptions& options) {
  const InfluenceIndex influence(inputs.back(), options.influence_threshold);

  // Stage 1 — fit every element (the hot loop; embarrassingly parallel).
  // Candidates come from the batched SoA fitter; evaluation at the target
  // (selection, clamping, bootstraps) then fans out per element.  Both
  // halves are pure, so the split changes scheduling but not one bit of
  // any outcome.
  std::vector<ElementOutcome> outcomes;
  {
    util::metrics::StageTimer fit_timer("extrapolate.fit");
    const std::vector<ElementModels> models = compute_models_stage(
        alignment, influence, options, 0, alignment.elements.size());
    outcomes = run_stage<ElementOutcome>(
        alignment.elements.size(),
        [&](std::size_t i) {
          return evaluate_element(alignment, alignment.elements[i], models[i], target,
                                  options);
        },
        options);
  }

  return apply_outcomes(alignment, std::move(outcomes), target, out_core_count,
                        axis_name, inputs.back().app, inputs.back().rank,
                        inputs.back().target_system, options);
}

}  // namespace

ExtrapolationResult extrapolate_task(std::span<const trace::TaskTrace> inputs,
                                     std::uint32_t target_cores,
                                     const ExtrapolationOptions& options) {
  PMACX_CHECK(inputs.size() >= 2, "extrapolation requires at least two input traces");
  PMACX_CHECK(target_cores > 0, "target core count must be positive");
  const Alignment alignment = align_traces(inputs, options.missing);
  return extrapolate_alignment(inputs, alignment, static_cast<double>(target_cores),
                               target_cores, "cores", options);
}

ExtrapolationResult extrapolate_parameter(std::span<const trace::TaskTrace> inputs,
                                          std::span<const double> parameter_values,
                                          double target_value,
                                          const ExtrapolationOptions& options) {
  PMACX_CHECK(inputs.size() >= 2, "extrapolation requires at least two input traces");
  PMACX_CHECK(target_value > 0, "target parameter value must be positive");
  for (std::size_t i = 1; i < inputs.size(); ++i)
    PMACX_CHECK(inputs[i].core_count == inputs[0].core_count,
                "parameter extrapolation requires a fixed core count");
  const Alignment alignment = align_over(inputs, parameter_values, options.missing);
  return extrapolate_alignment(inputs, alignment, target_value, inputs[0].core_count,
                               "parameter", options);
}

std::size_t TaskModelSet::memory_bytes() const {
  std::size_t total = sizeof(*this);
  total += alignment.axis.capacity() * sizeof(double);
  for (const AlignedElement& element : alignment.elements) {
    total += sizeof(element);
    total += element.values.capacity() * sizeof(double);
    total += element.filled.capacity() / 8;  // vector<bool> is bit-packed
  }
  for (const trace::BasicBlockRecord& block : alignment.skeleton) {
    total += sizeof(block);
    total += block.location.file.capacity() + block.location.function.capacity();
    total += block.instructions.capacity() * sizeof(trace::InstructionRecord);
  }
  for (const ElementModels& em : models) {
    total += sizeof(em);
    total += em.fit_axis.capacity() * sizeof(double);
    total += em.fit_values.capacity() * sizeof(double);
    total += em.candidates.capacity() * sizeof(stats::FittedModel);
    total += em.scores.capacity() * sizeof(double);
  }
  total += app.capacity() + target_system.capacity() + axis_name.capacity();
  return total;
}

TaskModelSet fit_task_models(std::span<const trace::TaskTrace> inputs,
                             const ExtrapolationOptions& options) {
  PMACX_CHECK(inputs.size() >= 2, "extrapolation requires at least two input traces");

  TaskModelSet set;
  set.alignment = align_traces(inputs, options.missing);
  set.options = options;
  set.options.pool = nullptr;  // a cached set must not outlive a borrowed pool
  set.app = inputs.back().app;
  set.rank = inputs.back().rank;
  set.target_system = inputs.back().target_system;
  set.axis_name = "cores";

  const InfluenceIndex influence(inputs.back(), options.influence_threshold);
  util::metrics::StageTimer fit_timer("extrapolate.fit");
  set.models = compute_models_stage(set.alignment, influence, options, 0,
                                    set.alignment.elements.size());
  return set;
}

TaskModelSet fit_task_models_checkpointed(std::span<const trace::TaskTrace> inputs,
                                          const ExtrapolationOptions& options,
                                          const CheckpointConfig& config,
                                          CheckpointStats* stats_out) {
  PMACX_CHECK(inputs.size() >= 2, "extrapolation requires at least two input traces");

  TaskModelSet set;
  set.alignment = align_traces(inputs, options.missing);
  set.options = options;
  set.options.pool = nullptr;  // a cached set must not outlive a borrowed pool
  set.app = inputs.back().app;
  set.rank = inputs.back().rank;
  set.target_system = inputs.back().target_system;
  set.axis_name = "cores";

  const InfluenceIndex influence(inputs.back(), options.influence_threshold);
  const std::size_t count = set.alignment.elements.size();

  ModelCheckpoint checkpoint(config);
  checkpoint.open(count);

  CheckpointStats stats;
  stats.elements_total = count;

  // Chunks are processed in order — parallel fitting *within* a chunk, one
  // atomic write per completed chunk — so a crash at any instant loses at
  // most the chunk in flight and the on-disk state is always a valid prefix
  // of the work (plus whatever earlier chunks a prior run completed).
  set.models.resize(count);
  util::metrics::StageTimer fit_timer("extrapolate.fit");
  std::size_t chunks_written = 0;
  for (std::size_t c = 0; c < checkpoint.chunk_count(); ++c) {
    const std::size_t begin = checkpoint.chunk_begin(c);
    const std::size_t end = checkpoint.chunk_end(c);
    if (std::optional<std::vector<ElementModels>> cached = checkpoint.load_chunk(c)) {
      for (std::size_t i = 0; i < cached->size(); ++i)
        set.models[begin + i] = std::move((*cached)[i]);
      stats.elements_reused += end - begin;
      continue;
    }
    std::vector<ElementModels> chunk =
        compute_models_stage(set.alignment, influence, options, begin, end - begin);
    checkpoint.save_chunk(c, chunk);
    for (std::size_t i = 0; i < chunk.size(); ++i) set.models[begin + i] = std::move(chunk[i]);
    stats.elements_fitted += end - begin;
    ++chunks_written;
    if (config.kill_after_chunks > 0 && chunks_written >= config.kill_after_chunks) {
      // Crash-injection hook for resume tests: SIGKILL cannot be caught or
      // cleaned up after — exactly the failure the checkpoint exists for.
      std::raise(SIGKILL);
    }
  }
  stats.chunks_discarded = checkpoint.chunks_discarded();
  stats.resumed = stats.elements_reused > 0;

  util::metrics::Registry& metrics = util::metrics::Registry::global();
  metrics.counter("checkpoint.elements_reused").add(stats.elements_reused);
  metrics.counter("checkpoint.elements_fitted").add(stats.elements_fitted);
  if (stats.chunks_discarded > 0)
    metrics.counter("checkpoint.chunks_discarded").add(stats.chunks_discarded);
  if (stats.resumed) metrics.counter("checkpoint.resumes").add();
  if (stats_out != nullptr) *stats_out = stats;
  return set;
}

ExtrapolationResult extrapolate_from_models(const TaskModelSet& models,
                                            std::uint32_t target_cores) {
  return extrapolate_from_models(models, target_cores,
                                 models.options.interval_coverage);
}

ExtrapolationResult extrapolate_from_models(const TaskModelSet& models,
                                            std::uint32_t target_cores,
                                            double interval_coverage) {
  PMACX_CHECK(target_cores > 0, "target core count must be positive");
  PMACX_CHECK(models.models.size() == models.alignment.elements.size(),
              "model set inconsistent with its alignment");
  const double target = static_cast<double>(target_cores);

  // Interval mode is a per-query choice layered over the cached fits — the
  // same model set answers PREDICT and PREDICT_INTERVAL without refitting.
  ExtrapolationOptions options = models.options;
  options.interval_coverage = interval_coverage;

  // Selection + evaluation over precomputed candidates: no fitting, so this
  // runs serially — and a shared cached set can be evaluated from many
  // server threads concurrently (everything in `models` is read-only here).
  std::vector<ElementOutcome> outcomes;
  {
    util::metrics::StageTimer select_timer("extrapolate.select");
    outcomes.reserve(models.models.size());
    for (std::size_t i = 0; i < models.models.size(); ++i)
      outcomes.push_back(evaluate_element(models.alignment, models.alignment.elements[i],
                                          models.models[i], target, options));
  }

  return apply_outcomes(models.alignment, std::move(outcomes), target, target_cores,
                        models.axis_name, models.app, models.rank, models.target_system,
                        options);
}

namespace {

/// Fitting-relevant option fields that must match for a previous set's
/// models to be candidates for reuse.  Evaluation-time knobs (interval
/// coverage, bootstrap resamples, rounding, domain rejection, pool policy)
/// never change fitted candidates and are deliberately excluded.
bool fit_options_compatible(const ExtrapolationOptions& a, const ExtrapolationOptions& b) {
  return a.missing == b.missing && a.influence_threshold == b.influence_threshold &&
         a.fit.forms == b.fit.forms && a.fit.criterion == b.fit.criterion &&
         a.fit.loo_cv == b.fit.loo_cv && a.fit.tie_tolerance == b.fit.tie_tolerance;
}

/// Bitwise series identity: reuse must be exact, so -0.0 vs 0.0 (or any
/// payload difference == would forgive) disqualifies it.
bool same_series(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

void record_incremental_metrics(const IncrementalFitStats& stats) {
  util::metrics::Registry& metrics = util::metrics::Registry::global();
  metrics.counter("fits.incremental.reused").add(stats.elements_reused);
  metrics.counter("fits.incremental.refit").add(stats.elements_refit);
  metrics.counter("fits.incremental.extended").add(stats.moments_extended);
  if (stats.cold) metrics.counter("fits.incremental.cold").add();
}

}  // namespace

TaskModelSet fit_task_models_incremental(std::span<const trace::TaskTrace> inputs,
                                         const ExtrapolationOptions& options,
                                         const TaskModelSet* previous,
                                         IncrementalFitStats* stats_out) {
  PMACX_CHECK(inputs.size() >= 2, "extrapolation requires at least two input traces");

  IncrementalFitStats stats;
  const bool compatible =
      previous != nullptr && previous->axis_name == "cores" &&
      previous->app == inputs.back().app && previous->rank == inputs.back().rank &&
      previous->target_system == inputs.back().target_system &&
      previous->models.size() == previous->alignment.elements.size() &&
      fit_options_compatible(previous->options, options);
  if (!compatible) {
    stats.cold = true;
    TaskModelSet set = fit_task_models(inputs, options);
    stats.elements_total = set.models.size();
    stats.elements_refit = set.models.size();
    record_incremental_metrics(stats);
    if (stats_out != nullptr) *stats_out = stats;
    return set;
  }

  TaskModelSet set;
  set.alignment = align_traces(inputs, options.missing);
  set.options = options;
  set.options.pool = nullptr;  // a cached set must not outlive a borrowed pool
  set.app = inputs.back().app;
  set.rank = inputs.back().rank;
  set.target_system = inputs.back().target_system;
  set.axis_name = "cores";

  const InfluenceIndex influence(inputs.back(), options.influence_threshold);
  const std::size_t count = set.alignment.elements.size();
  stats.elements_total = count;
  set.models.resize(count);

  util::metrics::StageTimer fit_timer("extrapolate.fit");

  // Merge-join the new elements against the previous set (both sorted by
  // ElementKey).  An element whose chosen fit series is bitwise unchanged
  // reuses the previous models wholesale — only `influential` is
  // recomputed, because the influence reference (the largest input trace)
  // has changed.  Everything else refits through the shared stage.
  std::vector<std::size_t> refit;
  std::vector<double> axis, values;
  std::size_t j = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const AlignedElement& element = set.alignment.elements[i];
    choose_fit_series(set.alignment, element, options, axis, values);
    while (j < previous->alignment.elements.size() &&
           previous->alignment.elements[j].key < element.key)
      ++j;
    const ElementModels* prev =
        (j < previous->alignment.elements.size() &&
         previous->alignment.elements[j].key == element.key)
            ? &previous->models[j]
            : nullptr;
    if (prev != nullptr && same_series(prev->fit_axis, axis) &&
        same_series(prev->fit_values, values)) {
      set.models[i] = *prev;
      set.models[i].influential = influence.lookup(element.key);
      ++stats.elements_reused;
      continue;
    }
    // A grown series whose prefix is exactly what the previous moments
    // summarize extends them in O(1) — the fingerprint chains per sample,
    // so prefix identity is one u32 comparison.  The refit recomputes the
    // same moments from the full series (extension and recomputation are
    // bitwise identical, pinned in tests/stats_suffstats_test.cpp); the
    // tally tracks how much of the workload was a pure append.
    if (prev != nullptr && prev->moments.count > 0 && prev->moments.count < axis.size() &&
        stats::series_fingerprint(axis, values,
                                  static_cast<std::size_t>(prev->moments.count)) ==
            prev->moments.fingerprint)
      ++stats.moments_extended;
    refit.push_back(i);
  }

  if (!refit.empty()) {
    Alignment scratch;
    scratch.axis = set.alignment.axis;
    scratch.elements.reserve(refit.size());
    for (std::size_t index : refit) scratch.elements.push_back(set.alignment.elements[index]);
    std::vector<ElementModels> fitted =
        compute_models_stage(scratch, influence, options, 0, scratch.elements.size());
    for (std::size_t k = 0; k < refit.size(); ++k)
      set.models[refit[k]] = std::move(fitted[k]);
  }
  stats.elements_refit = refit.size();

  record_incremental_metrics(stats);
  if (stats_out != nullptr) *stats_out = stats;
  return set;
}

}  // namespace pmacx::core
