#include "core/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "stats/kmeans.hpp"
#include "util/error.hpp"

namespace pmacx::core {
namespace {

/// Aggregate feature point of one task trace, log-scaled and normalized so
/// k-means distances are meaningful across wildly different magnitudes.
std::vector<double> task_features(const trace::TaskTrace& task) {
  auto log_scale = [](double v) { return std::log10(std::max(v, 1.0)); };
  double ws = 0.0;
  double hit1 = 0.0, hit3 = 0.0;
  for (const auto& block : task.blocks) {
    ws += block.get(trace::BlockElement::WorkingSetBytes);
    const double weight = block.memory_ops();
    hit1 += weight * block.get(trace::BlockElement::HitRateL1);
    hit3 += weight * block.get(trace::BlockElement::HitRateL3);
  }
  const double mem = std::max(task.total_memory_ops(), 1.0);
  return {
      log_scale(task.total_memory_ops()),
      log_scale(task.total_fp_ops()),
      log_scale(ws),
      hit1 / mem,  // memory-op-weighted mean hit rates
      hit3 / mem,
  };
}

/// Finds the traced rank in `signature` whose relative position rank/cores
/// is closest to `fraction`.
const trace::TaskTrace& closest_by_fraction(const trace::AppSignature& signature,
                                            double fraction) {
  PMACX_CHECK(!signature.tasks.empty(), "signature has no traced ranks");
  const trace::TaskTrace* best = &signature.tasks.front();
  double best_distance = 2.0;
  for (const auto& task : signature.tasks) {
    const double position =
        static_cast<double>(task.rank) / static_cast<double>(signature.core_count);
    const double distance = std::fabs(position - fraction);
    if (distance < best_distance) {
      best_distance = distance;
      best = &task;
    }
  }
  return *best;
}

}  // namespace

std::vector<double> ClusteredExtrapolation::rank_work_weights(
    std::uint32_t target_cores) const {
  PMACX_CHECK(!clusters.empty(), "no clusters");
  std::vector<double> weights(target_cores, 0.0);
  // Assign each target rank to the cluster whose share band it falls in,
  // preserving the relative ordering of clusters by their member ranks.
  std::vector<std::size_t> order(clusters.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return clusters[a].member_ranks.front() < clusters[b].member_ranks.front();
  });

  std::uint32_t next = 0;
  for (std::size_t idx : order) {
    const auto span = static_cast<std::uint32_t>(
        std::round(clusters[idx].rank_share * static_cast<double>(target_cores)));
    const std::uint32_t end = std::min(target_cores, next + std::max<std::uint32_t>(span, 1));
    const double work = clusters[idx].representative.total_memory_ops();
    for (std::uint32_t r = next; r < end; ++r) weights[r] = work;
    next = end;
  }
  // Any remainder inherits the last cluster's weight.
  const double tail = clusters[order.back()].representative.total_memory_ops();
  for (std::uint32_t r = next; r < target_cores; ++r) weights[r] = tail;
  return weights;
}

ClusteredExtrapolation extrapolate_clustered(std::span<const trace::AppSignature> inputs,
                                             std::uint32_t target_cores,
                                             const ClusterOptions& options) {
  PMACX_CHECK(inputs.size() >= 2, "clustered extrapolation requires >= 2 signatures");
  for (std::size_t i = 1; i < inputs.size(); ++i)
    PMACX_CHECK(inputs[i].core_count > inputs[i - 1].core_count,
                "signatures must have strictly increasing core counts");

  const trace::AppSignature& largest = inputs.back();
  PMACX_CHECK(!largest.tasks.empty(), "largest signature has no traced ranks");

  // Cluster the largest signature's traced ranks on aggregate features.
  std::vector<std::vector<double>> points;
  points.reserve(largest.tasks.size());
  for (const auto& task : largest.tasks) points.push_back(task_features(task));

  stats::KMeansOptions kopts;
  kopts.seed = options.seed;
  const std::size_t k = stats::pick_k_elbow(points, options.max_clusters,
                                            options.elbow_threshold, kopts);
  const stats::KMeansResult clustering = stats::kmeans(points, k, kopts);

  ClusteredExtrapolation result;
  result.k = k;
  result.clusters.resize(k);

  for (std::size_t c = 0; c < k; ++c) {
    ExtrapolatedCluster& cluster = result.clusters[c];
    // Members and the medoid (member closest to the centroid).
    double best_distance = std::numeric_limits<double>::infinity();
    std::size_t medoid = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (clustering.assignment[i] != c) continue;
      cluster.member_ranks.push_back(largest.tasks[i].rank);
      double d2 = 0.0;
      for (std::size_t dim = 0; dim < points[i].size(); ++dim) {
        const double d = points[i][dim] - clustering.centroids[c][dim];
        d2 += d * d;
      }
      if (d2 < best_distance) {
        best_distance = d2;
        medoid = i;
      }
    }
    PMACX_ASSERT(!cluster.member_ranks.empty(), "k-means produced an empty cluster");
    std::sort(cluster.member_ranks.begin(), cluster.member_ranks.end());
    cluster.rank_share = static_cast<double>(cluster.member_ranks.size()) /
                         static_cast<double>(largest.tasks.size());

    // Build the medoid's series across core counts by relative rank
    // position, then extrapolate it like the single demanding task.
    const double fraction = static_cast<double>(largest.tasks[medoid].rank) /
                            static_cast<double>(largest.core_count);
    std::vector<trace::TaskTrace> series;
    series.reserve(inputs.size());
    for (const auto& signature : inputs)
      series.push_back(closest_by_fraction(signature, fraction));

    ExtrapolationResult extrapolated =
        extrapolate_task(series, target_cores, options.extrapolation);
    // Representative keeps the medoid's rank scaled to the target count.
    extrapolated.trace.rank = static_cast<std::uint32_t>(
        std::min<double>(fraction * target_cores, target_cores - 1));
    cluster.representative = std::move(extrapolated.trace);
    cluster.report = std::move(extrapolated.report);
  }

  // Order clusters by their first member rank for stable reporting.
  std::sort(result.clusters.begin(), result.clusters.end(),
            [](const ExtrapolatedCluster& a, const ExtrapolatedCluster& b) {
              return a.member_ranks.front() < b.member_ranks.front();
            });
  return result;
}

}  // namespace pmacx::core
