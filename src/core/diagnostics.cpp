#include "core/diagnostics.hpp"

#include <sstream>

namespace pmacx::core {

void DiagnosticsReport::warn(std::string message) {
  if (warnings.size() < kMaxWarnings) {
    warnings.push_back(std::move(message));
  } else {
    ++suppressed_warnings;
  }
}

void DiagnosticsReport::merge(const DiagnosticsReport& other) {
  salvaged_blocks += other.salvaged_blocks;
  lost_blocks += other.lost_blocks;
  salvaged_files += other.salvaged_files;
  fallback_fits += other.fallback_fits;
  clamped_values += other.clamped_values;
  suppressed_warnings += other.suppressed_warnings;
  for (const std::string& warning : other.warnings) warn(warning);
}

bool DiagnosticsReport::clean() const {
  return salvaged_blocks == 0 && lost_blocks == 0 && salvaged_files == 0 &&
         fallback_fits == 0 && clamped_values == 0 && warnings.empty() &&
         suppressed_warnings == 0;
}

std::string DiagnosticsReport::summary() const {
  if (clean()) return "diagnostics: clean (no salvage, fallbacks, or clamps)\n";
  std::ostringstream out;
  out << "diagnostics:\n";
  if (salvaged_files > 0)
    out << "  salvaged files:   " << salvaged_files << " (" << salvaged_blocks
        << " blocks recovered, " << lost_blocks << " lost)\n";
  if (fallback_fits > 0) out << "  fallback fits:    " << fallback_fits << "\n";
  if (clamped_values > 0) out << "  clamped values:   " << clamped_values << "\n";
  for (const std::string& warning : warnings) out << "  warning: " << warning << "\n";
  if (suppressed_warnings > 0)
    out << "  (+" << suppressed_warnings << " further warnings suppressed)\n";
  return out.str();
}

}  // namespace pmacx::core
