#include "core/align.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pmacx::core {
namespace {

/// Values for one key across all traces, with presence flags; missing values
/// are completed per policy (nearest neighbour for CarryLast, 0 otherwise).
struct Series {
  std::vector<double> values;
  std::vector<bool> present;
};

void complete_series(Series& series, MissingPolicy policy) {
  const std::size_t n = series.values.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (series.present[i]) continue;
    if (policy == MissingPolicy::ZeroFill || policy == MissingPolicy::FitPresent) {
      // FitPresent only needs placeholders — the extrapolator fits the
      // present points and ignores these values.
      series.values[i] = 0.0;
      continue;
    }
    // CarryLast: nearest present neighbour, preferring earlier core counts.
    double value = 0.0;
    std::size_t best_distance = n + 1;
    for (std::size_t j = 0; j < n; ++j) {
      if (!series.present[j]) continue;
      const std::size_t distance =
          i > j ? i - j : (j - i) + 0;  // earlier neighbours tie-break by <=
      if (distance < best_distance || (distance == best_distance && j < i)) {
        best_distance = distance;
        value = series.values[j];
      }
    }
    series.values[i] = value;
  }
}

}  // namespace

std::string ElementKey::describe() const {
  std::string label = "block " + std::to_string(block_id);
  if (is_block_level()) {
    label += " / " + trace::block_element_name(static_cast<trace::BlockElement>(element));
  } else {
    label += " / instr " + std::to_string(instr_index) + " / " +
             trace::instr_element_name(static_cast<trace::InstrElement>(element));
  }
  return label;
}

Alignment align_traces(std::span<const trace::TaskTrace> traces, MissingPolicy policy) {
  PMACX_CHECK(traces.size() >= 2, "alignment requires at least two traces");
  for (std::size_t i = 1; i < traces.size(); ++i)
    PMACX_CHECK(traces[i].core_count > traces[i - 1].core_count,
                "alignment: core counts must be strictly increasing");
  std::vector<double> axis;
  axis.reserve(traces.size());
  for (const auto& trace : traces) axis.push_back(static_cast<double>(trace.core_count));
  return align_over(traces, axis, policy);
}

Alignment align_over(std::span<const trace::TaskTrace> traces,
                     std::span<const double> axis, MissingPolicy policy) {
  PMACX_CHECK(traces.size() >= 2, "alignment requires at least two traces");
  PMACX_CHECK(axis.size() == traces.size(), "alignment: axis/trace count mismatch");
  for (std::size_t i = 0; i < traces.size(); ++i) {
    PMACX_CHECK(traces[i].app == traces[0].app, "alignment: app mismatch");
    PMACX_CHECK(traces[i].target_system == traces[0].target_system,
                "alignment: target system mismatch");
    if (i > 0)
      PMACX_CHECK(axis[i] > axis[i - 1], "alignment: axis must be strictly increasing");
  }

  Alignment alignment;
  alignment.axis.assign(axis.begin(), axis.end());

  // Union of block ids with presence masks.
  std::map<std::uint64_t, std::vector<bool>> block_presence;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    for (const auto& block : traces[t].blocks) {
      auto [it, inserted] =
          block_presence.try_emplace(block.id, std::vector<bool>(traces.size(), false));
      it->second[t] = true;
    }
  }

  for (const auto& [block_id, presence] : block_presence) {
    const bool everywhere = std::all_of(presence.begin(), presence.end(),
                                        [](bool present) { return present; });
    if (policy == MissingPolicy::Drop && !everywhere) continue;

    // Skeleton record: metadata from the highest core count that has the
    // block (the closest behaviour to the extrapolation target).
    const trace::BasicBlockRecord* skeleton_block = nullptr;
    for (std::size_t t = traces.size(); t-- > 0;) {
      if ((skeleton_block = traces[t].find_block(block_id)) != nullptr) break;
    }
    PMACX_ASSERT(skeleton_block != nullptr, "presence map out of sync");
    alignment.skeleton.push_back(*skeleton_block);

    auto emit = [&](const ElementKey& key, Series series) {
      complete_series(series, policy);
      AlignedElement element;
      element.key = key;
      element.values = std::move(series.values);
      element.filled.reserve(series.present.size());
      for (bool present : series.present) element.filled.push_back(!present);
      alignment.elements.push_back(std::move(element));
    };

    // Block-level elements.
    for (std::size_t e = 0; e < trace::kBlockElementCount; ++e) {
      Series series;
      series.values.resize(traces.size(), 0.0);
      series.present.resize(traces.size(), false);
      for (std::size_t t = 0; t < traces.size(); ++t) {
        if (const auto* block = traces[t].find_block(block_id)) {
          series.values[t] = block->features[e];
          series.present[t] = true;
        }
      }
      emit(ElementKey{block_id, -1, static_cast<std::uint32_t>(e)}, std::move(series));
    }

    // Instruction-level elements, over the skeleton's instruction set.
    for (const auto& instr : skeleton_block->instructions) {
      for (std::size_t e = 0; e < trace::kInstrElementCount; ++e) {
        Series series;
        series.values.resize(traces.size(), 0.0);
        series.present.resize(traces.size(), false);
        for (std::size_t t = 0; t < traces.size(); ++t) {
          const auto* block = traces[t].find_block(block_id);
          if (block == nullptr) continue;
          for (const auto& candidate : block->instructions) {
            if (candidate.index == instr.index) {
              series.values[t] = candidate.features[e];
              series.present[t] = true;
              break;
            }
          }
        }
        emit(ElementKey{block_id, static_cast<std::int32_t>(instr.index),
                        static_cast<std::uint32_t>(e)},
             std::move(series));
      }
    }
  }

  return alignment;
}

}  // namespace pmacx::core
