// Trace alignment across core counts.
//
// Extrapolation needs, for every feature-vector element, its value series
// across the input core counts (Fig. 3).  Alignment matches basic blocks by
// their stable id and instructions by (block id, instruction index).  Blocks
// can genuinely appear or disappear between core counts (e.g. a code path
// taken only above some rank count); the MissingPolicy decides how such
// series are completed.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/task_trace.hpp"

namespace pmacx::core {

/// What to do when a block/instruction is absent from some input traces.
enum class MissingPolicy {
  Drop,        ///< exclude the element from extrapolation entirely
  ZeroFill,    ///< treat missing occurrences as 0 (block didn't execute)
  CarryLast,   ///< reuse the nearest available core count's value
  FitPresent,  ///< keep the block but fit only the counts where it appears
               ///< (falls back to ZeroFill semantics below 2 observations)
};

/// Identifies one extrapolatable element.
struct ElementKey {
  std::uint64_t block_id = 0;
  /// Instruction index within the block, or -1 for a block-level element.
  std::int32_t instr_index = -1;
  /// Index into BlockElement (instr_index < 0) or InstrElement (≥ 0).
  std::uint32_t element = 0;

  bool is_block_level() const { return instr_index < 0; }
  /// "block 5 / instr 2 / hit_rate_l2"-style label for reports.
  std::string describe() const;

  auto operator<=>(const ElementKey&) const = default;
};

/// One aligned element: the key plus its value at every input core count
/// (same order as the input traces).
struct AlignedElement {
  ElementKey key;
  std::vector<double> values;
  /// True where the value was synthesized by the MissingPolicy rather than
  /// present in the input trace.
  std::vector<bool> filled;
};

/// The alignment of a set of traces: every element's series plus the block
/// skeleton (location, instruction arity) used to rebuild an output trace.
struct Alignment {
  /// The abscissa each trace sits at — core counts for the paper's scaling
  /// axis, or an input-parameter value for Section VI's parameter axis.
  std::vector<double> axis;
  std::vector<AlignedElement> elements;   ///< sorted by key
  /// Blocks in the union (after policy), with location metadata from the
  /// last (largest-axis) trace that has them.
  std::vector<trace::BasicBlockRecord> skeleton;
};

/// Aligns `traces` (all same app/target, strictly increasing core counts,
/// ≥ 2 of them) along the core-count axis.  Throws util::Error on
/// inconsistent inputs.
Alignment align_traces(std::span<const trace::TaskTrace> traces, MissingPolicy policy);

/// Aligns `traces` along an arbitrary strictly increasing axis (e.g. an
/// input-size parameter); core counts are not constrained.
Alignment align_over(std::span<const trace::TaskTrace> traces,
                     std::span<const double> axis, MissingPolicy policy);

}  // namespace pmacx::core
