#include "core/comm_extrap.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/error.hpp"

namespace pmacx::core {
namespace {

/// Rank-role classes induced by the two-phase neighbour exchange.
constexpr std::uint32_t kClasses = 2;  // even / odd

std::uint32_t class_of(std::uint32_t rank) { return rank % kClasses; }

/// Template source rank of a class in an input signature (rank 0 or 1).
const trace::CommTrace& class_template(const trace::AppSignature& signature,
                                       std::uint32_t cls) {
  PMACX_CHECK(signature.comm.size() > cls, "signature lacks comm traces");
  return signature.comm[cls];
}

/// Peer delta of an event relative to its rank, in [0, P).
std::int64_t peer_delta(const trace::CommEvent& event, std::uint32_t rank,
                        std::uint32_t cores) {
  const std::int64_t p = static_cast<std::int64_t>(cores);
  const std::int64_t d = (static_cast<std::int64_t>(event.peer) - rank) % p;
  return (d + p) % p;
}

/// Exact affine model delta = a + b·P fitted through the input points;
/// ok=false when no integer-exact affine law reproduces every input.
struct AffineDelta {
  std::int64_t a = 0;
  std::int64_t b = 0;
  bool ok = false;
};

AffineDelta fit_affine_delta(std::span<const std::int64_t> deltas,
                             std::span<const double> cores) {
  AffineDelta model;
  const std::size_t n = deltas.size();
  PMACX_ASSERT(n >= 2, "affine delta needs two points");

  // Constant first (the common case: fixed neighbour offsets).
  bool constant = true;
  for (std::size_t i = 1; i < n; ++i)
    if (deltas[i] != deltas[0]) constant = false;
  if (constant) {
    model.a = deltas[0];
    model.b = 0;
    model.ok = true;
    return model;
  }

  // Affine through the first two points, verified on the rest.
  const double p0 = cores[0], p1 = cores[1];
  const double b = static_cast<double>(deltas[1] - deltas[0]) / (p1 - p0);
  const double a = static_cast<double>(deltas[0]) - b * p0;
  const double b_rounded = std::round(b);
  const double a_rounded = std::round(a);
  if (std::fabs(b - b_rounded) > 1e-9 || std::fabs(a - a_rounded) > 1e-9) return model;
  for (std::size_t i = 0; i < n; ++i) {
    const double predicted = a_rounded + b_rounded * cores[i];
    if (std::llround(predicted) != deltas[i]) return model;
  }
  model.a = static_cast<std::int64_t>(a_rounded);
  model.b = static_cast<std::int64_t>(b_rounded);
  model.ok = true;
  return model;
}

}  // namespace

CommExtrapolation extrapolate_comm(std::span<const trace::AppSignature> inputs,
                                   std::uint32_t target_cores,
                                   const CommExtrapolationOptions& options) {
  PMACX_CHECK(inputs.size() >= 2, "comm extrapolation requires >= 2 input signatures");
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    PMACX_CHECK(!inputs[i].comm.empty(), "input signature lacks comm traces");
    PMACX_CHECK(inputs[i].comm.size() == inputs[i].core_count,
                "input signature must carry comm traces for every rank");
    if (i > 0)
      PMACX_CHECK(inputs[i].core_count > inputs[i - 1].core_count,
                  "input core counts must be strictly increasing");
    PMACX_CHECK(inputs[i].core_count >= kClasses, "input core count too small");
  }
  PMACX_CHECK(target_cores >= kClasses && target_cores % 2 == 0,
              "target core count must be even and >= 2");

  std::vector<double> cores;
  cores.reserve(inputs.size());
  for (const auto& signature : inputs) cores.push_back(signature.core_count);

  CommExtrapolation result;

  // ---- Per-class structural models: ops, bytes, peer deltas, tail. -------
  struct EventModel {
    trace::CommOp op;
    stats::FittedModel bytes;
    AffineDelta delta;        ///< p2p only
    std::int64_t carried_delta = 0;
  };
  struct ClassModel {
    std::vector<EventModel> events;
  };
  std::vector<ClassModel> classes(kClasses);

  for (std::uint32_t cls = 0; cls < kClasses; ++cls) {
    const trace::CommTrace& reference = class_template(inputs.back(), cls);
    const std::size_t event_count = reference.events.size();
    for (const auto& signature : inputs) {
      const trace::CommTrace& tmpl = class_template(signature, cls);
      PMACX_CHECK(tmpl.events.size() == event_count,
                  "comm structure is not SPMD-stable: event count differs across "
                  "core counts for rank class " + std::to_string(cls));
    }

    ClassModel& model = classes[cls];
    model.events.reserve(event_count);
    for (std::size_t k = 0; k < event_count; ++k) {
      EventModel event_model;
      event_model.op = reference.events[k].op;

      std::vector<double> bytes_series;
      std::vector<std::int64_t> deltas;
      for (const auto& signature : inputs) {
        const trace::CommEvent& event = class_template(signature, cls).events[k];
        PMACX_CHECK(event.op == event_model.op,
                    "comm structure is not SPMD-stable: op differs at event " +
                        std::to_string(k) + " of rank class " + std::to_string(cls));
        bytes_series.push_back(static_cast<double>(event.bytes));
        if (!trace::comm_op_is_collective(event.op))
          deltas.push_back(peer_delta(event, cls, signature.core_count));
      }

      event_model.bytes = stats::select_best(cores, bytes_series, options.fit);
      if (!deltas.empty()) {
        event_model.delta = fit_affine_delta(deltas, cores);
        event_model.carried_delta = deltas.back();
        if (event_model.delta.ok)
          ++result.affine_peer_events;
        else
          ++result.carried_peer_events;
      }
      model.events.push_back(std::move(event_model));
    }
    result.events_per_rank = std::max(result.events_per_rank, model.events.size());
  }

  // ---- Compute-unit models, cached by rank-fraction-matched source tuple.
  // For a target rank r at fraction f = r/P_target, the source series comes
  // from rank round(f·P_i) (parity-adjusted to r's class) in each input, so
  // the application's load-imbalance profile is sampled at the same relative
  // position across core counts.
  struct UnitsModel {
    std::vector<stats::FittedModel> per_event;
    stats::FittedModel tail;
  };
  std::map<std::vector<std::uint32_t>, UnitsModel> units_cache;

  auto source_ranks_for = [&](std::uint32_t target_rank) {
    std::vector<std::uint32_t> sources;
    sources.reserve(inputs.size());
    const double fraction =
        static_cast<double>(target_rank) / static_cast<double>(target_cores);
    for (const auto& signature : inputs) {
      auto s = static_cast<std::uint32_t>(
          std::llround(fraction * static_cast<double>(signature.core_count)));
      if (s % kClasses != target_rank % kClasses) s = s > 0 ? s - 1 : s + 1;
      s = std::min(s, signature.core_count - 1);
      sources.push_back(s);
    }
    return sources;
  };

  auto units_model_for = [&](const std::vector<std::uint32_t>& sources,
                             std::uint32_t cls) -> const UnitsModel& {
    const auto it = units_cache.find(sources);
    if (it != units_cache.end()) return it->second;

    UnitsModel model;
    const std::size_t event_count = classes[cls].events.size();
    model.per_event.reserve(event_count);
    for (std::size_t k = 0; k < event_count; ++k) {
      std::vector<double> series;
      for (std::size_t i = 0; i < inputs.size(); ++i)
        series.push_back(inputs[i].comm[sources[i]].events[k].compute_units_before);
      model.per_event.push_back(stats::select_best(cores, series, options.fit));
    }
    std::vector<double> tail_series;
    for (std::size_t i = 0; i < inputs.size(); ++i)
      tail_series.push_back(inputs[i].comm[sources[i]].tail_compute_units);
    model.tail = stats::select_best(cores, tail_series, options.fit);
    return units_cache.emplace(sources, std::move(model)).first->second;
  };

  // ---- Instantiate every target rank. ------------------------------------
  const double target = static_cast<double>(target_cores);
  result.comm.reserve(target_cores);
  for (std::uint32_t rank = 0; rank < target_cores; ++rank) {
    const std::uint32_t cls = class_of(rank);
    const ClassModel& model = classes[cls];
    const UnitsModel& units = units_model_for(source_ranks_for(rank), cls);

    trace::CommTrace comm;
    comm.rank = rank;
    comm.core_count = target_cores;
    comm.events.reserve(model.events.size());
    for (std::size_t k = 0; k < model.events.size(); ++k) {
      const EventModel& em = model.events[k];
      trace::CommEvent event;
      event.op = em.op;
      event.bytes = static_cast<std::uint64_t>(
          std::max(0.0, std::round(em.bytes.evaluate(target))));
      if (trace::comm_op_is_collective(em.op)) {
        event.peer = -1;
      } else {
        const std::int64_t delta =
            em.delta.ok ? em.delta.a + em.delta.b * static_cast<std::int64_t>(target_cores)
                        : em.carried_delta;
        const std::int64_t p = static_cast<std::int64_t>(target_cores);
        event.peer = static_cast<std::int32_t>(((rank + delta) % p + p) % p);
      }
      event.compute_units_before = std::max(0.0, units.per_event[k].evaluate(target));
      comm.events.push_back(event);
    }
    comm.tail_compute_units = std::max(0.0, units.tail.evaluate(target));
    result.comm.push_back(std::move(comm));
  }
  return result;
}

}  // namespace pmacx::core
