#include "trace/block.hpp"

namespace pmacx::trace {

double BasicBlockRecord::memory_ops() const {
  return get(BlockElement::MemLoads) + get(BlockElement::MemStores);
}

double BasicBlockRecord::fp_ops() const {
  return get(BlockElement::FpAdd) + get(BlockElement::FpMul) +
         2.0 * get(BlockElement::FpFma) + get(BlockElement::FpDivSqrt);
}

double BasicBlockRecord::bytes_moved() const {
  return memory_ops() * get(BlockElement::BytesPerRef);
}

}  // namespace pmacx::trace
