#include "trace/elements.hpp"

#include "util/error.hpp"

namespace pmacx::trace {

std::string block_element_name(BlockElement element) {
  switch (element) {
    case BlockElement::VisitCount: return "visit_count";
    case BlockElement::FpAdd: return "fp_add";
    case BlockElement::FpMul: return "fp_mul";
    case BlockElement::FpFma: return "fp_fma";
    case BlockElement::FpDivSqrt: return "fp_div_sqrt";
    case BlockElement::MemLoads: return "mem_loads";
    case BlockElement::MemStores: return "mem_stores";
    case BlockElement::BytesPerRef: return "bytes_per_ref";
    case BlockElement::HitRateL1: return "hit_rate_l1";
    case BlockElement::HitRateL2: return "hit_rate_l2";
    case BlockElement::HitRateL3: return "hit_rate_l3";
    case BlockElement::WorkingSetBytes: return "working_set_bytes";
    case BlockElement::Ilp: return "ilp";
    case BlockElement::DepChainLength: return "dep_chain_length";
    case BlockElement::kCount: break;
  }
  PMACX_ASSERT(false, "bad BlockElement");
  return "?";
}

std::string instr_element_name(InstrElement element) {
  switch (element) {
    case InstrElement::ExecCount: return "exec_count";
    case InstrElement::MemOps: return "mem_ops";
    case InstrElement::BytesPerOp: return "bytes_per_op";
    case InstrElement::FpOps: return "fp_ops";
    case InstrElement::HitRateL1: return "hit_rate_l1";
    case InstrElement::HitRateL2: return "hit_rate_l2";
    case InstrElement::HitRateL3: return "hit_rate_l3";
    case InstrElement::kCount: break;
  }
  PMACX_ASSERT(false, "bad InstrElement");
  return "?";
}

bool block_element_is_rate(BlockElement element) {
  switch (element) {
    case BlockElement::HitRateL1:
    case BlockElement::HitRateL2:
    case BlockElement::HitRateL3: return true;
    default: return false;
  }
}

bool instr_element_is_rate(InstrElement element) {
  switch (element) {
    case InstrElement::HitRateL1:
    case InstrElement::HitRateL2:
    case InstrElement::HitRateL3: return true;
    default: return false;
  }
}

bool block_element_is_nonnegative(BlockElement element) {
  // Everything in the block vector is a count, size, rate or mean of
  // non-negative quantities.
  (void)element;
  return true;
}

bool instr_element_is_nonnegative(InstrElement element) {
  (void)element;
  return true;
}

}  // namespace pmacx::trace
