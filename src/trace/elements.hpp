// The feature-vector schema.
//
// Section III-B: "Each basic block for a given MPI task or core is
// represented by a feature vector which contains (1) amount and composition
// of floating point work, (2) number of memory operations, (3) size of
// memory operations, (4) cache hit rates in all levels of the target system
// and (5) working set size."  Section IV adds instruction-level detail
// ("data for each instruction of all basic blocks").
//
// Elements are identified by small enums so traces stay flat arrays of
// doubles; the extrapolator treats each element independently (Fig. 3) and
// uses the metadata here (is_rate / is_count) to clamp extrapolated values
// into their valid domain.
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace pmacx::trace {

/// Block-level feature-vector elements.
enum class BlockElement : std::size_t {
  VisitCount,       ///< times the block was entered
  FpAdd,            ///< floating-point adds/subs executed
  FpMul,            ///< floating-point multiplies executed
  FpFma,            ///< fused multiply-adds executed
  FpDivSqrt,        ///< divides and square roots executed
  MemLoads,         ///< load references executed
  MemStores,        ///< store references executed
  BytesPerRef,      ///< mean size of one memory reference in bytes
  HitRateL1,        ///< cumulative target-system hit rate at L1
  HitRateL2,        ///< cumulative target-system hit rate at ≤ L2
  HitRateL3,        ///< cumulative target-system hit rate at ≤ L3
  WorkingSetBytes,  ///< distinct bytes touched by the block
  Ilp,              ///< mean instruction-level parallelism (independent ops/cycle window)
  DepChainLength,   ///< mean data-dependency chain length in the block
  kCount
};

inline constexpr std::size_t kBlockElementCount =
    static_cast<std::size_t>(BlockElement::kCount);

/// Instruction-level feature-vector elements (per-instruction sub-records).
enum class InstrElement : std::size_t {
  ExecCount,    ///< dynamic executions of the instruction
  MemOps,       ///< memory references it issued
  BytesPerOp,   ///< bytes per reference
  FpOps,        ///< floating-point operations it performed
  HitRateL1,    ///< cumulative hit rate at L1 for its references
  HitRateL2,    ///< cumulative hit rate at ≤ L2
  HitRateL3,    ///< cumulative hit rate at ≤ L3
  kCount
};

inline constexpr std::size_t kInstrElementCount =
    static_cast<std::size_t>(InstrElement::kCount);

/// Flat storage types for the two vectors.
using BlockFeatures = std::array<double, kBlockElementCount>;
using InstrFeatures = std::array<double, kInstrElementCount>;

/// Stable, serialization-safe element names ("visit_count", "hit_rate_l1"...).
std::string block_element_name(BlockElement element);
std::string instr_element_name(InstrElement element);

/// True for elements that are rates confined to [0, 1] (cache hit rates);
/// extrapolated values get clamped into that interval.
bool block_element_is_rate(BlockElement element);
bool instr_element_is_rate(InstrElement element);

/// True for elements that are non-negative counts/sizes; extrapolated values
/// get floored at 0.
bool block_element_is_nonnegative(BlockElement element);
bool instr_element_is_nonnegative(InstrElement element);

}  // namespace pmacx::trace
