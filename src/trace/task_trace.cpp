#include "trace/task_trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <functional>
#include <sstream>

#include "trace/stream_reader.hpp"
#include "util/error.hpp"
#include "util/parse_error.hpp"
#include "util/strings.hpp"

namespace pmacx::trace {
namespace {

constexpr const char* kMagic = "pmacx-trace";
constexpr const char* kVersion = "1";

// Smallest possible text encodings, used to clamp reserve() calls against a
// corrupted declared count (the parse then fails at end-of-input with the
// usual ParseError instead of attempting an unbounded allocation).  A block
// is at least a "block", a "features", and an "instrs" line; an instruction
// is one "i" line.
constexpr std::size_t kMinTextBlockBytes =
    12 + (9 + 2 * kBlockElementCount) + 9;
constexpr std::size_t kMinTextInstrBytes = 4 + 2 * kInstrElementCount;

/// Line-oriented reader that tracks position for error messages.  Pulls raw
/// lines from a feed so the same grammar parses an in-memory string and a
/// budget-bounded ByteSource alike.
class LineReader {
 public:
  using Feed = std::function<bool(std::string&)>;

  explicit LineReader(Feed feed) : feed_(std::move(feed)) {}

  /// Next non-empty line, split on tabs; throws at EOF.
  std::vector<std::string> next(const char* expectation) {
    std::string line;
    while (feed_(line)) {
      ++line_number_;
      if (!line.empty()) return util::split(line, '\t');
    }
    PMACX_CHECK(false, std::string("unexpected end of trace while reading ") + expectation);
    return {};
  }

  int line_number() const { return line_number_; }

 private:
  Feed feed_;
  int line_number_ = 0;
};

std::string field(const std::vector<std::string>& fields, std::size_t index,
                  const char* what) {
  PMACX_CHECK(index < fields.size(), std::string("missing field: ") + what);
  return fields[index];
}

}  // namespace

const BasicBlockRecord* TaskTrace::find_block(std::uint64_t id) const {
  const auto it = std::lower_bound(
      blocks.begin(), blocks.end(), id,
      [](const BasicBlockRecord& block, std::uint64_t key) { return block.id < key; });
  if (it == blocks.end() || it->id != id) return nullptr;
  return &*it;
}

void TaskTrace::sort_blocks() {
  std::sort(blocks.begin(), blocks.end(),
            [](const BasicBlockRecord& a, const BasicBlockRecord& b) { return a.id < b.id; });
}

void TaskTrace::validate() const {
  PMACX_CHECK(core_count > 0, "trace has zero core count");
  PMACX_CHECK(rank < core_count, "trace rank out of range");
  const BasicBlockRecord* previous = nullptr;
  for (const BasicBlockRecord& block : blocks) {
    const std::string where = "block " + std::to_string(block.id);
    PMACX_CHECK(block.id != 0, "block id 0 is reserved");
    if (previous != nullptr)
      PMACX_CHECK(previous->id < block.id, where + ": ids must be sorted and unique");
    previous = &block;

    for (std::size_t e = 0; e < kBlockElementCount; ++e) {
      const auto element = static_cast<BlockElement>(e);
      const double value = block.features[e];
      PMACX_CHECK(std::isfinite(value),
                  where + ": non-finite " + block_element_name(element));
      PMACX_CHECK(value >= 0.0, where + ": negative " + block_element_name(element));
      if (block_element_is_rate(element))
        PMACX_CHECK(value <= 1.0, where + ": " + block_element_name(element) + " > 1");
    }
    PMACX_CHECK(block.get(BlockElement::HitRateL1) <=
                    block.get(BlockElement::HitRateL2) + 1e-12,
                where + ": cumulative hit rates must satisfy L1 <= L2");
    PMACX_CHECK(block.get(BlockElement::HitRateL2) <=
                    block.get(BlockElement::HitRateL3) + 1e-12,
                where + ": cumulative hit rates must satisfy L2 <= L3");

    const InstructionRecord* previous_instr = nullptr;
    for (const InstructionRecord& instr : block.instructions) {
      const std::string iwhere = where + " instr " + std::to_string(instr.index);
      if (previous_instr != nullptr)
        PMACX_CHECK(previous_instr->index < instr.index,
                    iwhere + ": instruction indices must be sorted and unique");
      previous_instr = &instr;
      for (std::size_t e = 0; e < kInstrElementCount; ++e) {
        const auto element = static_cast<InstrElement>(e);
        const double value = instr.features[e];
        PMACX_CHECK(std::isfinite(value),
                    iwhere + ": non-finite " + instr_element_name(element));
        PMACX_CHECK(value >= 0.0, iwhere + ": negative " + instr_element_name(element));
        if (instr_element_is_rate(element))
          PMACX_CHECK(value <= 1.0, iwhere + ": " + instr_element_name(element) + " > 1");
      }
    }
  }
}

double TaskTrace::total_memory_ops() const {
  double total = 0.0;
  for (const auto& block : blocks) total += block.memory_ops();
  return total;
}

double TaskTrace::total_fp_ops() const {
  double total = 0.0;
  for (const auto& block : blocks) total += block.fp_ops();
  return total;
}

double TaskTrace::total_bytes_moved() const {
  double total = 0.0;
  for (const auto& block : blocks) total += block.bytes_moved();
  return total;
}

std::size_t TaskTrace::memory_bytes() const {
  std::size_t total = sizeof(*this) + app.capacity() + target_system.capacity();
  for (const auto& block : blocks) {
    total += sizeof(block);
    total += block.location.file.capacity() + block.location.function.capacity();
    total += block.instructions.capacity() * sizeof(InstructionRecord);
  }
  return total;
}

std::string TaskTrace::to_text() const {
  std::ostringstream out;
  out.precision(17);  // exact double round-trip
  out << kMagic << '\t' << kVersion << '\n';
  out << "app\t" << app << '\n';
  out << "rank\t" << rank << '\n';
  out << "cores\t" << core_count << '\n';
  out << "target\t" << target_system << '\n';
  out << "extrapolated\t" << (extrapolated ? 1 : 0) << '\n';
  out << "blocks\t" << blocks.size() << '\n';
  for (const auto& block : blocks) {
    out << "block\t" << block.id << '\t' << block.location.file << '\t'
        << block.location.line << '\t' << block.location.function << '\n';
    out << "features";
    for (double v : block.features) out << '\t' << v;
    out << '\n';
    out << "instrs\t" << block.instructions.size() << '\n';
    for (const auto& instr : block.instructions) {
      out << "i\t" << instr.index;
      for (double v : instr.features) out << '\t' << v;
      out << '\n';
    }
  }
  out << "end\n";
  return out.str();
}

namespace {

void parse_text(LineReader& reader, std::size_t text_size, StreamSink& sink) {
  TaskTrace trace;

  auto header = reader.next("magic header");
  PMACX_CHECK(field(header, 0, "magic") == kMagic, "not a pmacx trace file");
  PMACX_CHECK(field(header, 1, "version") == kVersion,
              "unsupported trace version " + field(header, 1, "version"));

  auto expect_kv = [&](const char* key) {
    auto fields = reader.next(key);
    PMACX_CHECK(field(fields, 0, key) == key,
                std::string("expected '") + key + "' at line " +
                    std::to_string(reader.line_number()));
    return fields;
  };

  trace.app = field(expect_kv("app"), 1, "app name");
  trace.rank = static_cast<std::uint32_t>(
      util::parse_u64(field(expect_kv("rank"), 1, "rank"), "rank"));
  trace.core_count = static_cast<std::uint32_t>(
      util::parse_u64(field(expect_kv("cores"), 1, "cores"), "cores"));
  trace.target_system = field(expect_kv("target"), 1, "target");
  trace.extrapolated =
      util::parse_u64(field(expect_kv("extrapolated"), 1, "extrapolated"), "extrapolated") != 0;

  const std::uint64_t block_count =
      util::parse_u64(field(expect_kv("blocks"), 1, "block count"), "blocks");
  sink.on_header(trace, block_count,
                 std::min<std::uint64_t>(block_count, text_size / kMinTextBlockBytes));

  for (std::uint64_t b = 0; b < block_count; ++b) {
    auto block_fields = expect_kv("block");
    BasicBlockRecord block;
    block.id = util::parse_u64(field(block_fields, 1, "block id"), "block id");
    block.location.file = field(block_fields, 2, "file");
    block.location.line = static_cast<std::uint32_t>(
        util::parse_u64(field(block_fields, 3, "line"), "line"));
    block.location.function = field(block_fields, 4, "function");

    auto feature_fields = expect_kv("features");
    PMACX_CHECK(feature_fields.size() == 1 + kBlockElementCount,
                "block feature arity mismatch at line " + std::to_string(reader.line_number()));
    for (std::size_t e = 0; e < kBlockElementCount; ++e)
      block.features[e] = util::parse_double(feature_fields[1 + e], "block feature");

    const std::uint64_t instr_count =
        util::parse_u64(field(expect_kv("instrs"), 1, "instr count"), "instrs");
    block.instructions.reserve(
        std::min<std::uint64_t>(instr_count, text_size / kMinTextInstrBytes));
    for (std::uint64_t k = 0; k < instr_count; ++k) {
      auto instr_fields = expect_kv("i");
      PMACX_CHECK(instr_fields.size() == 2 + kInstrElementCount,
                  "instr feature arity mismatch at line " + std::to_string(reader.line_number()));
      InstructionRecord instr;
      instr.index = static_cast<std::uint32_t>(
          util::parse_u64(instr_fields[1], "instr index"));
      for (std::size_t e = 0; e < kInstrElementCount; ++e)
        instr.features[e] = util::parse_double(instr_fields[2 + e], "instr feature");
      block.instructions.push_back(std::move(instr));
    }
    sink.on_block(std::move(block));
  }

  auto end_fields = reader.next("end marker");
  PMACX_CHECK(field(end_fields, 0, "end") == "end", "missing end marker");
  sink.on_end();
}

}  // namespace

namespace detail {

void parse_text_stream(const std::function<bool(std::string&)>& next_line,
                       std::size_t size_hint, StreamSink& sink) {
  LineReader reader(next_line);
  try {
    parse_text(reader, size_hint, sink);
  } catch (const util::ParseError&) {
    throw;
  } catch (const util::Error& e) {
    // Re-type plain check failures as ParseError so callers get the uniform
    // taxonomy (and the line the parser had reached) for any corrupt input.
    throw util::ParseError("", util::ParseError::kNoOffset,
                           "line " + std::to_string(reader.line_number()), e.what());
  }
}

}  // namespace detail

TaskTrace TaskTrace::from_text(const std::string& text) {
  std::istringstream stream(text);
  CollectingSink sink;
  detail::parse_text_stream(
      [&stream](std::string& out) { return static_cast<bool>(std::getline(stream, out)); },
      text.size(), sink);
  return sink.take();
}

void TaskTrace::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  PMACX_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << to_text();
  PMACX_CHECK(out.good(), "write to '" + path + "' failed");
}

// TaskTrace::load is defined in binary_io.cpp: it shares the mmap-or-read
// file helper (and its trace.mmap_* counters) with load_binary/load_salvage.

}  // namespace pmacx::trace
