#include "trace/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/mmap_file.hpp"
#include "util/parse_error.hpp"

namespace pmacx::trace {
namespace {

// The format assumes a little-endian host (x86-64/aarch64); a big-endian
// port would need byte swaps here.

// v002 section tags.
constexpr std::uint32_t kSectionHeader = 'H';
constexpr std::uint32_t kSectionBlock = 'B';
constexpr std::uint32_t kSectionEnd = 'E';

// Per-section overhead: tag (u32) + payload size (u64) + CRC32 (u32).
constexpr std::size_t kSectionFrameBytes = 4 + 8 + 4;

// Smallest possible encodings, used to bounds-check declared counts before
// reserving: a corrupted count must be caught here, not in the allocator.
constexpr std::size_t kMinInstrBytes = 4 + sizeof(double) * kInstrElementCount;
constexpr std::size_t kMinBlockBytes =
    8 + 4 + 4 + 4 + sizeof(double) * kBlockElementCount + 8;

class Writer {
 public:
  void raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  /// Appends a framed v002 section: tag, size, CRC32, payload.
  void section(std::uint32_t tag, const std::string& payload) {
    u32(tag);
    u64(payload.size());
    u32(util::crc32(payload));
    raw(payload.data(), payload.size());
  }
  std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounded reader over a byte range.  Every failure throws ParseError with
/// the *absolute* byte offset (sub-readers over section payloads carry
/// their base offset) and the name of the section being read.
class Reader {
 public:
  Reader(const char* data, std::size_t size, std::size_t base_offset,
         const char* section)
      : data_(data), size_(size), base_(base_offset), section_(section) {}

  explicit Reader(std::string_view bytes)
      : Reader(bytes.data(), bytes.size(), 0, "file") {}

  void set_section(const char* section) { section_ = section; }

  [[noreturn]] void fail(const std::string& message) const {
    throw util::ParseError("", base_ + offset_, section_, message);
  }

  void need(std::size_t size, const char* what) const {
    if (size_ - offset_ < size)
      fail(std::string("truncated reading ") + what + " (need " +
           std::to_string(size) + " bytes, " + std::to_string(size_ - offset_) +
           " remain)");
  }

  void raw(void* out, std::size_t size, const char* what) {
    need(size, what);
    std::memcpy(out, data_ + offset_, size);
    offset_ += size;
  }
  std::uint32_t u32(const char* what) {
    std::uint32_t v;
    raw(&v, sizeof v, what);
    return v;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t v;
    raw(&v, sizeof v, what);
    return v;
  }
  double f64(const char* what) {
    double v;
    raw(&v, sizeof v, what);
    return v;
  }
  std::string str(const char* what) {
    const std::uint32_t size = u32(what);
    need(size, what);
    std::string s(data_ + offset_, size);
    offset_ += size;
    return s;
  }

  /// A sub-reader bounded to the next `size` bytes (a section payload);
  /// advances this reader past them.
  Reader sub(std::size_t size, const char* section) {
    need(size, section);
    Reader r(data_ + offset_, size, base_ + offset_, section);
    offset_ += size;
    return r;
  }

  const char* cursor() const { return data_ + offset_; }
  std::size_t remaining() const { return size_ - offset_; }
  std::size_t absolute_offset() const { return base_ + offset_; }
  bool exhausted() const { return offset_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t base_;
  const char* section_;
  std::size_t offset_ = 0;
};

void write_block(Writer& w, const BasicBlockRecord& block) {
  w.u64(block.id);
  w.str(block.location.file);
  w.u32(block.location.line);
  w.str(block.location.function);
  for (double v : block.features) w.f64(v);
  w.u64(block.instructions.size());
  for (const auto& instr : block.instructions) {
    w.u32(instr.index);
    for (double v : instr.features) w.f64(v);
  }
}

BasicBlockRecord read_block(Reader& r) {
  BasicBlockRecord block;
  block.id = r.u64("block id");
  block.location.file = r.str("block source file");
  block.location.line = r.u32("block line");
  block.location.function = r.str("block function");
  for (double& v : block.features) v = r.f64("block feature");
  const std::uint64_t instr_count = r.u64("instruction count");
  if (instr_count > r.remaining() / kMinInstrBytes)
    r.fail("instruction count " + std::to_string(instr_count) +
           " exceeds remaining input (" + std::to_string(r.remaining()) + " bytes)");
  block.instructions.reserve(instr_count);
  for (std::uint64_t k = 0; k < instr_count; ++k) {
    InstructionRecord instr;
    instr.index = r.u32("instruction index");
    for (double& v : instr.features) v = r.f64("instruction feature");
    block.instructions.push_back(std::move(instr));
  }
  return block;
}

void write_task_header(Writer& w, const TaskTrace& task) {
  w.str(task.app);
  w.u32(task.rank);
  w.u32(task.core_count);
  w.str(task.target_system);
  w.u32(task.extrapolated ? 1 : 0);
  w.u64(task.blocks.size());
}

std::uint64_t read_task_header(Reader& r, TaskTrace& task) {
  task.app = r.str("app name");
  task.rank = r.u32("rank");
  task.core_count = r.u32("core count");
  task.target_system = r.str("target system");
  task.extrapolated = r.u32("extrapolated flag") != 0;
  return r.u64("block count");
}

/// Reads one v002 section frame, validates the declared size against the
/// remaining input and the payload against its CRC, and returns a bounded
/// payload reader.
Reader read_section(Reader& r, std::uint32_t expected_tag, const char* section) {
  r.set_section(section);
  const std::uint32_t tag = r.u32("section tag");
  if (tag != expected_tag)
    r.fail("unexpected section tag " + std::to_string(tag) + " (expected " +
           std::to_string(expected_tag) + ")");
  const std::uint64_t size = r.u64("section size");
  const std::uint32_t declared_crc = r.u32("section checksum");
  // Checked only after the CRC field is consumed: remaining() must cover the
  // payload alone, or crc32 below would read past the end of the input.
  if (size > r.remaining())
    r.fail("declared section size " + std::to_string(size) +
           " exceeds remaining input (" + std::to_string(r.remaining()) + " bytes)");
  const std::uint32_t actual_crc = util::crc32(r.cursor(), size);
  if (actual_crc != declared_crc)
    r.fail("checksum mismatch (stored " + std::to_string(declared_crc) +
           ", computed " + std::to_string(actual_crc) + ")");
  return r.sub(static_cast<std::size_t>(size), section);
}

/// Parses the v001 layout (everything after the magic is one unframed
/// record stream).  When `salvage` is set, block-level errors stop the
/// parse and keep the blocks read so far instead of propagating.
TaskTrace parse_v001(Reader& r, SalvageReport* salvage) {
  TaskTrace task;
  r.set_section("v001 header");
  const std::uint64_t block_count = read_task_header(r, task);
  const std::uint64_t fit_count = r.remaining() / kMinBlockBytes;
  if (block_count > fit_count && salvage == nullptr)
    r.fail("block count " + std::to_string(block_count) +
           " exceeds remaining input (" + std::to_string(r.remaining()) + " bytes)");
  if (salvage != nullptr) salvage->blocks_expected = block_count;
  task.blocks.reserve(std::min(block_count, fit_count));
  for (std::uint64_t b = 0; b < block_count; ++b) {
    r.set_section("v001 block record");
    if (salvage == nullptr) {
      task.blocks.push_back(read_block(r));
      continue;
    }
    try {
      task.blocks.push_back(read_block(r));
      ++salvage->blocks_recovered;
    } catch (const util::ParseError& e) {
      salvage->used = true;
      salvage->error = e.what();
      task.sort_blocks();
      return task;
    }
  }
  r.set_section("v001 trailer");
  if (!r.exhausted()) r.fail("trailing bytes after binary trace");
  task.sort_blocks();
  return task;
}

/// Parses the sectioned v002 layout.  The header section must be intact
/// (there is nothing to salvage without it); with `salvage` set, damage in
/// any later section keeps all blocks recovered up to that point.
TaskTrace parse_v002(Reader& r, SalvageReport* salvage) {
  TaskTrace task;
  Reader header = read_section(r, kSectionHeader, "header section");
  const std::uint64_t block_count = read_task_header(header, task);
  if (!header.exhausted()) header.fail("trailing bytes in header section");
  // The declared count bounds reserve(); a count the remaining bytes cannot
  // possibly hold is fatal in strict mode, while salvage mode clamps the
  // pre-allocation and recovers whatever blocks actually follow.
  const std::uint64_t fit_count = r.remaining() / (kSectionFrameBytes + kMinBlockBytes);
  if (block_count > fit_count && salvage == nullptr)
    r.fail("block count " + std::to_string(block_count) +
           " exceeds remaining input (" + std::to_string(r.remaining()) + " bytes)");
  if (salvage != nullptr) salvage->blocks_expected = block_count;
  task.blocks.reserve(std::min(block_count, fit_count));

  auto read_body = [&](auto on_error) {
    for (std::uint64_t b = 0; b < block_count; ++b) {
      try {
        Reader payload = read_section(r, kSectionBlock, "block section");
        task.blocks.push_back(read_block(payload));
        if (!payload.exhausted()) payload.fail("trailing bytes in block section");
      } catch (const util::ParseError& e) {
        on_error(e);
        return;
      }
      if (salvage != nullptr) ++salvage->blocks_recovered;
    }
    try {
      Reader end = read_section(r, kSectionEnd, "end marker");
      if (!end.exhausted()) end.fail("non-empty end marker");
      r.set_section("v002 trailer");
      if (!r.exhausted()) r.fail("trailing bytes after binary trace");
    } catch (const util::ParseError& e) {
      on_error(e);
    }
  };

  if (salvage == nullptr) {
    read_body([](const util::ParseError& e) -> void { throw e; });
  } else {
    read_body([&](const util::ParseError& e) {
      salvage->used = true;
      salvage->error = e.what();
    });
  }
  task.sort_blocks();
  return task;
}

bool has_magic(std::string_view bytes, const char (&magic)[8]) {
  return bytes.size() >= sizeof magic &&
         std::memcmp(bytes.data(), magic, sizeof magic) == 0;
}

TaskTrace parse_binary(std::string_view bytes, SalvageReport* salvage) {
  if (!looks_binary(bytes))
    throw util::ParseError("", 0, "magic", "not a pmacx binary trace");
  Reader r(bytes);
  char magic[sizeof(kBinaryMagicV002)];
  r.set_section("magic");
  r.raw(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kBinaryMagicV001, sizeof magic) == 0)
    return parse_v001(r, salvage);
  return parse_v002(r, salvage);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PMACX_CHECK(in.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The whole content of one trace file: a view into either a memory map or
/// a fallback read buffer, whichever slurp() ended up with.
struct FileBytes {
  util::MappedFile map;
  std::string buffer;
  std::string_view view;
};

// Registered up front so every metrics snapshot carries the mmap counters —
// a run that loads no traces still reports them as zero.
const bool kMmapCountersRegistered = [] {
  util::metrics::Registry::global().counter("trace.mmap_bytes");
  util::metrics::Registry::global().counter("trace.mmap_fallbacks");
  return true;
}();

/// Maps `path` read-only when possible (zero-copy: the parser walks kernel
/// pages directly) and falls back to a buffered read otherwise.  Both
/// outcomes are counted; a missing file surfaces as the fallback's error.
FileBytes slurp(const std::string& path) {
  FileBytes bytes;
  util::metrics::Registry& metrics = util::metrics::Registry::global();
  if (bytes.map.open(path)) {
    metrics.counter("trace.mmap_bytes").add(bytes.map.size());
    bytes.view = bytes.map.view();
  } else {
    metrics.counter("trace.mmap_fallbacks").add(1);
    bytes.buffer = read_file(path);
    bytes.view = bytes.buffer;
  }
  return bytes;
}

}  // namespace

bool looks_binary(std::string_view bytes) {
  return has_magic(bytes, kBinaryMagicV001) || has_magic(bytes, kBinaryMagicV002);
}

std::string to_binary(const TaskTrace& task) {
  Writer w;
  w.raw(kBinaryMagicV002, sizeof(kBinaryMagicV002));
  Writer header;
  write_task_header(header, task);
  w.section(kSectionHeader, header.take());
  for (const auto& block : task.blocks) {
    Writer payload;
    write_block(payload, block);
    w.section(kSectionBlock, payload.take());
  }
  w.section(kSectionEnd, std::string());
  return w.take();
}

std::string to_binary_v001(const TaskTrace& task) {
  Writer w;
  w.raw(kBinaryMagicV001, sizeof(kBinaryMagicV001));
  write_task_header(w, task);
  for (const auto& block : task.blocks) write_block(w, block);
  return w.take();
}

TaskTrace from_binary(std::string_view bytes) {
  return parse_binary(bytes, nullptr);
}

TaskTrace salvage_binary(std::string_view bytes, SalvageReport& report) {
  report = SalvageReport{};
  return parse_binary(bytes, &report);
}

void save_binary(const TaskTrace& task, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  PMACX_CHECK(out.good(), "cannot open '" + path + "' for writing");
  const std::string bytes = to_binary(task);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  PMACX_CHECK(out.good(), "write to '" + path + "' failed");
}

TaskTrace load_binary(const std::string& path) {
  const FileBytes bytes = slurp(path);
  return util::with_parse_context(path, [&] { return from_binary(bytes.view); });
}

TaskTrace load_salvage(const std::string& path, SalvageReport& report) {
  report = SalvageReport{};
  const FileBytes bytes = slurp(path);
  return util::with_parse_context(path, [&] {
    if (looks_binary(bytes.view)) return salvage_binary(bytes.view, report);
    // Text traces go through the line parser, which wants owned storage.
    return TaskTrace::from_text(std::string(bytes.view));
  });
}

// Defined here rather than in task_trace.cpp so the strict auto-detecting
// loader shares slurp()'s mmap path and counters with load_binary above.
TaskTrace TaskTrace::load(const std::string& path) {
  const FileBytes bytes = slurp(path);
  // Auto-detect: binary traces start with the binary magic, text ones with
  // the "pmacx-trace" header.  Parse errors gain the path here — the
  // in-memory parsers cannot know it.
  return util::with_parse_context(path, [&] {
    if (looks_binary(bytes.view)) return from_binary(bytes.view);
    return from_text(std::string(bytes.view));
  });
}

}  // namespace pmacx::trace
