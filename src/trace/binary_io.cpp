#include "trace/binary_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace pmacx::trace {
namespace {

// The format assumes a little-endian host (x86-64/aarch64); a big-endian
// port would need byte swaps here.

class Writer {
 public:
  void raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  void raw(void* out, std::size_t size) {
    PMACX_CHECK(offset_ + size <= bytes_.size(), "binary trace truncated");
    std::memcpy(out, bytes_.data() + offset_, size);
    offset_ += size;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t size = u32();
    PMACX_CHECK(offset_ + size <= bytes_.size(), "binary trace truncated in string");
    std::string s = bytes_.substr(offset_, size);
    offset_ += size;
    return s;
  }
  bool exhausted() const { return offset_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

bool looks_binary(const std::string& bytes) {
  return bytes.size() >= sizeof(kBinaryMagic) &&
         std::memcmp(bytes.data(), kBinaryMagic, sizeof(kBinaryMagic)) == 0;
}

std::string to_binary(const TaskTrace& task) {
  Writer w;
  w.raw(kBinaryMagic, sizeof(kBinaryMagic));
  w.str(task.app);
  w.u32(task.rank);
  w.u32(task.core_count);
  w.str(task.target_system);
  w.u32(task.extrapolated ? 1 : 0);
  w.u64(task.blocks.size());
  for (const auto& block : task.blocks) {
    w.u64(block.id);
    w.str(block.location.file);
    w.u32(block.location.line);
    w.str(block.location.function);
    for (double v : block.features) w.f64(v);
    w.u64(block.instructions.size());
    for (const auto& instr : block.instructions) {
      w.u32(instr.index);
      for (double v : instr.features) w.f64(v);
    }
  }
  return w.take();
}

TaskTrace from_binary(const std::string& bytes) {
  PMACX_CHECK(looks_binary(bytes), "not a pmacx binary trace");
  Reader r(bytes);
  char magic[sizeof(kBinaryMagic)];
  r.raw(magic, sizeof magic);

  TaskTrace task;
  task.app = r.str();
  task.rank = r.u32();
  task.core_count = r.u32();
  task.target_system = r.str();
  task.extrapolated = r.u32() != 0;
  const std::uint64_t block_count = r.u64();
  task.blocks.reserve(block_count);
  for (std::uint64_t b = 0; b < block_count; ++b) {
    BasicBlockRecord block;
    block.id = r.u64();
    block.location.file = r.str();
    block.location.line = r.u32();
    block.location.function = r.str();
    for (double& v : block.features) v = r.f64();
    const std::uint64_t instr_count = r.u64();
    block.instructions.reserve(instr_count);
    for (std::uint64_t k = 0; k < instr_count; ++k) {
      InstructionRecord instr;
      instr.index = r.u32();
      for (double& v : instr.features) v = r.f64();
      block.instructions.push_back(std::move(instr));
    }
    task.blocks.push_back(std::move(block));
  }
  PMACX_CHECK(r.exhausted(), "trailing bytes after binary trace");
  task.sort_blocks();
  return task;
}

void save_binary(const TaskTrace& task, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  PMACX_CHECK(out.good(), "cannot open '" + path + "' for writing");
  const std::string bytes = to_binary(task);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  PMACX_CHECK(out.good(), "write to '" + path + "' failed");
}

TaskTrace load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PMACX_CHECK(in.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_binary(buffer.str());
}

}  // namespace pmacx::trace
