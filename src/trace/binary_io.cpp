#include "trace/binary_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>

#include "trace/binary_detail.hpp"
#include "trace/stream_reader.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/mmap_file.hpp"
#include "util/parse_error.hpp"

namespace pmacx::trace {
namespace {

using detail::Reader;
using detail::Writer;

/// Parses the v001 layout leniently (everything after the magic is one
/// unframed record stream): block-level errors stop the parse and keep the
/// blocks read so far.  Strict v001 parsing lives in the streaming reader.
TaskTrace salvage_v001(Reader& r, SalvageReport& salvage) {
  TaskTrace task;
  r.set_section("v001 header");
  const std::uint64_t block_count = detail::read_task_header(r, task);
  const std::uint64_t fit_count = r.remaining() / detail::kMinBlockBytes;
  salvage.blocks_expected = block_count;
  task.blocks.reserve(std::min(block_count, fit_count));
  for (std::uint64_t b = 0; b < block_count; ++b) {
    r.set_section("v001 block record");
    try {
      task.blocks.push_back(detail::read_block(r));
      ++salvage.blocks_recovered;
    } catch (const util::ParseError& e) {
      salvage.used = true;
      salvage.error = e.what();
      task.sort_blocks();
      return task;
    }
  }
  // Trailing garbage after a fully recovered v001 stream throws even in
  // salvage mode (matching the original parser): with no framing there is
  // no way to tell extra bytes from a corrupted record boundary.
  r.set_section("v001 trailer");
  if (!r.exhausted()) r.fail("trailing bytes after binary trace");
  task.sort_blocks();
  return task;
}

/// Parses the sectioned v002 layout leniently.  The header section must be
/// intact (there is nothing to salvage without it); damage in any later
/// section keeps all blocks recovered up to that point.
TaskTrace salvage_v002(Reader& r, SalvageReport& salvage) {
  TaskTrace task;
  Reader header = detail::read_section(r, detail::kSectionHeader, "header section");
  const std::uint64_t block_count = detail::read_task_header(header, task);
  if (!header.exhausted()) header.fail("trailing bytes in header section");
  // The declared count bounds reserve(); salvage mode clamps the
  // pre-allocation and recovers whatever blocks actually follow.
  const std::uint64_t fit_count =
      r.remaining() / (detail::kSectionFrameBytes + detail::kMinBlockBytes);
  salvage.blocks_expected = block_count;
  task.blocks.reserve(std::min(block_count, fit_count));

  try {
    for (std::uint64_t b = 0; b < block_count; ++b) {
      Reader payload = detail::read_section(r, detail::kSectionBlock, "block section");
      task.blocks.push_back(detail::read_block(payload));
      if (!payload.exhausted()) payload.fail("trailing bytes in block section");
      ++salvage.blocks_recovered;
    }
    Reader end = detail::read_section(r, detail::kSectionEnd, "end marker");
    if (!end.exhausted()) end.fail("non-empty end marker");
    r.set_section("v002 trailer");
    if (!r.exhausted()) r.fail("trailing bytes after binary trace");
  } catch (const util::ParseError& e) {
    salvage.used = true;
    salvage.error = e.what();
  }
  task.sort_blocks();
  return task;
}

bool has_magic(std::string_view bytes, const char (&magic)[8]) {
  return bytes.size() >= sizeof magic &&
         std::memcmp(bytes.data(), magic, sizeof magic) == 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PMACX_CHECK(in.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The whole content of one trace file: a view into either a memory map or
/// a fallback read buffer, whichever slurp() ended up with.  Only the
/// salvage loader still needs the whole file at once (lenient parsing
/// backtracks over damage); strict loads stream.
struct FileBytes {
  util::MappedFile map;
  std::string buffer;
  std::string_view view;
};

// Registered up front so every metrics snapshot carries the mmap counters —
// a run that loads no traces still reports them as zero.
const bool kMmapCountersRegistered = [] {
  util::metrics::Registry::global().counter("trace.mmap_bytes");
  util::metrics::Registry::global().counter("trace.mmap_fallbacks");
  return true;
}();

/// Maps `path` read-only when possible (zero-copy: the parser walks kernel
/// pages directly) and falls back to a buffered read otherwise.  Both
/// outcomes are counted; a missing file surfaces as the fallback's error.
FileBytes slurp(const std::string& path) {
  FileBytes bytes;
  util::metrics::Registry& metrics = util::metrics::Registry::global();
  if (bytes.map.open(path)) {
    metrics.counter("trace.mmap_bytes").add(bytes.map.size());
    bytes.view = bytes.map.view();
  } else {
    metrics.counter("trace.mmap_fallbacks").add(1);
    bytes.buffer = read_file(path);
    bytes.view = bytes.buffer;
  }
  return bytes;
}

}  // namespace

bool looks_binary(std::string_view bytes) {
  return has_magic(bytes, kBinaryMagicV001) || has_magic(bytes, kBinaryMagicV002);
}

std::string to_binary(const TaskTrace& task) {
  Writer w;
  w.raw(kBinaryMagicV002, sizeof(kBinaryMagicV002));
  Writer header;
  detail::write_task_header(header, task, task.blocks.size());
  w.section(detail::kSectionHeader, header.take());
  for (const auto& block : task.blocks) {
    Writer payload;
    detail::write_block(payload, block);
    w.section(detail::kSectionBlock, payload.take());
  }
  w.section(detail::kSectionEnd, std::string());
  return w.take();
}

std::string to_binary_v001(const TaskTrace& task) {
  Writer w;
  w.raw(kBinaryMagicV001, sizeof(kBinaryMagicV001));
  detail::write_task_header(w, task, task.blocks.size());
  for (const auto& block : task.blocks) detail::write_block(w, block);
  return w.take();
}

TaskTrace from_binary(std::string_view bytes) {
  // Strict parsing is the streaming parser over a borrowed view: one
  // grammar, whether the bytes arrive whole or chunked.
  const auto source = make_view_source(bytes);
  CollectingSink sink;
  stream_parse(*source, sink, StreamFormat::Binary);
  return sink.take();
}

TaskTrace salvage_binary(std::string_view bytes, SalvageReport& report) {
  report = SalvageReport{};
  if (!looks_binary(bytes))
    throw util::ParseError("", 0, "magic", "not a pmacx binary trace");
  Reader r(bytes);
  char magic[sizeof(kBinaryMagicV002)];
  r.set_section("magic");
  r.raw(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kBinaryMagicV001, sizeof magic) == 0)
    return salvage_v001(r, report);
  return salvage_v002(r, report);
}

void save_binary(const TaskTrace& task, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  PMACX_CHECK(out.good(), "cannot open '" + path + "' for writing");
  const std::string bytes = to_binary(task);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  PMACX_CHECK(out.good(), "write to '" + path + "' failed");
}

TaskTrace load_binary(const std::string& path) {
  const auto source = open_stream(path);
  return util::with_parse_context(path, [&] {
    CollectingSink sink;
    stream_parse(*source, sink, StreamFormat::Binary);
    return sink.take();
  });
}

TaskTrace load_salvage(const std::string& path, SalvageReport& report) {
  report = SalvageReport{};
  const FileBytes bytes = slurp(path);
  return util::with_parse_context(path, [&] {
    if (looks_binary(bytes.view)) return salvage_binary(bytes.view, report);
    // Text traces go through the line parser, which wants owned storage.
    return TaskTrace::from_text(std::string(bytes.view));
  });
}

// Defined here rather than in task_trace.cpp so the strict auto-detecting
// loader shares the stream providers (and the trace.mmap_* counters) with
// load_binary above.
TaskTrace TaskTrace::load(const std::string& path) {
  const auto source = open_stream(path);
  // Auto-detect: binary traces start with the binary magic, text ones with
  // the "pmacx-trace" header.  Parse errors gain the path here — the
  // in-memory parsers cannot know it.
  return util::with_parse_context(path, [&] {
    CollectingSink sink;
    stream_parse(*source, sink, StreamFormat::Auto);
    return sink.take();
  });
}

}  // namespace pmacx::trace
