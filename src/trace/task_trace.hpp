// The per-task trace file.
//
// "An application signature consists of a series of trace files, one file
// for each MPI task" (Section IV).  TaskTrace is the in-memory form of one
// such file: all basic-block records executed by one MPI task at one core
// count, simulated against one target system.  The text serialization is a
// versioned, tab-separated format with exact round-trip semantics (tested in
// tests/trace_test.cpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "trace/block.hpp"

namespace pmacx::trace {

/// One MPI task's trace at one core count.
struct TaskTrace {
  std::string app;            ///< application name ("specfem3d")
  std::uint32_t rank = 0;     ///< MPI rank this trace belongs to
  std::uint32_t core_count = 0;  ///< total cores of the run
  std::string target_system;  ///< hierarchy the cache simulator mimicked
  /// True when this trace was synthesized by the extrapolator rather than
  /// collected; carried through so reports can label their provenance.
  bool extrapolated = false;
  std::vector<BasicBlockRecord> blocks;  ///< sorted by ascending id

  /// Looks a block up by id (blocks must be sorted; enforced by sort_blocks).
  const BasicBlockRecord* find_block(std::uint64_t id) const;

  /// Sorts blocks by id; serialization and alignment require sorted order.
  void sort_blocks();

  /// Structural sanity check: positive core count, rank < cores, sorted
  /// unique block ids, finite features, hit rates in [0,1] and cumulative
  /// (L1 ≤ L2 ≤ L3), non-negative counts.  Throws util::Error naming the
  /// offending block/element.  Tools run this on every loaded file so a
  /// corrupted or hand-edited trace fails loudly, not deep inside a fit.
  void validate() const;

  /// Task-wide totals across blocks.
  double total_memory_ops() const;
  double total_fp_ops() const;
  double total_bytes_moved() const;

  /// Approximate resident size (records, strings, instruction vectors), for
  /// byte-bounded cache accounting in the serving layer.
  std::size_t memory_bytes() const;

  /// Serializes to the versioned text format.
  std::string to_text() const;
  /// Parses the text format; throws util::Error with a line number on any
  /// malformed input.
  static TaskTrace from_text(const std::string& text);

  /// Writes the text format; see trace/binary_io.hpp for the compact
  /// binary alternative.
  void save(const std::string& path) const;
  /// Loads either format (auto-detected by magic).
  static TaskTrace load(const std::string& path);

  bool operator==(const TaskTrace&) const = default;
};

}  // namespace pmacx::trace
