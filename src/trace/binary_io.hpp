// Compact binary trace serialization.
//
// The text format (task_trace.hpp) is the interchange format — greppable,
// diffable, stable.  Production traces with thousands of blocks are better
// stored in this binary form: ~4× smaller and parsed without number
// formatting.  TaskTrace::load() auto-detects the format by magic.
//
// Two on-disk versions exist:
//
//   v001 ("PMCXB001") — the original layout: an 8-byte magic, then
//   length-prefixed strings and raw little-endian integers/doubles in the
//   exact field order of the text format.  Still readable; no longer
//   written.
//
//   v002 ("PMCXB002") — the hardened layout written by to_binary().  After
//   the magic the file is a sequence of *sections*, each carrying a tag, a
//   declared payload size, and a CRC32 of the payload: one header section
//   (task metadata + block count), one section per basic block, and an end
//   marker.  Declared sizes let the reader bounds-check before allocating
//   (a corrupted count can no longer trigger a multi-GB reserve) and the
//   per-section checksums catch bit-rot and torn writes at load time.  The
//   sectioned layout also enables *salvage*: every intact block before the
//   first bad checksum or truncation point can be recovered from a damaged
//   file (salvage_binary / load_salvage).
//
// All parse failures throw util::ParseError carrying the byte offset, the
// section being read, and — for the file-level loaders — the path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "trace/task_trace.hpp"

namespace pmacx::trace {

/// File magics ("PMCXB" + format version).  v002 is written; both load.
inline constexpr char kBinaryMagicV001[8] = {'P', 'M', 'C', 'X', 'B', '0', '0', '1'};
inline constexpr char kBinaryMagicV002[8] = {'P', 'M', 'C', 'X', 'B', '0', '0', '2'};

/// What salvage_binary recovered from a damaged file.
struct SalvageReport {
  /// True when the clean parse failed and salvage kicked in; false means
  /// the file parsed completely (nothing was lost).
  bool used = false;
  /// Block count the file header declared.
  std::uint64_t blocks_expected = 0;
  /// Intact blocks recovered before the first corruption.
  std::size_t blocks_recovered = 0;
  /// The parse error that stopped the clean read (empty when !used).
  std::string error;

  /// Declared-minus-recovered (0 when nothing was lost).
  std::uint64_t blocks_lost() const {
    return blocks_expected > blocks_recovered ? blocks_expected - blocks_recovered : 0;
  }
};

/// Serializes to the current (v002) binary format.
std::string to_binary(const TaskTrace& task);

/// Serializes to the legacy v001 layout.  Kept so compatibility and
/// fault-injection tests can fabricate v001 files; new code writes v002.
std::string to_binary_v001(const TaskTrace& task);

/// Parses either binary version strictly; throws util::ParseError on any
/// malformed, truncated, or checksum-failing input.  The view is borrowed
/// only for the duration of the call (parsing copies what it keeps), which
/// lets the file loaders parse straight out of a memory-mapped file.
TaskTrace from_binary(std::string_view bytes);

/// Lenient parse: recovers every intact block before the first corruption
/// and reports what was lost.  Throws only when not even the header is
/// readable (nothing to salvage).
TaskTrace salvage_binary(std::string_view bytes, SalvageReport& report);

/// True when `bytes` starts with either binary magic.
bool looks_binary(std::string_view bytes);

/// File helpers.  Errors carry the path.  The loaders memory-map the file
/// when possible (zero-copy; counted in trace.mmap_bytes) and fall back to
/// buffered reads otherwise (counted in trace.mmap_fallbacks).
void save_binary(const TaskTrace& task, const std::string& path);
TaskTrace load_binary(const std::string& path);

/// Loads a trace file of either format (auto-detected), salvaging damaged
/// binary files instead of rejecting them.  Text files parse strictly
/// (line-oriented text has no checksums to salvage by).
TaskTrace load_salvage(const std::string& path, SalvageReport& report);

}  // namespace pmacx::trace
