// Compact binary trace serialization.
//
// The text format (task_trace.hpp) is the interchange format — greppable,
// diffable, stable.  Production traces with thousands of blocks are better
// stored in this binary form: ~4× smaller and parsed without number
// formatting.  Layout: an 8-byte magic+version, then length-prefixed strings
// and raw little-endian integers/doubles in the exact field order of the
// text format.  TaskTrace::load() auto-detects the format by magic.
#pragma once

#include <string>

#include "trace/task_trace.hpp"

namespace pmacx::trace {

/// The binary file magic ("PMCXB" + format version).
inline constexpr char kBinaryMagic[8] = {'P', 'M', 'C', 'X', 'B', '0', '0', '1'};

/// Serializes to the binary format.
std::string to_binary(const TaskTrace& task);

/// Parses the binary format; throws util::Error on malformed or truncated
/// input.
TaskTrace from_binary(const std::string& bytes);

/// True when `bytes` starts with the binary magic.
bool looks_binary(const std::string& bytes);

/// File helpers.
void save_binary(const TaskTrace& task, const std::string& path);
TaskTrace load_binary(const std::string& path);

}  // namespace pmacx::trace
