// Chunked, bounded-memory trace readers and writers (trace::StreamReader).
//
// The whole-file loaders materialize a trace's bytes before parsing; fine
// for fitting a handful of inputs, wrong for a long-lived server accepting
// multi-GiB uploads.  This interface splits "where the bytes come from"
// (ByteSource: a borrowed view, a memory map, or a buffered file window
// with a fixed budget) from "what happens to the records" (StreamSink:
// collect them into a TaskTrace, validate and discard them, count them).
//
// The streaming parser reads one section frame at a time, so peak reader
// memory is the source's buffer budget plus one section payload — bounded
// regardless of trace size.  Per-section CRC checks and the ParseError
// taxonomy are preserved at chunk granularity: every corruption a
// whole-file parse rejects, a streamed parse rejects at the same offset,
// and a sink never observes a record from a section that failed its CRC.
//
// The mmap fast path from the whole-file loaders is one provider behind
// this interface (open_stream prefers a mapped view and counts the same
// trace.mmap_* metrics); the buffered provider bounds its window to the
// budget and reports its high-water mark via trace.stream.peak_buffer_bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "trace/task_trace.hpp"

namespace pmacx::trace {

/// Default buffer budget for buffered streaming reads (64 MiB — matches the
/// RPC layer's maximum payload, so any record a peer can send fits).
inline constexpr std::size_t kDefaultStreamBudget = std::size_t{64} << 20;

/// Pull-based byte provider with bounded lookahead.  peek() exposes at
/// least min(n, remaining-in-source) bytes without consuming them; the view
/// stays valid until the next peek() or consume().  A peek that cannot be
/// satisfied within the provider's buffer budget throws ParseError — the
/// budget is a hard bound, not a hint.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// A view of at least min(n, remaining) bytes at the cursor (possibly
  /// more).  Throws ParseError when n exceeds the buffer budget.
  virtual std::string_view peek(std::size_t n) = 0;
  /// Advances the cursor past `n` previously peeked bytes.
  virtual void consume(std::size_t n) = 0;
  /// Bytes consumed so far (absolute offset, used in ParseError locations).
  virtual std::uint64_t offset() const = 0;
  /// Total size of the underlying input in bytes.
  virtual std::uint64_t size() const = 0;
  /// High-water mark of provider-owned buffer memory (0 for borrowed views).
  virtual std::size_t peak_buffer_bytes() const { return 0; }
};

/// Source over a borrowed contiguous view (caller keeps the bytes alive).
std::unique_ptr<ByteSource> make_view_source(std::string_view bytes);

/// Opens `path` for streaming.  Prefers the zero-copy memory-mapped
/// provider (counted in trace.mmap_bytes, like the whole-file loaders) and
/// falls back to the budget-bounded buffered provider (counted in
/// trace.mmap_fallbacks).  `force_buffered` selects the buffered provider
/// unconditionally — the choice for RSS-capped ingestion, where mapped file
/// pages would count against the resident budget as they are touched.
std::unique_ptr<ByteSource> open_stream(const std::string& path,
                                        std::size_t budget = kDefaultStreamBudget,
                                        bool force_buffered = false);

/// Receives parse events in file order.  Blocks arrive in *file* order, not
/// id order; collecting sinks sort, validating sinks track ids themselves.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  /// Once, after the header parses: `header` carries all task metadata and
  /// no blocks.  `block_count` is the declared count; `reserve_hint` is that
  /// count clamped to what the remaining input could possibly encode (safe
  /// to reserve() even for corrupt declared counts).
  virtual void on_header(const TaskTrace& header, std::uint64_t block_count,
                         std::uint64_t reserve_hint) {
    (void)header, (void)block_count, (void)reserve_hint;
  }
  virtual void on_block(BasicBlockRecord&& block) { (void)block; }
  /// Once, after the end marker and trailer checks pass.
  virtual void on_end() {}
};

/// Sink that rebuilds the whole TaskTrace (the streaming equivalent of the
/// whole-file loaders; take() sorts blocks by id exactly as they do).
class CollectingSink final : public StreamSink {
 public:
  void on_header(const TaskTrace& header, std::uint64_t block_count,
                 std::uint64_t reserve_hint) override {
    (void)block_count;
    task_ = header;
    task_.blocks.clear();
    task_.blocks.reserve(static_cast<std::size_t>(reserve_hint));
  }
  void on_block(BasicBlockRecord&& block) override {
    task_.blocks.push_back(std::move(block));
  }
  TaskTrace take() {
    task_.sort_blocks();
    return std::move(task_);
  }

 private:
  TaskTrace task_;
};

enum class StreamFormat {
  Auto,    ///< binary by magic, text otherwise (TaskTrace::load semantics)
  Binary,  ///< binary only; anything else is a ParseError (load_binary)
};

struct StreamStats {
  std::uint64_t bytes_consumed = 0;
  std::uint64_t blocks = 0;
  /// Provider buffer high-water mark (0 when the source was a view/map).
  std::size_t peak_buffer_bytes = 0;
};

/// Streaming strict parse of either binary version or the text format.
/// Throws ParseError exactly where the whole-file parsers would; the sink
/// sees nothing from a section that failed its checks.
StreamStats stream_parse(ByteSource& source, StreamSink& sink,
                         StreamFormat format = StreamFormat::Auto);

/// Whole-trace load through the streaming path.  Byte-identical results to
/// TaskTrace::load (pinned by test).
TaskTrace stream_load(const std::string& path,
                      std::size_t budget = kDefaultStreamBudget,
                      bool force_buffered = false);

/// Validation-only scan: parses every section, verifies framing, CRCs, and
/// the TaskTrace semantic invariants (finite features, rates, cumulative
/// hit rates, unique block ids) — then discards each block.  Peak memory is
/// the source budget plus one block, regardless of trace size.  Returns the
/// header metadata via `header_out` when non-null.
StreamStats stream_validate(ByteSource& source, TaskTrace* header_out = nullptr);

/// Streaming v002 writer: emits the magic and header up front, then one
/// framed section per block as it arrives, then the end marker.  Output is
/// byte-identical to to_binary() over the same (sorted) blocks.
class BinaryStreamWriter {
 public:
  explicit BinaryStreamWriter(const std::string& path);
  ~BinaryStreamWriter();

  /// Writes the magic and the header section declaring `block_count` blocks.
  void begin(const TaskTrace& header, std::uint64_t block_count);
  /// Appends one framed block section.  Callers append in ascending-id
  /// order to match to_binary() byte-for-byte.
  void add_block(const BasicBlockRecord& block);
  /// Writes the end marker and flushes; throws if the block count written
  /// differs from the declared count.
  void finish();

 private:
  std::string path_;
  std::unique_ptr<std::ofstream> out_;
  std::uint64_t declared_ = 0;
  std::uint64_t written_ = 0;
  bool begun_ = false;
  bool finished_ = false;
};

namespace detail {

/// Streaming text-format parse over a line feed (`next_line` fills its
/// argument with the next raw line, returning false at end of input).
/// Defined in task_trace.cpp next to the grammar it shares with from_text.
void parse_text_stream(const std::function<bool(std::string&)>& next_line,
                       std::size_t size_hint, StreamSink& sink);

}  // namespace detail

}  // namespace pmacx::trace
