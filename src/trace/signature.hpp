// The application signature.
//
// "The set of trace files from all MPI ranks constitutes the application
// signature on the target system at that particular core count" (Section
// III-A).  AppSignature bundles the per-task computation traces with the
// per-task communication traces of one run, and records which rank the
// lightweight profiler identified as the most computationally demanding —
// that is the task the paper's extrapolation focuses on (Section IV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/comm.hpp"
#include "trace/task_trace.hpp"

namespace pmacx::trace {

/// Full signature of one application run at one core count.
struct AppSignature {
  std::string app;
  std::uint32_t core_count = 0;
  std::string target_system;
  /// One computation trace per *traced* rank.  The tracer may trace a subset
  /// of ranks (the paper extrapolates only the most demanding one); each
  /// TaskTrace records which rank it describes.
  std::vector<TaskTrace> tasks;
  /// One communication timeline per rank (always all ranks; comm traces are
  /// cheap compared to computation traces).
  std::vector<CommTrace> comm;
  /// Rank the profiler identified as the most computationally demanding.
  std::uint32_t demanding_rank = 0;

  /// Trace of `rank`, or nullptr when that rank was not traced.
  const TaskTrace* task_for_rank(std::uint32_t rank) const;

  /// Trace of the most demanding rank; throws util::Error if it was not
  /// traced (a signature is unusable for extrapolation without it).
  const TaskTrace& demanding_task() const;

  /// Throws util::Error unless all members agree on app/core count and the
  /// comm traces cover exactly ranks [0, core_count).
  void validate() const;

  /// Approximate resident size across all task and comm traces, for
  /// byte-bounded cache accounting in the serving layer.
  std::size_t memory_bytes() const;

  /// Persists the signature as a directory: `signature.meta` (header),
  /// `task_<rank>.trace` per computation trace (binary format), and a
  /// single concatenated `comm.txt` for all ranks' communication timelines.
  /// The directory is created if absent; existing files are overwritten.
  void save(const std::string& directory) const;

  /// Loads a directory written by save(); validates before returning.
  static AppSignature load(const std::string& directory);
};

}  // namespace pmacx::trace
