// Communication traces.
//
// The PMaC framework pairs the computation model with a communication model
// (Section III); PSiNS replays each task's ordered sequence of MPI events
// interleaved with its computation bursts.  CommTrace is that sequence for
// one rank.  Computation between events is carried as abstract work units
// (this library's convolution converts units to seconds per target machine),
// so the same comm trace replays correctly on any target.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pmacx::trace {

/// MPI operation kinds modeled by the replay simulator.
enum class CommOp {
  Send,       ///< blocking point-to-point send
  Recv,       ///< blocking point-to-point receive
  Barrier,    ///< full synchronization
  Bcast,      ///< one-to-all broadcast
  Reduce,     ///< all-to-one reduction
  Allreduce,  ///< reduction + broadcast
  Allgather,  ///< all-to-all gather of equal chunks
  Alltoall,   ///< personalized all-to-all exchange
};

/// Stable name for serialization and reports.
std::string comm_op_name(CommOp op);
/// Inverse of comm_op_name; throws util::Error on unknown names.
CommOp comm_op_from_name(const std::string& name);
/// True for collective operations (everything except Send/Recv).
bool comm_op_is_collective(CommOp op);

/// One MPI event in a rank's timeline.
struct CommEvent {
  CommOp op = CommOp::Barrier;
  std::int32_t peer = -1;     ///< partner rank for Send/Recv; root for rooted collectives
  std::uint64_t bytes = 0;    ///< payload bytes (per-rank contribution for collectives)
  /// Abstract computation units executed by this rank since the previous
  /// event (or since start).  The convolution scales units to seconds.
  double compute_units_before = 0.0;

  bool operator==(const CommEvent&) const = default;
};

/// One rank's ordered communication timeline at one core count.
struct CommTrace {
  std::uint32_t rank = 0;
  std::uint32_t core_count = 0;
  std::vector<CommEvent> events;
  /// Computation units after the last event (tail burst).
  double tail_compute_units = 0.0;

  /// Sum of compute units across the whole timeline.
  double total_compute_units() const;
  /// Sum of bytes across all events.
  std::uint64_t total_bytes() const;

  /// Versioned text round-trip, mirroring TaskTrace's format.
  std::string to_text() const;
  static CommTrace from_text(const std::string& text);

  bool operator==(const CommTrace&) const = default;
};

}  // namespace pmacx::trace
