#include "trace/signature.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/binary_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace pmacx::trace {

const TaskTrace* AppSignature::task_for_rank(std::uint32_t rank) const {
  for (const auto& task : tasks)
    if (task.rank == rank) return &task;
  return nullptr;
}

const TaskTrace& AppSignature::demanding_task() const {
  const TaskTrace* task = task_for_rank(demanding_rank);
  PMACX_CHECK(task != nullptr,
              "signature does not contain a trace for the demanding rank " +
                  std::to_string(demanding_rank));
  return *task;
}

void AppSignature::validate() const {
  PMACX_CHECK(core_count > 0, "signature with zero cores");
  PMACX_CHECK(!tasks.empty(), "signature with no task traces");
  for (const auto& task : tasks) {
    PMACX_CHECK(task.app == app, "task trace app mismatch");
    PMACX_CHECK(task.core_count == core_count, "task trace core count mismatch");
    PMACX_CHECK(task.rank < core_count, "task trace rank out of range");
  }
  if (!comm.empty()) {
    PMACX_CHECK(comm.size() == core_count,
                "comm traces must cover every rank (got " + std::to_string(comm.size()) +
                    " of " + std::to_string(core_count) + ")");
    for (std::uint32_t r = 0; r < core_count; ++r) {
      PMACX_CHECK(comm[r].rank == r, "comm trace rank order mismatch");
      PMACX_CHECK(comm[r].core_count == core_count, "comm trace core count mismatch");
    }
  }
  PMACX_CHECK(demanding_rank < core_count, "demanding rank out of range");
}

std::size_t AppSignature::memory_bytes() const {
  std::size_t total = sizeof(*this) + app.capacity() + target_system.capacity();
  for (const auto& task : tasks) total += task.memory_bytes();
  for (const auto& trace : comm) {
    total += sizeof(trace);
    total += trace.events.capacity() * sizeof(CommEvent);
  }
  return total;
}

void AppSignature::save(const std::string& directory) const {
  validate();
  namespace fs = std::filesystem;
  fs::create_directories(directory);

  {
    std::ofstream meta(fs::path(directory) / "signature.meta", std::ios::trunc);
    PMACX_CHECK(meta.good(), "cannot write signature.meta in '" + directory + "'");
    meta << "pmacx-signature\t1\n";
    meta << "app\t" << app << '\n';
    meta << "cores\t" << core_count << '\n';
    meta << "target\t" << target_system << '\n';
    meta << "demanding\t" << demanding_rank << '\n';
    meta << "tasks";
    for (const auto& task : tasks) meta << '\t' << task.rank;
    meta << '\n';
    meta << "comm\t" << comm.size() << '\n';
    PMACX_CHECK(meta.good(), "write to signature.meta failed");
  }

  for (const auto& task : tasks) {
    const fs::path path =
        fs::path(directory) / ("task_" + std::to_string(task.rank) + ".trace");
    save_binary(task, path.string());
  }

  std::ofstream comm_out(fs::path(directory) / "comm.txt", std::ios::trunc);
  PMACX_CHECK(comm_out.good(), "cannot write comm.txt in '" + directory + "'");
  for (const auto& timeline : comm) comm_out << timeline.to_text();
  PMACX_CHECK(comm_out.good(), "write to comm.txt failed");
}

AppSignature AppSignature::load(const std::string& directory) {
  namespace fs = std::filesystem;
  std::ifstream meta(fs::path(directory) / "signature.meta");
  PMACX_CHECK(meta.good(), "cannot open signature.meta in '" + directory + "'");

  AppSignature signature;
  std::string line;
  std::vector<std::uint32_t> task_ranks;
  std::size_t comm_count = 0;
  bool magic_seen = false;
  while (std::getline(meta, line)) {
    if (line.empty()) continue;
    const auto fields = util::split(line, '\t');
    if (!magic_seen) {
      PMACX_CHECK(fields.size() >= 2 && fields[0] == "pmacx-signature" && fields[1] == "1",
                  "not a pmacx signature directory");
      magic_seen = true;
      continue;
    }
    PMACX_CHECK(fields.size() >= 2, "malformed signature.meta line: " + line);
    if (fields[0] == "app") {
      signature.app = fields[1];
    } else if (fields[0] == "cores") {
      signature.core_count =
          static_cast<std::uint32_t>(util::parse_u64(fields[1], "cores"));
    } else if (fields[0] == "target") {
      signature.target_system = fields[1];
    } else if (fields[0] == "demanding") {
      signature.demanding_rank =
          static_cast<std::uint32_t>(util::parse_u64(fields[1], "demanding"));
    } else if (fields[0] == "tasks") {
      for (std::size_t i = 1; i < fields.size(); ++i)
        task_ranks.push_back(
            static_cast<std::uint32_t>(util::parse_u64(fields[i], "task rank")));
    } else if (fields[0] == "comm") {
      comm_count = util::parse_u64(fields[1], "comm count");
    } else {
      PMACX_CHECK(false, "unknown signature.meta key '" + fields[0] + "'");
    }
  }
  PMACX_CHECK(magic_seen, "empty signature.meta");

  for (std::uint32_t rank : task_ranks) {
    const fs::path path = fs::path(directory) / ("task_" + std::to_string(rank) + ".trace");
    signature.tasks.push_back(TaskTrace::load(path.string()));
  }

  if (comm_count > 0) {
    std::ifstream comm_in(fs::path(directory) / "comm.txt");
    PMACX_CHECK(comm_in.good(), "cannot open comm.txt in '" + directory + "'");
    std::ostringstream buffer;
    buffer << comm_in.rdbuf();
    const std::string all = buffer.str();
    // Comm traces are concatenated; split on the end-of-record marker.
    std::size_t offset = 0;
    signature.comm.reserve(comm_count);
    for (std::size_t i = 0; i < comm_count; ++i) {
      const std::size_t end = all.find("end\n", offset);
      PMACX_CHECK(end != std::string::npos, "comm.txt truncated");
      signature.comm.push_back(
          CommTrace::from_text(all.substr(offset, end + 4 - offset)));
      offset = end + 4;
    }
  }

  signature.validate();
  return signature;
}

}  // namespace pmacx::trace
