#include "trace/comm.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pmacx::trace {

std::string comm_op_name(CommOp op) {
  switch (op) {
    case CommOp::Send: return "send";
    case CommOp::Recv: return "recv";
    case CommOp::Barrier: return "barrier";
    case CommOp::Bcast: return "bcast";
    case CommOp::Reduce: return "reduce";
    case CommOp::Allreduce: return "allreduce";
    case CommOp::Allgather: return "allgather";
    case CommOp::Alltoall: return "alltoall";
  }
  PMACX_ASSERT(false, "bad CommOp");
  return "?";
}

CommOp comm_op_from_name(const std::string& name) {
  for (CommOp op : {CommOp::Send, CommOp::Recv, CommOp::Barrier, CommOp::Bcast, CommOp::Reduce,
                    CommOp::Allreduce, CommOp::Allgather, CommOp::Alltoall}) {
    if (comm_op_name(op) == name) return op;
  }
  PMACX_CHECK(false, "unknown comm op '" + name + "'");
  return CommOp::Barrier;
}

bool comm_op_is_collective(CommOp op) {
  return op != CommOp::Send && op != CommOp::Recv;
}

double CommTrace::total_compute_units() const {
  double total = tail_compute_units;
  for (const auto& event : events) total += event.compute_units_before;
  return total;
}

std::uint64_t CommTrace::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& event : events) total += event.bytes;
  return total;
}

std::string CommTrace::to_text() const {
  std::ostringstream out;
  out.precision(17);
  out << "pmacx-comm\t1\n";
  out << "rank\t" << rank << '\n';
  out << "cores\t" << core_count << '\n';
  out << "tail\t" << tail_compute_units << '\n';
  out << "events\t" << events.size() << '\n';
  for (const auto& event : events) {
    out << "e\t" << comm_op_name(event.op) << '\t' << event.peer << '\t' << event.bytes << '\t'
        << event.compute_units_before << '\n';
  }
  out << "end\n";
  return out.str();
}

CommTrace CommTrace::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  auto next = [&](const char* what) {
    while (std::getline(in, line)) {
      if (!line.empty()) return util::split(line, '\t');
    }
    PMACX_CHECK(false, std::string("unexpected end of comm trace reading ") + what);
    return std::vector<std::string>{};
  };
  auto expect = [&](const char* key) {
    auto fields = next(key);
    PMACX_CHECK(!fields.empty() && fields[0] == key,
                std::string("expected '") + key + "' in comm trace");
    PMACX_CHECK(fields.size() >= 2, std::string("missing value for '") + key + "'");
    return fields;
  };

  auto header = next("header");
  PMACX_CHECK(header.size() >= 2 && header[0] == "pmacx-comm" && header[1] == "1",
              "not a pmacx comm trace");

  CommTrace trace;
  trace.rank = static_cast<std::uint32_t>(util::parse_u64(expect("rank")[1], "rank"));
  trace.core_count = static_cast<std::uint32_t>(util::parse_u64(expect("cores")[1], "cores"));
  trace.tail_compute_units = util::parse_double(expect("tail")[1], "tail");
  const std::uint64_t count = util::parse_u64(expect("events")[1], "events");
  trace.events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    auto fields = next("event");
    PMACX_CHECK(fields.size() == 5 && fields[0] == "e", "malformed comm event");
    CommEvent event;
    event.op = comm_op_from_name(fields[1]);
    event.peer = static_cast<std::int32_t>(util::parse_double(fields[2], "peer"));
    event.bytes = util::parse_u64(fields[3], "bytes");
    event.compute_units_before = util::parse_double(fields[4], "compute units");
    trace.events.push_back(event);
  }
  auto tail = next("end");
  PMACX_CHECK(!tail.empty() && tail[0] == "end", "missing comm trace end marker");
  return trace;
}

}  // namespace pmacx::trace
