// Shared primitives of the binary trace grammar (v001/v002).
//
// Three readers consume the exact same records: the strict whole-view parser
// and the salvage parser in binary_io.cpp, and the bounded-memory streaming
// parser in stream_reader.cpp.  Keeping the encode/decode of headers, blocks,
// and section frames here means the grammar exists exactly once and the
// paths cannot drift — a corruption rejected by one loader is rejected by
// all of them, with the same ParseError taxonomy.
//
// The record readers are templates over the reader type: detail::Reader
// walks a contiguous byte range (a whole mapped file or one section
// payload), while the streaming parser supplies a cursor that pulls bytes
// from a ByteSource with a fixed buffer budget.  Both expose the same
// primitive surface (raw/u32/u64/f64/str/need/fail/remaining/set_section).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "trace/task_trace.hpp"
#include "util/crc32.hpp"
#include "util/parse_error.hpp"

namespace pmacx::trace::detail {

// The format assumes a little-endian host (x86-64/aarch64); a big-endian
// port would need byte swaps here.

// v002 section tags.
inline constexpr std::uint32_t kSectionHeader = 'H';
inline constexpr std::uint32_t kSectionBlock = 'B';
inline constexpr std::uint32_t kSectionEnd = 'E';

// Per-section overhead: tag (u32) + payload size (u64) + CRC32 (u32).
inline constexpr std::size_t kSectionFrameBytes = 4 + 8 + 4;

// Smallest possible encodings, used to bounds-check declared counts before
// reserving: a corrupted count must be caught here, not in the allocator.
inline constexpr std::size_t kMinInstrBytes = 4 + sizeof(double) * kInstrElementCount;
inline constexpr std::size_t kMinBlockBytes =
    8 + 4 + 4 + 4 + sizeof(double) * kBlockElementCount + 8;

class Writer {
 public:
  void raw(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  /// Appends a framed v002 section: tag, size, CRC32, payload.
  void section(std::uint32_t tag, const std::string& payload) {
    u32(tag);
    u64(payload.size());
    u32(util::crc32(payload));
    raw(payload.data(), payload.size());
  }
  std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounded reader over a contiguous byte range.  Every failure throws
/// ParseError with the *absolute* byte offset (sub-readers over section
/// payloads carry their base offset) and the name of the section being read.
class Reader {
 public:
  Reader(const char* data, std::size_t size, std::size_t base_offset,
         const char* section)
      : data_(data), size_(size), base_(base_offset), section_(section) {}

  explicit Reader(std::string_view bytes)
      : Reader(bytes.data(), bytes.size(), 0, "file") {}

  void set_section(const char* section) { section_ = section; }

  [[noreturn]] void fail(const std::string& message) const {
    throw util::ParseError("", base_ + offset_, section_, message);
  }

  void need(std::size_t size, const char* what) const {
    if (size_ - offset_ < size)
      fail(std::string("truncated reading ") + what + " (need " +
           std::to_string(size) + " bytes, " + std::to_string(size_ - offset_) +
           " remain)");
  }

  void raw(void* out, std::size_t size, const char* what) {
    need(size, what);
    std::memcpy(out, data_ + offset_, size);
    offset_ += size;
  }
  std::uint32_t u32(const char* what) {
    std::uint32_t v;
    raw(&v, sizeof v, what);
    return v;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t v;
    raw(&v, sizeof v, what);
    return v;
  }
  double f64(const char* what) {
    double v;
    raw(&v, sizeof v, what);
    return v;
  }
  std::string str(const char* what) {
    const std::uint32_t size = u32(what);
    need(size, what);
    std::string s(data_ + offset_, size);
    offset_ += size;
    return s;
  }

  /// A sub-reader bounded to the next `size` bytes (a section payload);
  /// advances this reader past them.
  Reader sub(std::size_t size, const char* section) {
    need(size, section);
    Reader r(data_ + offset_, size, base_ + offset_, section);
    offset_ += size;
    return r;
  }

  const char* cursor() const { return data_ + offset_; }
  std::size_t remaining() const { return size_ - offset_; }
  std::size_t absolute_offset() const { return base_ + offset_; }
  bool exhausted() const { return offset_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t base_;
  const char* section_;
  std::size_t offset_ = 0;
};

inline void write_block(Writer& w, const BasicBlockRecord& block) {
  w.u64(block.id);
  w.str(block.location.file);
  w.u32(block.location.line);
  w.str(block.location.function);
  for (double v : block.features) w.f64(v);
  w.u64(block.instructions.size());
  for (const auto& instr : block.instructions) {
    w.u32(instr.index);
    for (double v : instr.features) w.f64(v);
  }
}

template <class R>
BasicBlockRecord read_block(R& r) {
  BasicBlockRecord block;
  block.id = r.u64("block id");
  block.location.file = r.str("block source file");
  block.location.line = r.u32("block line");
  block.location.function = r.str("block function");
  for (double& v : block.features) v = r.f64("block feature");
  const std::uint64_t instr_count = r.u64("instruction count");
  if (instr_count > r.remaining() / kMinInstrBytes)
    r.fail("instruction count " + std::to_string(instr_count) +
           " exceeds remaining input (" + std::to_string(r.remaining()) + " bytes)");
  block.instructions.reserve(instr_count);
  for (std::uint64_t k = 0; k < instr_count; ++k) {
    InstructionRecord instr;
    instr.index = r.u32("instruction index");
    for (double& v : instr.features) v = r.f64("instruction feature");
    block.instructions.push_back(std::move(instr));
  }
  return block;
}

/// Writes the task header with an explicit block count so streaming writers
/// can declare the count before any block exists in memory.
inline void write_task_header(Writer& w, const TaskTrace& task,
                              std::uint64_t block_count) {
  w.str(task.app);
  w.u32(task.rank);
  w.u32(task.core_count);
  w.str(task.target_system);
  w.u32(task.extrapolated ? 1 : 0);
  w.u64(block_count);
}

template <class R>
std::uint64_t read_task_header(R& r, TaskTrace& task) {
  task.app = r.str("app name");
  task.rank = r.u32("rank");
  task.core_count = r.u32("core count");
  task.target_system = r.str("target system");
  task.extrapolated = r.u32("extrapolated flag") != 0;
  return r.u64("block count");
}

/// Reads one v002 section frame from a contiguous reader, validates the
/// declared size against the remaining input and the payload against its
/// CRC, and returns a bounded payload reader.
inline Reader read_section(Reader& r, std::uint32_t expected_tag, const char* section) {
  r.set_section(section);
  const std::uint32_t tag = r.u32("section tag");
  if (tag != expected_tag)
    r.fail("unexpected section tag " + std::to_string(tag) + " (expected " +
           std::to_string(expected_tag) + ")");
  const std::uint64_t size = r.u64("section size");
  const std::uint32_t declared_crc = r.u32("section checksum");
  // Checked only after the CRC field is consumed: remaining() must cover the
  // payload alone, or crc32 below would read past the end of the input.
  if (size > r.remaining())
    r.fail("declared section size " + std::to_string(size) +
           " exceeds remaining input (" + std::to_string(r.remaining()) + " bytes)");
  const std::uint32_t actual_crc = util::crc32(r.cursor(), size);
  if (actual_crc != declared_crc)
    r.fail("checksum mismatch (stored " + std::to_string(declared_crc) +
           ", computed " + std::to_string(actual_crc) + ")");
  return r.sub(static_cast<std::size_t>(size), section);
}

}  // namespace pmacx::trace::detail
