#include "trace/stream_reader.hpp"

#include <fcntl.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <vector>

#include "trace/binary_detail.hpp"
#include "trace/binary_io.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/mmap_file.hpp"
#include "util/parse_error.hpp"

namespace pmacx::trace {
namespace {

// Registered up front so every metrics snapshot carries the streaming
// gauges — a run that streams nothing still reports them as zero.
const bool kStreamMetricsRegistered = [] {
  util::metrics::Registry::global().counter("trace.stream.bytes");
  util::metrics::Registry::global().gauge("trace.stream.peak_buffer_bytes");
  return true;
}();

void record_peak_buffer(std::size_t bytes) {
  util::metrics::Gauge& gauge =
      util::metrics::Registry::global().gauge("trace.stream.peak_buffer_bytes");
  if (static_cast<double>(bytes) > gauge.value())
    gauge.set(static_cast<double>(bytes));
}

/// Borrowed contiguous view (also the zero-copy face of a memory map).
class ViewSource final : public ByteSource {
 public:
  explicit ViewSource(std::string_view bytes) : bytes_(bytes) {}

  std::string_view peek(std::size_t n) override {
    (void)n;
    return bytes_.substr(pos_);
  }
  void consume(std::size_t n) override { pos_ += std::min(n, bytes_.size() - pos_); }
  std::uint64_t offset() const override { return pos_; }
  std::uint64_t size() const override { return bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// ViewSource that owns the memory map backing its view.
class MappedSource final : public ByteSource {
 public:
  explicit MappedSource(util::MappedFile map)
      : map_(std::move(map)), view_(map_.view()) {}

  std::string_view peek(std::size_t n) override {
    (void)n;
    return view_.substr(pos_);
  }
  void consume(std::size_t n) override { pos_ += std::min(n, view_.size() - pos_); }
  std::uint64_t offset() const override { return pos_; }
  std::uint64_t size() const override { return view_.size(); }

 private:
  util::MappedFile map_;
  std::string_view view_;
  std::size_t pos_ = 0;
};

/// Buffered file window with a hard budget.  The buffer holds a sliding
/// window [window_base, window_base + buffer.size()) of the file; peek()
/// compacts consumed bytes away and refills from the stream, and refuses
/// (ParseError) to grow the window past the budget.  Reads go through
/// util::io::read_some, whose bounded loop absorbs EINTR and short reads
/// (real or injected) and surfaces device errors as typed IoErrors.
class BufferedFileSource final : public ByteSource {
 public:
  BufferedFileSource(const std::string& path, std::size_t budget)
      : path_(path), budget_(std::max<std::size_t>(budget, kMinBudget)) {
    fd_ = util::io::open_file(path, O_RDONLY);
    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
      const std::string reason = std::strerror(errno);
      util::io::close_quiet(fd_);
      fd_ = -1;
      throw util::Error("cannot determine size of '" + path + "': " + reason);
    }
    file_size_ = static_cast<std::uint64_t>(st.st_size);
  }

  ~BufferedFileSource() override { util::io::close_quiet(fd_); }

  std::string_view peek(std::size_t n) override {
    const std::uint64_t remaining = file_size_ - offset_;
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, remaining));
    if (want > budget_)
      throw util::ParseError(
          "", offset_, "stream",
          "record of " + std::to_string(want) + " bytes exceeds the " +
              std::to_string(budget_) + "-byte stream buffer budget");
    if (available() < want) fill(want);
    return std::string_view(buffer_.data() + pos_, available());
  }

  void consume(std::size_t n) override {
    const std::size_t step = std::min(n, available());
    pos_ += step;
    offset_ += step;
  }

  std::uint64_t offset() const override { return offset_; }
  std::uint64_t size() const override { return file_size_; }
  std::size_t peak_buffer_bytes() const override { return peak_; }

 private:
  // Floor keeps tiny test budgets workable (a section frame plus slack)
  // while still exercising compaction constantly.
  static constexpr std::size_t kMinBudget = 4096;
  // Refill granularity: big enough to amortize syscalls, small enough that
  // tiny budgets still make many reads.
  static constexpr std::size_t kReadChunk = 256 * 1024;

  std::size_t available() const { return buffer_.size() - pos_; }

  void fill(std::size_t want) {
    // Drop consumed bytes so the window never holds dead prefix.
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    const std::uint64_t remaining_in_file =
        file_size_ - (offset_ + buffer_.size());
    std::size_t target = std::max(want, std::min<std::size_t>(
                                            kReadChunk,
                                            static_cast<std::size_t>(std::min<std::uint64_t>(
                                                remaining_in_file + buffer_.size(), budget_))));
    target = std::min(target, budget_);
    while (buffer_.size() < target) {
      const std::size_t old = buffer_.size();
      std::size_t grow = std::min<std::size_t>(target - old, kReadChunk);
      grow = static_cast<std::size_t>(
          std::min<std::uint64_t>(grow, file_size_ - (offset_ + old)));
      if (grow == 0) break;
      buffer_.resize(old + grow);
      const std::size_t got = util::io::read_some(fd_, buffer_.data() + old, grow, path_);
      buffer_.resize(old + got);
      if (got == 0) {
        // The file shrank under us; surface it as a clean truncation at the
        // parser's next need() rather than spinning here.  (A short read —
        // EINTR absorbed or injected — just loops for the remainder.)
        file_size_ = offset_ + buffer_.size();
        break;
      }
    }
    peak_ = std::max(peak_, buffer_.capacity());
    record_peak_buffer(peak_);
  }

  std::string path_;
  int fd_ = -1;
  std::string buffer_;
  std::size_t pos_ = 0;
  std::uint64_t offset_ = 0;
  std::uint64_t file_size_ = 0;
  std::size_t budget_;
  std::size_t peak_ = 0;
};

/// Reader-compatible primitive cursor over a ByteSource (the streaming
/// counterpart of detail::Reader, usable with the shared record templates).
class SourceReader {
 public:
  SourceReader(ByteSource& source, const char* section)
      : source_(source), section_(section) {}

  void set_section(const char* section) { section_ = section; }

  [[noreturn]] void fail(const std::string& message) const {
    throw util::ParseError("", source_.offset(), section_, message);
  }

  void need(std::size_t size, const char* what) const {
    if (remaining() < size)
      fail(std::string("truncated reading ") + what + " (need " +
           std::to_string(size) + " bytes, " + std::to_string(remaining()) +
           " remain)");
  }

  void raw(void* out, std::size_t size, const char* what) {
    need(size, what);
    const std::string_view bytes = source_.peek(size);
    if (bytes.size() < size)
      fail(std::string("truncated reading ") + what + " (need " +
           std::to_string(size) + " bytes, " + std::to_string(bytes.size()) +
           " remain)");
    std::memcpy(out, bytes.data(), size);
    source_.consume(size);
  }
  std::uint32_t u32(const char* what) {
    std::uint32_t v;
    raw(&v, sizeof v, what);
    return v;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t v;
    raw(&v, sizeof v, what);
    return v;
  }
  double f64(const char* what) {
    double v;
    raw(&v, sizeof v, what);
    return v;
  }
  std::string str(const char* what) {
    const std::uint32_t size = u32(what);
    need(size, what);
    const std::string_view bytes = source_.peek(size);
    std::string s(bytes.data(), std::min<std::size_t>(bytes.size(), size));
    if (s.size() < size)
      fail(std::string("truncated reading ") + what);
    source_.consume(size);
    return s;
  }

  std::size_t remaining() const {
    return static_cast<std::size_t>(source_.size() - source_.offset());
  }
  bool exhausted() const { return remaining() == 0; }

 private:
  ByteSource& source_;
  const char* section_;
};

/// One v002 section frame pulled from the stream: the payload view (valid
/// until the source is advanced) plus its absolute offset and size.  The
/// caller consumes `size` bytes once done with the view.
struct SectionView {
  std::string_view payload;
  std::uint64_t payload_offset = 0;
  std::uint64_t size = 0;
};

SectionView read_section_stream(ByteSource& source, std::uint32_t expected_tag,
                                const char* section) {
  SourceReader r(source, section);
  const std::uint32_t tag = r.u32("section tag");
  if (tag != expected_tag)
    r.fail("unexpected section tag " + std::to_string(tag) + " (expected " +
           std::to_string(expected_tag) + ")");
  const std::uint64_t size = r.u64("section size");
  const std::uint32_t declared_crc = r.u32("section checksum");
  // Checked only after the CRC field is consumed, mirroring the whole-view
  // parser: remaining() must cover the payload alone.
  if (size > r.remaining())
    r.fail("declared section size " + std::to_string(size) +
           " exceeds remaining input (" + std::to_string(r.remaining()) + " bytes)");
  SectionView view;
  view.payload_offset = source.offset();
  view.size = size;
  view.payload = source.peek(static_cast<std::size_t>(size));
  if (view.payload.size() < size)
    r.fail("truncated reading section payload (need " + std::to_string(size) +
           " bytes, " + std::to_string(view.payload.size()) + " remain)");
  view.payload = view.payload.substr(0, static_cast<std::size_t>(size));
  const std::uint32_t actual_crc = util::crc32(view.payload.data(), view.payload.size());
  if (actual_crc != declared_crc)
    r.fail("checksum mismatch (stored " + std::to_string(declared_crc) +
           ", computed " + std::to_string(actual_crc) + ")");
  return view;
}

void parse_v002_stream(ByteSource& source, StreamSink& sink) {
  TaskTrace header;
  std::uint64_t block_count = 0;
  {
    const SectionView s = read_section_stream(source, detail::kSectionHeader,
                                              "header section");
    detail::Reader payload(s.payload.data(), s.payload.size(),
                           static_cast<std::size_t>(s.payload_offset),
                           "header section");
    block_count = detail::read_task_header(payload, header);
    if (!payload.exhausted()) payload.fail("trailing bytes in header section");
    source.consume(static_cast<std::size_t>(s.size));
  }
  const std::uint64_t remaining = source.size() - source.offset();
  const std::uint64_t fit_count =
      remaining / (detail::kSectionFrameBytes + detail::kMinBlockBytes);
  if (block_count > fit_count)
    throw util::ParseError("", source.offset(), "header section",
                           "block count " + std::to_string(block_count) +
                               " exceeds remaining input (" +
                               std::to_string(remaining) + " bytes)");
  sink.on_header(header, block_count, std::min(block_count, fit_count));

  for (std::uint64_t b = 0; b < block_count; ++b) {
    const SectionView s =
        read_section_stream(source, detail::kSectionBlock, "block section");
    detail::Reader payload(s.payload.data(), s.payload.size(),
                           static_cast<std::size_t>(s.payload_offset),
                           "block section");
    BasicBlockRecord block = detail::read_block(payload);
    if (!payload.exhausted()) payload.fail("trailing bytes in block section");
    source.consume(static_cast<std::size_t>(s.size));
    sink.on_block(std::move(block));
  }

  const SectionView end =
      read_section_stream(source, detail::kSectionEnd, "end marker");
  if (end.size != 0)
    throw util::ParseError("", end.payload_offset, "end marker",
                           "non-empty end marker");
  SourceReader trailer(source, "v002 trailer");
  if (!trailer.exhausted()) trailer.fail("trailing bytes after binary trace");
  sink.on_end();
}

void parse_v001_stream(ByteSource& source, StreamSink& sink) {
  TaskTrace header;
  SourceReader r(source, "v001 header");
  const std::uint64_t block_count = detail::read_task_header(r, header);
  const std::uint64_t fit_count = r.remaining() / detail::kMinBlockBytes;
  if (block_count > fit_count)
    r.fail("block count " + std::to_string(block_count) +
           " exceeds remaining input (" + std::to_string(r.remaining()) + " bytes)");
  sink.on_header(header, block_count, std::min<std::uint64_t>(block_count, fit_count));
  for (std::uint64_t b = 0; b < block_count; ++b) {
    r.set_section("v001 block record");
    sink.on_block(detail::read_block(r));
  }
  r.set_section("v001 trailer");
  if (!r.exhausted()) r.fail("trailing bytes after binary trace");
  sink.on_end();
}

bool next_line_from(ByteSource& source, std::string& out) {
  out.clear();
  if (source.offset() >= source.size()) return false;
  for (;;) {
    const std::string_view chunk = source.peek(4096);
    if (chunk.empty()) return !out.empty();
    const std::size_t nl = chunk.find('\n');
    if (nl == std::string_view::npos) {
      out.append(chunk);
      source.consume(chunk.size());
      if (source.offset() >= source.size()) return true;  // last line, no '\n'
      continue;
    }
    out.append(chunk.substr(0, nl));
    source.consume(nl + 1);
    return true;
  }
}

/// Forwards to an inner sink while counting blocks for StreamStats.
class CountingSink final : public StreamSink {
 public:
  explicit CountingSink(StreamSink& inner) : inner_(inner) {}
  void on_header(const TaskTrace& header, std::uint64_t block_count,
                 std::uint64_t reserve_hint) override {
    inner_.on_header(header, block_count, reserve_hint);
  }
  void on_block(BasicBlockRecord&& block) override {
    ++blocks_;
    inner_.on_block(std::move(block));
  }
  void on_end() override { inner_.on_end(); }
  std::uint64_t blocks() const { return blocks_; }

 private:
  StreamSink& inner_;
  std::uint64_t blocks_ = 0;
};

/// Validates each record as it streams past, retaining only block ids (for
/// the uniqueness check) — never the blocks themselves.
class ValidatingSink final : public StreamSink {
 public:
  explicit ValidatingSink(TaskTrace* header_out) : header_out_(header_out) {}

  void on_header(const TaskTrace& header, std::uint64_t block_count,
                 std::uint64_t reserve_hint) override {
    (void)block_count;
    scratch_ = header;
    scratch_.blocks.clear();
    scratch_.validate();  // core_count > 0, rank < cores
    if (header_out_ != nullptr) *header_out_ = scratch_;
    ids_.reserve(static_cast<std::size_t>(reserve_hint));
  }

  void on_block(BasicBlockRecord&& block) override {
    ids_.push_back(block.id);
    // Reuse the canonical per-block rules by validating a one-block trace;
    // cross-block id uniqueness is checked once at on_end (file order is
    // not required to be id order — loaders sort after parsing).
    scratch_.blocks.clear();
    scratch_.blocks.push_back(std::move(block));
    scratch_.validate();
  }

  void on_end() override {
    std::sort(ids_.begin(), ids_.end());
    const auto dup = std::adjacent_find(ids_.begin(), ids_.end());
    PMACX_CHECK(dup == ids_.end(),
                "block " + (dup == ids_.end() ? std::string() : std::to_string(*dup)) +
                    ": ids must be sorted and unique");
  }

 private:
  TaskTrace scratch_;
  std::vector<std::uint64_t> ids_;
  TaskTrace* header_out_;
};

}  // namespace

std::unique_ptr<ByteSource> make_view_source(std::string_view bytes) {
  return std::make_unique<ViewSource>(bytes);
}

std::unique_ptr<ByteSource> open_stream(const std::string& path, std::size_t budget,
                                        bool force_buffered) {
  util::metrics::Registry& metrics = util::metrics::Registry::global();
  if (!force_buffered) {
    util::MappedFile map;
    if (map.open(path)) {
      metrics.counter("trace.mmap_bytes").add(map.size());
      return std::make_unique<MappedSource>(std::move(map));
    }
  }
  metrics.counter("trace.mmap_fallbacks").add(1);
  return std::make_unique<BufferedFileSource>(path, budget);
}

StreamStats stream_parse(ByteSource& source, StreamSink& sink, StreamFormat format) {
  (void)kStreamMetricsRegistered;
  CountingSink counting(sink);
  const std::string_view head = source.peek(sizeof(kBinaryMagicV002));
  const bool is_v001 =
      head.size() >= sizeof(kBinaryMagicV001) &&
      std::memcmp(head.data(), kBinaryMagicV001, sizeof(kBinaryMagicV001)) == 0;
  const bool is_v002 =
      head.size() >= sizeof(kBinaryMagicV002) &&
      std::memcmp(head.data(), kBinaryMagicV002, sizeof(kBinaryMagicV002)) == 0;
  if (is_v001 || is_v002) {
    source.consume(sizeof(kBinaryMagicV002));
    if (is_v001)
      parse_v001_stream(source, counting);
    else
      parse_v002_stream(source, counting);
  } else if (format == StreamFormat::Binary) {
    throw util::ParseError("", 0, "magic", "not a pmacx binary trace");
  } else {
    detail::parse_text_stream(
        [&source](std::string& out) { return next_line_from(source, out); },
        static_cast<std::size_t>(source.size()), counting);
  }
  StreamStats stats;
  stats.bytes_consumed = source.offset();
  stats.blocks = counting.blocks();
  stats.peak_buffer_bytes = source.peak_buffer_bytes();
  util::metrics::Registry::global().counter("trace.stream.bytes").add(stats.bytes_consumed);
  return stats;
}

TaskTrace stream_load(const std::string& path, std::size_t budget,
                      bool force_buffered) {
  const std::unique_ptr<ByteSource> source = open_stream(path, budget, force_buffered);
  return util::with_parse_context(path, [&] {
    CollectingSink sink;
    stream_parse(*source, sink, StreamFormat::Auto);
    return sink.take();
  });
}

StreamStats stream_validate(ByteSource& source, TaskTrace* header_out) {
  ValidatingSink sink(header_out);
  return stream_parse(source, sink, StreamFormat::Auto);
}

BinaryStreamWriter::BinaryStreamWriter(const std::string& path)
    : path_(path), out_(std::make_unique<std::ofstream>(
                       path, std::ios::trunc | std::ios::binary)) {
  PMACX_CHECK(out_->good(), "cannot open '" + path + "' for writing");
}

BinaryStreamWriter::~BinaryStreamWriter() = default;

void BinaryStreamWriter::begin(const TaskTrace& header, std::uint64_t block_count) {
  PMACX_CHECK(!begun_, "BinaryStreamWriter::begin called twice");
  begun_ = true;
  declared_ = block_count;
  detail::Writer w;
  w.raw(kBinaryMagicV002, sizeof(kBinaryMagicV002));
  detail::Writer head;
  detail::write_task_header(head, header, block_count);
  w.section(detail::kSectionHeader, head.take());
  const std::string bytes = w.take();
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  PMACX_CHECK(out_->good(), "write to '" + path_ + "' failed");
}

void BinaryStreamWriter::add_block(const BasicBlockRecord& block) {
  PMACX_CHECK(begun_ && !finished_, "BinaryStreamWriter::add_block outside begin/finish");
  detail::Writer payload;
  detail::write_block(payload, block);
  detail::Writer w;
  w.section(detail::kSectionBlock, payload.take());
  const std::string bytes = w.take();
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  PMACX_CHECK(out_->good(), "write to '" + path_ + "' failed");
  ++written_;
}

void BinaryStreamWriter::finish() {
  PMACX_CHECK(begun_ && !finished_, "BinaryStreamWriter::finish outside begin");
  finished_ = true;
  PMACX_CHECK(written_ == declared_,
              "BinaryStreamWriter wrote " + std::to_string(written_) +
                  " blocks but declared " + std::to_string(declared_));
  detail::Writer w;
  w.section(detail::kSectionEnd, std::string());
  const std::string bytes = w.take();
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out_->flush();
  PMACX_CHECK(out_->good(), "write to '" + path_ + "' failed");
}

}  // namespace pmacx::trace
