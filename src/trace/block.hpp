// Basic-block trace records.
//
// One BasicBlockRecord corresponds to one static basic block of the traced
// application and carries (Section III-A) the block's source location, its
// floating-point work and mix, its memory reference counts and sizes, the
// simulated target-system cache hit rates for those references, and its
// working set — plus optional per-instruction sub-records used by the
// extrapolator's instruction-level mode (Section IV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/elements.hpp"

namespace pmacx::trace {

/// Where the block lives in the source and the executable.
struct SourceLocation {
  std::string file;        ///< source file ("specfem3d/compute_forces.f90")
  std::uint32_t line = 0;  ///< starting line
  std::string function;    ///< enclosing function

  bool operator==(const SourceLocation&) const = default;
};

/// One instruction's dynamic summary inside a block.
struct InstructionRecord {
  std::uint32_t index = 0;  ///< position within the block
  InstrFeatures features{};

  double get(InstrElement element) const {
    return features[static_cast<std::size_t>(element)];
  }
  void set(InstrElement element, double value) {
    features[static_cast<std::size_t>(element)] = value;
  }

  bool operator==(const InstructionRecord&) const = default;
};

/// One basic block's dynamic summary for one MPI task at one core count.
struct BasicBlockRecord {
  /// Stable identity across core counts (hash of the source location in the
  /// real tool; assigned by the app model here).  Alignment between traces
  /// at different core counts matches on this id.
  std::uint64_t id = 0;
  SourceLocation location;
  BlockFeatures features{};
  std::vector<InstructionRecord> instructions;

  double get(BlockElement element) const {
    return features[static_cast<std::size_t>(element)];
  }
  void set(BlockElement element, double value) {
    features[static_cast<std::size_t>(element)] = value;
  }

  /// Total memory references (loads + stores).
  double memory_ops() const;
  /// Total floating-point operations (all classes; FMA counts as 2).
  double fp_ops() const;
  /// Total bytes moved: memory_ops × bytes_per_ref.
  double bytes_moved() const;

  bool operator==(const BasicBlockRecord&) const = default;
};

}  // namespace pmacx::trace
