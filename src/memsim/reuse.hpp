// Exact LRU stack-distance (reuse-distance) analysis.
//
// The stack distance of an access is the number of *distinct* lines touched
// since the previous access to the same line; a fully-associative LRU cache
// of capacity C lines hits exactly the accesses with stack distance < C.
// This gives a machine-independent locality profile of an address stream and
// a ground truth against which the set-associative simulator is property-
// tested (tests/memsim_property_test.cpp).
//
// Implementation: classic Bennett–Kruskal style counting.  Each line stores
// its last access time; a Fenwick tree over the timeline marks "this time is
// the most recent access of some line", so the distance is a prefix-sum
// query.  The timeline is compacted when it grows past 2× the number of
// live lines, keeping memory proportional to the footprint.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

namespace pmacx::memsim {

/// Streaming reuse-distance histogram over line addresses.
class ReuseDistanceAnalyzer {
 public:
  /// Distance reported for first-ever accesses (cold misses).
  static constexpr std::uint64_t kInfinite = std::numeric_limits<std::uint64_t>::max();

  ReuseDistanceAnalyzer() = default;

  /// Processes one access to `line_addr` and returns its stack distance
  /// (kInfinite for the first access to the line).
  std::uint64_t access(std::uint64_t line_addr);

  /// Number of accesses with finite distance exactly d.
  std::uint64_t count_at(std::uint64_t distance) const;

  /// Number of accesses with finite distance < `capacity_lines` — i.e. the
  /// hits of a fully-associative LRU cache of that capacity.
  std::uint64_t hits_for_capacity(std::uint64_t capacity_lines) const;

  /// Cold (first-touch) accesses.
  std::uint64_t cold_accesses() const { return cold_; }

  /// Total accesses processed.
  std::uint64_t total_accesses() const { return total_; }

  /// Distinct lines seen.
  std::uint64_t distinct_lines() const { return last_time_.size(); }

  /// Full finite-distance histogram (distance → count), ordered.
  const std::map<std::uint64_t, std::uint64_t>& histogram() const { return histogram_; }

 private:
  void fenwick_add(std::size_t index, std::int64_t delta);
  std::int64_t fenwick_sum(std::size_t index) const;  ///< sum of [0, index]
  void rebuild_tree(std::size_t capacity);
  void compact();

  std::unordered_map<std::uint64_t, std::uint64_t> last_time_;  ///< line → time
  std::vector<std::int64_t> tree_;    ///< Fenwick tree over the timeline
  std::vector<std::uint8_t> marks_;   ///< source of truth for tree rebuilds
  std::uint64_t now_ = 0;           ///< next timestamp to assign
  std::uint64_t live_marks_ = 0;    ///< marked slots (== distinct lines)
  std::uint64_t cold_ = 0;
  std::uint64_t total_ = 0;
  std::map<std::uint64_t, std::uint64_t> histogram_;
};

}  // namespace pmacx::memsim
