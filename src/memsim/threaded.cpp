#include "memsim/threaded.hpp"

#include <bit>

#include "util/error.hpp"

namespace pmacx::memsim {

ThreadedHierarchy::ThreadedHierarchy(HierarchyConfig config, std::uint32_t threads,
                                     std::size_t shared_from)
    : config_(std::move(config)), threads_(threads), shared_from_(shared_from) {
  config_.validate();
  PMACX_CHECK(threads_ > 0, "threaded hierarchy needs at least one thread");
  PMACX_CHECK(shared_from_ <= config_.levels.size(), "shared_from beyond level count");
  PMACX_CHECK(!config_.prefetch.enabled && !config_.tlb.enabled,
              "threaded hierarchy does not model prefetch/TLB (use per-rank mode)");
  line_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(config_.line_bytes())));

  private_.resize(threads_);
  for (std::uint32_t t = 0; t < threads_; ++t) {
    for (std::size_t lvl = 0; lvl < shared_from_; ++lvl)
      private_[t].emplace_back(config_.levels[lvl], config_.seed + lvl + t * 131);
  }
  for (std::size_t lvl = shared_from_; lvl < config_.levels.size(); ++lvl)
    shared_.emplace_back(config_.levels[lvl], config_.seed + lvl);
}

void ThreadedHierarchy::set_scope(std::uint64_t block_id) {
  scope_ = block_id;
  current_ = &scopes_[block_id];
}

void ThreadedHierarchy::access(std::uint32_t thread, const MemRef& ref) {
  PMACX_CHECK(thread < threads_, "thread index out of range");
  PMACX_CHECK(ref.size > 0, "zero-size memory reference");
  if (current_ == nullptr) current_ = &scopes_[scope_];
  AccessCounters& scoped = *current_;

  auto count_ref = [&](AccessCounters& c) {
    ++c.refs;
    if (ref.is_store)
      ++c.stores;
    else
      ++c.loads;
    c.bytes += ref.size;
  };
  count_ref(totals_);
  count_ref(scoped);

  const std::uint64_t first_line = ref.addr >> line_shift_;
  const std::uint64_t last_line = (ref.addr + ref.size - 1) >> line_shift_;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    if (config_.sample_shift != 0 &&
        (line & ((1ull << config_.sample_shift) - 1)) != 0)
      continue;
    ++totals_.line_accesses;
    ++scoped.line_accesses;
    bool resolved = false;
    for (std::size_t lvl = 0; lvl < config_.levels.size() && !resolved; ++lvl) {
      CacheLevel& level = lvl < shared_from_
                              ? private_[thread][lvl]
                              : shared_[lvl - shared_from_];
      const AccessOutcome outcome = level.access(line, ref.is_store);
      if (outcome.writeback) {
        ++totals_.writebacks;
        ++scoped.writebacks;
      }
      if (outcome.hit) {
        ++totals_.level_hits[lvl];
        ++scoped.level_hits[lvl];
        resolved = true;
      }
    }
    if (!resolved) {
      ++totals_.memory_accesses;
      ++scoped.memory_accesses;
    }
  }
}

const AccessCounters& ThreadedHierarchy::scope(std::uint64_t block_id) const {
  static const AccessCounters kEmpty{};
  const auto it = scopes_.find(block_id);
  return it == scopes_.end() ? kEmpty : it->second;
}

}  // namespace pmacx::memsim
