// Multi-level cache hierarchy with per-scope (basic-block) accounting.
//
// This is the "cache simulator which mimics the structure of the system
// being predicted" of Fig. 2: the tracer streams every memory reference of
// the running (synthetic) application through it, and the hierarchy
// accumulates, per basic block, the hit counts from which the trace file's
// per-level hit rates are derived.
//
// Probing is sequential and non-inclusive: a reference that misses level i
// probes level i+1 and the line is installed in every probed level
// (write-allocate on both loads and stores, as the paper's model does not
// distinguish store miss policies).  Hit rates are reported *cumulatively* —
// hit_rate(j) is the fraction of line accesses resolved at level ≤ j — which
// matches the paper's Tables II/III where L1 ≤ L2 ≤ L3 rates grow as data
// migrates into cache.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "memsim/cache.hpp"
#include "memsim/config.hpp"
#include "memsim/ref_block.hpp"

namespace pmacx::memsim {

/// One logical memory reference issued by the application.
struct MemRef {
  std::uint64_t addr = 0;   ///< byte address
  std::uint32_t size = 8;   ///< bytes touched (split into lines internally)
  bool is_store = false;
};

/// Maximum cache levels supported (the paper's systems have 2 or 3).
inline constexpr std::size_t kMaxLevels = 3;

/// Access statistics for one accounting scope (a basic block) or the whole
/// stream.
struct AccessCounters {
  std::uint64_t refs = 0;           ///< logical references (MemRef count)
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t bytes = 0;          ///< total bytes referenced
  std::uint64_t line_accesses = 0;  ///< line-granularity probes issued
  /// level_hits[i] = line accesses resolved exactly at level i.
  std::array<std::uint64_t, kMaxLevels> level_hits{};
  std::uint64_t memory_accesses = 0;  ///< line accesses that missed every level
  std::uint64_t tlb_misses = 0;       ///< page-walks (0 unless a TLB is configured)
  std::uint64_t writebacks = 0;       ///< dirty evictions across all levels

  /// Cumulative hit rate at `level` (0-based): fraction of line accesses
  /// resolved at level ≤ `level`.  Returns 0 when no accesses were made.
  double cumulative_hit_rate(std::size_t level) const;

  /// Merges another counter set into this one.
  void merge(const AccessCounters& other);
};

/// The simulated hierarchy.  Not thread-safe by design: each simulated MPI
/// task owns its own hierarchy instance (as in the paper, one simulator per
/// traced process).
class CacheHierarchy {
 public:
  /// Validates and captures the configuration.
  explicit CacheHierarchy(HierarchyConfig config);

  /// Sets the accounting scope for subsequent accesses; scopes are created
  /// on first use.  Scope id 0 is reserved for "no block".
  void set_scope(std::uint64_t block_id);

  /// Streams one reference through the hierarchy, updating the totals and
  /// the current scope's counters.
  void access(const MemRef& ref);

  /// Replays a staged block of references within the current scope,
  /// counter-identical to calling access() per reference.  When the
  /// configuration allows (no prefetcher, non-inclusive, deterministic
  /// replacement) the block takes the grouped fast path: references are
  /// flattened into line probes once, then each level processes its
  /// surviving probes bucketed by set index in ascending set order.
  /// Within a set, probes keep stream order, and set states are mutually
  /// independent, so every hit/victim decision — and therefore every
  /// counter — matches the one-at-a-time walk; what changes is only the
  /// memory-access pattern, which turns random metadata walks into
  /// per-level ascending sweeps the host prefetcher can stream.
  void access_block(const RefBlock& block);

  /// Aggregate counters across all scopes.
  const AccessCounters& totals() const { return totals_; }

  /// Per-scope counters; missing scope yields a zeroed counter set.
  const AccessCounters& scope(std::uint64_t block_id) const;

  /// All scopes touched so far.
  const std::unordered_map<std::uint64_t, AccessCounters>& scopes() const { return scopes_; }

  /// Number of configured cache levels.
  std::size_t num_levels() const { return levels_.size(); }

  /// Prefetch lines issued by the stride prefetcher so far.
  std::uint64_t prefetches_issued() const { return prefetches_issued_; }

  /// Empties all cache contents and statistics.
  void reset();

  const HierarchyConfig& config() const { return config_; }

 private:
  void access_one(std::uint64_t addr, std::uint32_t size, bool is_store,
                  AccessCounters& scoped);
  void access_block_grouped(const RefBlock& block, AccessCounters& scoped);
  void tlb_access(std::uint64_t page, AccessCounters& scoped);
  void prefetcher_observe_miss(std::uint64_t line);

  HierarchyConfig config_;
  std::vector<CacheLevel> levels_;
  std::uint32_t line_shift_;
  std::uint64_t scope_ = 0;
  AccessCounters totals_;
  std::unordered_map<std::uint64_t, AccessCounters> scopes_;
  /// Hot pointer to scopes_[scope_]; valid because unordered_map nodes are
  /// pointer-stable across rehash.  Avoids a hash lookup per access.
  AccessCounters* current_ = nullptr;

  // TLB: page → LRU stamp, bounded by config_.tlb.entries.
  std::unordered_map<std::uint64_t, std::uint64_t> tlb_;
  std::uint64_t tlb_clock_ = 0;

  // Stride prefetcher stream table.
  struct Stream {
    std::uint64_t next_line = 0;  ///< expected next miss of this stream
    std::int64_t stride = 0;
    bool valid = false;
  };
  std::vector<Stream> streams_;
  std::size_t stream_cursor_ = 0;
  std::uint64_t prefetches_issued_ = 0;

  /// True when access_block may take the grouped level-at-a-time path:
  /// prefetching would couple miss order across sets, inclusive
  /// back-invalidation couples levels, and Random replacement consumes rng
  /// draws in probe order.  Fixed by the config, so computed once.
  bool grouped_replay_ok_ = false;
  // Block-replay scratch, reused across blocks to stay allocation-free.
  // Probes are staged structure-of-arrays so the batched probe kernels
  // take plain flat buffers.
  std::vector<std::uint64_t> block_lines_;     ///< probe line addresses
  std::vector<std::uint8_t> block_stores_;     ///< probe store flags
  std::vector<std::uint8_t> block_resolved_;   ///< grouped-replay hit marks
  std::vector<std::uint32_t> block_order_a_;   ///< ping-pong survivor lists:
  std::vector<std::uint32_t> block_order_b_;   ///<   miss indices per level
  std::vector<std::uint32_t> block_grouped_;   ///< probe indices by set
  std::vector<std::uint32_t> block_sets_;      ///< per-set prefix offsets
  std::vector<std::uint32_t> block_cursor_;    ///< scatter cursors
};

}  // namespace pmacx::memsim
