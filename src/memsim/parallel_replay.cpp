#include "memsim/parallel_replay.hpp"

#include <algorithm>
#include <string>

#include "memsim/ref_block.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/threadpool.hpp"

namespace pmacx::memsim {

std::vector<RankReplay> replay_ranks(const HierarchyConfig& config, std::uint32_t ranks,
                                     std::uint64_t refs_per_rank,
                                     const RankStreamFactory& make_stream,
                                     util::ThreadPool* pool) {
  PMACX_CHECK(static_cast<bool>(make_stream), "replay_ranks requires a stream factory");
  util::metrics::StageTimer timer("memsim.replay");

  // References are staged into an arena-backed SoA block and replayed
  // block-at-a-time: the generator and the simulator each run over a dense
  // array instead of interleaving per reference.  Staging order == replay
  // order, so the counters match the one-at-a-time path exactly.
  constexpr std::size_t kBlockRefs = 4096;
  auto replay_one = [&](std::size_t index) {
    const auto rank = static_cast<std::uint32_t>(index);
    RankReplay result;
    result.rank = rank;
    CacheHierarchy hierarchy(config);  // private: no sharing across ranks
    hierarchy.set_scope(rank + 1);
    RefGenerator next = make_stream(rank);
    util::Arena arena;
    RefBlockBuilder block(arena, kBlockRefs);
    std::uint64_t remaining = refs_per_rank;
    while (remaining > 0) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(remaining, kBlockRefs);
      block.clear();
      for (std::uint64_t i = 0; i < chunk; ++i) {
        const MemRef ref = next();
        block.push(ref.addr, ref.size, ref.is_store);
      }
      hierarchy.access_block(block.block());
      remaining -= chunk;
    }
    result.counters = hierarchy.totals();
    return result;
  };

  std::vector<RankReplay> results;
  if (pool != nullptr && !pool->serial() && ranks > 1) {
    results = pool->parallel_map<RankReplay>(ranks, replay_one);
  } else {
    results.reserve(ranks);
    for (std::uint32_t rank = 0; rank < ranks; ++rank) results.push_back(replay_one(rank));
  }

  // Flush aggregate tallies once per call, in rank order — the per-access
  // path stays atomic-free and the totals match the serial path exactly.
  AccessCounters totals;
  for (const RankReplay& replay : results) totals.merge(replay.counters);
  util::metrics::Registry& metrics = util::metrics::Registry::global();
  metrics.counter("memsim.replay.ranks").add(ranks);
  metrics.counter("memsim.refs").add(totals.refs);
  metrics.counter("memsim.loads").add(totals.loads);
  metrics.counter("memsim.stores").add(totals.stores);
  metrics.counter("memsim.bytes").add(totals.bytes);
  metrics.counter("memsim.line_accesses").add(totals.line_accesses);
  for (std::size_t lvl = 0; lvl < config.levels.size() && lvl < kMaxLevels; ++lvl)
    metrics.counter("memsim.hits.l" + std::to_string(lvl + 1)).add(totals.level_hits[lvl]);
  metrics.counter("memsim.memory_accesses").add(totals.memory_accesses);
  metrics.counter("memsim.writebacks").add(totals.writebacks);
  return results;
}

}  // namespace pmacx::memsim
