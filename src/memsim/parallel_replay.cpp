#include "memsim/parallel_replay.hpp"

#include "util/error.hpp"
#include "util/threadpool.hpp"

namespace pmacx::memsim {

std::vector<RankReplay> replay_ranks(const HierarchyConfig& config, std::uint32_t ranks,
                                     std::uint64_t refs_per_rank,
                                     const RankStreamFactory& make_stream,
                                     util::ThreadPool* pool) {
  PMACX_CHECK(static_cast<bool>(make_stream), "replay_ranks requires a stream factory");

  auto replay_one = [&](std::size_t index) {
    const auto rank = static_cast<std::uint32_t>(index);
    RankReplay result;
    result.rank = rank;
    CacheHierarchy hierarchy(config);  // private: no sharing across ranks
    hierarchy.set_scope(rank + 1);
    RefGenerator next = make_stream(rank);
    for (std::uint64_t i = 0; i < refs_per_rank; ++i) hierarchy.access(next());
    result.counters = hierarchy.totals();
    return result;
  };

  if (pool != nullptr && !pool->serial() && ranks > 1) {
    return pool->parallel_map<RankReplay>(ranks, replay_one);
  }
  std::vector<RankReplay> results;
  results.reserve(ranks);
  for (std::uint32_t rank = 0; rank < ranks; ++rank) results.push_back(replay_one(rank));
  return results;
}

}  // namespace pmacx::memsim
