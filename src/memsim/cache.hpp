// Single set-associative cache level.
//
// Operates on line addresses (byte address >> log2(line size)); the
// hierarchy handles line splitting of multi-byte references.  Supports LRU,
// FIFO and (seeded, deterministic) random replacement, write-back dirty
// tracking, and a side-door install path for prefetches.  LRU/FIFO recency
// is a per-set move-to-front rank list (see util::simd::SetView): exact —
// it makes the same eviction decisions as last-use timestamps — while
// storing 2 bytes per way instead of 8, which is what bounds the
// simulator's own metadata traffic on big levels.
//
// Way metadata is laid out structure-of-arrays (flat tag/rank/valid/dirty
// arrays, set-major): the tag-match scan on the access path runs over a
// dense u64 row and dispatches to an AVX2 compare (util::simd::find_tag)
// on capable hardware.  The kernel preserves way order, so hit/victim
// behaviour — and therefore every simulated counter — is identical to the
// scalar scan.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "memsim/config.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace pmacx::memsim {

/// What one demand access or install did.
struct AccessOutcome {
  bool hit = false;        ///< line was resident
  bool writeback = false;  ///< a dirty victim was evicted
  bool evicted = false;    ///< a valid victim was displaced
  std::uint64_t evicted_line = 0;  ///< its line address (when evicted)
};

/// One level of cache.  Copyable so hierarchies can be cloned for
/// what-if exploration.
class CacheLevel {
 public:
  /// `config` must already be validated by HierarchyConfig::validate().
  CacheLevel(const CacheLevelConfig& config, std::uint64_t seed);

  /// Demand access: looks up `line_addr`; on miss, installs it
  /// (write-allocate) evicting the policy's victim.  Stores mark the line
  /// dirty; evicting a dirty victim reports a writeback.
  AccessOutcome access(std::uint64_t line_addr, bool is_store);

  /// Load-only convenience overload.
  bool access(std::uint64_t line_addr) { return access(line_addr, false).hit; }

  /// Prefetch install: inserts the line clean if absent (reporting any
  /// dirty-victim writeback); a resident line only refreshes LRU state.
  /// Returns hit=true when the line was already present.
  AccessOutcome install(std::uint64_t line_addr);

  /// Demand replay of staged block probes in stream order (the hierarchy's
  /// block fast path for levels whose metadata is small enough that set
  /// grouping buys nothing).  Probe p = indices[k] (p = k when `indices`
  /// is null) looks up lines[p] with store flag stores[p]; each probe goes
  /// through exactly the demand half of touch(), and miss indices land in
  /// `misses` (room for `count` entries) in visit order — which is exactly
  /// the next level's ordered input.  Only valid for Lru/Fifo replacement
  /// (Random would consume rng draws in a different order).
  util::simd::ProbeReplay replay_stream(const std::uint64_t* lines,
                                        const std::uint8_t* stores,
                                        const std::uint32_t* indices,
                                        std::size_t count,
                                        std::uint32_t* misses);

  /// Grouped demand replay of a staged block (the hierarchy's ascending-
  /// sweep fast path for levels with large metadata).  `grouped` holds
  /// probe indices bucketed by this level's set index, `set_start` the
  /// nsets+1 prefix offsets of those buckets; within a bucket indices
  /// ascend, i.e. keep original stream order.  Each probe goes through
  /// exactly the demand half of touch(); hits set resolved[p] = 1 so the
  /// caller can recover the ordered survivor list.  Set states are
  /// mutually independent and within-set order is preserved, so every
  /// hit/victim decision matches per-reference access() calls.  Lru/Fifo
  /// only, as above.
  util::simd::ProbeReplay replay_grouped(const std::uint64_t* lines,
                                         const std::uint8_t* stores,
                                         std::uint8_t* resolved,
                                         const std::uint32_t* grouped,
                                         const std::uint32_t* set_start);

  /// Way-metadata footprint, the hierarchy's grouping heuristic input.
  std::size_t metadata_bytes() const {
    return static_cast<std::size_t>(sets_) * ways_ *
           (sizeof(std::uint64_t) + sizeof(std::uint16_t) + 2);
  }

  /// Probe without side effects: true if the line is currently resident.
  bool contains(std::uint64_t line_addr) const;

  /// Removes the line if resident (back-invalidation for inclusive
  /// hierarchies).  Returns true when something was invalidated.
  bool invalidate(std::uint64_t line_addr);

  /// Drops all contents and resets the recency ranks.
  void clear();

  const CacheLevelConfig& config() const { return config_; }
  std::uint64_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }

 private:
  AccessOutcome touch(std::uint64_t line_addr, bool is_store, bool demand);
  std::size_t victim_in_set(std::size_t set_base);

  /// First way holding `line_addr` in the set starting at `base`, or -1.
  int find_way(std::size_t base, std::uint64_t line_addr) const {
    return find_tag_(tags_.data() + base, valid_.data() + base, ways_, line_addr);
  }

  /// Moves a way (set-relative) to rank 0 within its set.
  void promote(std::size_t base, std::size_t way_rel);

  CacheLevelConfig config_;
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint64_t set_mask_;
  // Way metadata, structure-of-arrays: index set * ways_ + way.
  std::vector<std::uint64_t> tags_;
  /// Per-set permutation of 0..ways-1; rank 0 = most recently used (LRU)
  /// or filled (FIFO), rank ways-1 = eviction candidate.
  std::vector<std::uint16_t> ranks_;
  std::vector<std::uint8_t> valid_;
  std::vector<std::uint8_t> dirty_;
  /// A SetView over this level's metadata for the batched probe kernels.
  util::simd::SetView view();

  /// Probe kernels, resolved once at construction (per-access dispatch
  /// would put an atomic load + env lookup on the hot path).  Tests that
  /// pin util::simd::force_level must construct the hierarchy afterwards.
  decltype(util::simd::Kernels::find_tag) find_tag_;
  decltype(util::simd::Kernels::probe_stream) probe_stream_;
  decltype(util::simd::Kernels::probe_grouped) probe_grouped_;
  util::Rng rng_;
};

}  // namespace pmacx::memsim
