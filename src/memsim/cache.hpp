// Single set-associative cache level.
//
// Operates on line addresses (byte address >> log2(line size)); the
// hierarchy handles line splitting of multi-byte references.  Supports LRU,
// FIFO and (seeded, deterministic) random replacement, write-back dirty
// tracking, and a side-door install path for prefetches.  LRU is
// implemented with per-way timestamps, which is exact and keeps the
// structure a flat array — fast and cache-friendly for the simulator
// itself.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/config.hpp"
#include "util/rng.hpp"

namespace pmacx::memsim {

/// What one demand access or install did.
struct AccessOutcome {
  bool hit = false;        ///< line was resident
  bool writeback = false;  ///< a dirty victim was evicted
  bool evicted = false;    ///< a valid victim was displaced
  std::uint64_t evicted_line = 0;  ///< its line address (when evicted)
};

/// One level of cache.  Copyable so hierarchies can be cloned for
/// what-if exploration.
class CacheLevel {
 public:
  /// `config` must already be validated by HierarchyConfig::validate().
  CacheLevel(const CacheLevelConfig& config, std::uint64_t seed);

  /// Demand access: looks up `line_addr`; on miss, installs it
  /// (write-allocate) evicting the policy's victim.  Stores mark the line
  /// dirty; evicting a dirty victim reports a writeback.
  AccessOutcome access(std::uint64_t line_addr, bool is_store);

  /// Load-only convenience overload.
  bool access(std::uint64_t line_addr) { return access(line_addr, false).hit; }

  /// Prefetch install: inserts the line clean if absent (reporting any
  /// dirty-victim writeback); a resident line only refreshes LRU state.
  /// Returns hit=true when the line was already present.
  AccessOutcome install(std::uint64_t line_addr);

  /// Probe without side effects: true if the line is currently resident.
  bool contains(std::uint64_t line_addr) const;

  /// Removes the line if resident (back-invalidation for inclusive
  /// hierarchies).  Returns true when something was invalidated.
  bool invalidate(std::uint64_t line_addr);

  /// Drops all contents and timestamps.
  void clear();

  const CacheLevelConfig& config() const { return config_; }
  std::uint64_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;  ///< LRU: last use; FIFO: fill time
    bool valid = false;
    bool dirty = false;
  };

  AccessOutcome touch(std::uint64_t line_addr, bool is_store, bool demand);
  std::size_t victim_in_set(std::size_t set_base);

  CacheLevelConfig config_;
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint64_t set_mask_;
  std::uint64_t clock_ = 0;
  std::vector<Way> ways_storage_;  ///< sets_ * ways_, set-major
  util::Rng rng_;
};

}  // namespace pmacx::memsim
