#include "memsim/working_set.hpp"

#include <bit>

#include "util/error.hpp"

namespace pmacx::memsim {

WorkingSetTracker::WorkingSetTracker(std::uint32_t line_bytes) : line_bytes_(line_bytes) {
  PMACX_CHECK(line_bytes != 0 && (line_bytes & (line_bytes - 1)) == 0,
              "line size must be a power of two");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(line_bytes)));
}

void WorkingSetTracker::touch(std::uint64_t addr, std::uint32_t size) {
  PMACX_CHECK(size > 0, "zero-size touch");
  const std::uint64_t first = addr >> line_shift_;
  const std::uint64_t last = (addr + size - 1) >> line_shift_;
  auto& scoped = scope_lines_[scope_];
  for (std::uint64_t line = first; line <= last; ++line) {
    total_lines_.insert(line);
    scoped.insert(line);
  }
}

std::uint64_t WorkingSetTracker::scope_bytes(std::uint64_t block_id) const {
  const auto it = scope_lines_.find(block_id);
  if (it == scope_lines_.end()) return 0;
  return static_cast<std::uint64_t>(it->second.size()) * line_bytes_;
}

std::uint64_t WorkingSetTracker::total_bytes() const {
  return static_cast<std::uint64_t>(total_lines_.size()) * line_bytes_;
}

void WorkingSetTracker::reset() {
  total_lines_.clear();
  scope_lines_.clear();
  scope_ = 0;
}

}  // namespace pmacx::memsim
