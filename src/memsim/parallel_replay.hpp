// Concurrent replay of independent rank hierarchies.
//
// A CacheHierarchy is deliberately not thread-safe: each simulated MPI task
// owns one (hierarchy.hpp).  That ownership structure is exactly what makes
// multi-rank replay embarrassingly parallel — every rank streams its own
// references through its own private hierarchy, so N ranks simulate
// concurrently with zero shared mutable state.  replay_ranks fans the rank
// simulations out across a util::ThreadPool and returns the per-rank
// counters in rank order; because nothing is shared, the parallel result is
// bit-identical to a serial rank-by-rank replay regardless of scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "memsim/hierarchy.hpp"

namespace pmacx::util {
class ThreadPool;
}

namespace pmacx::memsim {

/// One rank's replay outcome: its aggregate counters after streaming its
/// references through a private copy of the hierarchy.
struct RankReplay {
  std::uint32_t rank = 0;
  AccessCounters counters;
};

/// Produces one rank's reference stream; called `refs_per_rank` times.
using RefGenerator = std::function<MemRef()>;

/// Builds a rank-local generator.  Must be callable concurrently for
/// different ranks (each invocation should capture only rank-local state,
/// e.g. a per-rank seeded stream).
using RankStreamFactory = std::function<RefGenerator(std::uint32_t rank)>;

/// Replays `ranks` independent rank streams, each through its own private
/// hierarchy configured from `config`, fanning the simulations out across
/// `pool` (serial when `pool` is null or single-threaded).  Every rank's
/// stream is drawn from `make_stream(rank)` and driven for `refs_per_rank`
/// references under accounting scope `rank + 1` (scope 0 is reserved).
std::vector<RankReplay> replay_ranks(const HierarchyConfig& config, std::uint32_t ranks,
                                     std::uint64_t refs_per_rank,
                                     const RankStreamFactory& make_stream,
                                     util::ThreadPool* pool = nullptr);

}  // namespace pmacx::memsim
