// Working-set (data footprint) tracking.
//
// Element (5) of the paper's per-block feature vector is the block's working
// set size; the tracer measures it as the number of distinct cache lines the
// block touches, times the line size.  Tracked per scope so every basic
// block gets its own footprint, plus a global footprint for the task.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace pmacx::memsim {

/// Counts distinct cache lines per scope and overall.
class WorkingSetTracker {
 public:
  /// `line_bytes` must be a power of two (same as the simulated hierarchy).
  explicit WorkingSetTracker(std::uint32_t line_bytes);

  /// Selects the accounting scope for subsequent touches.
  void set_scope(std::uint64_t block_id) { scope_ = block_id; }

  /// Records that [addr, addr+size) was referenced.
  void touch(std::uint64_t addr, std::uint32_t size);

  /// Footprint of one scope in bytes (0 for unknown scopes).
  std::uint64_t scope_bytes(std::uint64_t block_id) const;

  /// Footprint of the entire stream in bytes.
  std::uint64_t total_bytes() const;

  /// Distinct lines in the entire stream.
  std::uint64_t total_lines() const { return total_lines_.size(); }

  /// Clears all state.
  void reset();

 private:
  std::uint32_t line_bytes_;
  std::uint32_t line_shift_;
  std::uint64_t scope_ = 0;
  std::unordered_set<std::uint64_t> total_lines_;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> scope_lines_;
};

}  // namespace pmacx::memsim
