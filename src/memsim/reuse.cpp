#include "memsim/reuse.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pmacx::memsim {

void ReuseDistanceAnalyzer::fenwick_add(std::size_t index, std::int64_t delta) {
  for (std::size_t i = index + 1; i <= tree_.size(); i += i & (~i + 1))
    tree_[i - 1] += delta;
}

std::int64_t ReuseDistanceAnalyzer::fenwick_sum(std::size_t index) const {
  std::int64_t total = 0;
  for (std::size_t i = std::min(index + 1, tree_.size()); i > 0; i -= i & (~i + 1))
    total += tree_[i - 1];
  return total;
}

void ReuseDistanceAnalyzer::rebuild_tree(std::size_t capacity) {
  // A Fenwick tree cannot simply be zero-extended (new nodes cover ranges of
  // old indices), so growth and compaction both rebuild from `marks_`.
  marks_.resize(capacity, 0);
  tree_.assign(capacity, 0);
  for (std::size_t i = 0; i < capacity; ++i)
    if (marks_[i]) fenwick_add(i, +1);
}

void ReuseDistanceAnalyzer::compact() {
  // Renumber live lines by their last-access order, shrinking the timeline
  // back to exactly `distinct lines` slots.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> order;  // (time, line)
  order.reserve(last_time_.size());
  for (const auto& [line, time] : last_time_) order.emplace_back(time, line);
  std::sort(order.begin(), order.end());

  now_ = 0;
  // Leave headroom: a compaction that ends exactly full would immediately
  // index one past the timeline on the caller's next write.
  const std::size_t capacity = std::max<std::size_t>(2 * order.size(), 1024);
  marks_.assign(capacity, 0);
  for (const auto& [time, line] : order) {
    last_time_[line] = now_;
    marks_[static_cast<std::size_t>(now_)] = 1;
    ++now_;
  }
  live_marks_ = order.size();
  rebuild_tree(capacity);
}

std::uint64_t ReuseDistanceAnalyzer::access(std::uint64_t line_addr) {
  ++total_;
  // Keep the timeline bounded: compact when it is twice the footprint,
  // otherwise double it.  Both rebuild the Fenwick tree, amortized O(1).
  if (now_ >= tree_.size()) {
    if (live_marks_ > 0 && now_ >= 2 * live_marks_ && now_ >= 1024) {
      compact();
    } else {
      rebuild_tree(tree_.empty() ? 1024 : tree_.size() * 2);
    }
  }

  std::uint64_t distance = kInfinite;
  const auto it = last_time_.find(line_addr);
  if (it == last_time_.end()) {
    ++cold_;
  } else {
    const std::uint64_t prev = it->second;
    // Marked slots strictly after `prev`: distinct lines touched since.
    const std::int64_t later =
        fenwick_sum(tree_.size() - 1) - fenwick_sum(static_cast<std::size_t>(prev));
    PMACX_ASSERT(later >= 0, "negative reuse distance");
    distance = static_cast<std::uint64_t>(later);
    fenwick_add(static_cast<std::size_t>(prev), -1);
    marks_[static_cast<std::size_t>(prev)] = 0;
    --live_marks_;
    ++histogram_[distance];
  }

  last_time_[line_addr] = now_;
  fenwick_add(static_cast<std::size_t>(now_), +1);
  marks_[static_cast<std::size_t>(now_)] = 1;
  ++live_marks_;
  ++now_;
  return distance;
}

std::uint64_t ReuseDistanceAnalyzer::count_at(std::uint64_t distance) const {
  const auto it = histogram_.find(distance);
  return it == histogram_.end() ? 0 : it->second;
}

std::uint64_t ReuseDistanceAnalyzer::hits_for_capacity(std::uint64_t capacity_lines) const {
  std::uint64_t hits = 0;
  for (const auto& [distance, count] : histogram_) {
    if (distance >= capacity_lines) break;
    hits += count;
  }
  return hits;
}

}  // namespace pmacx::memsim
