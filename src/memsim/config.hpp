// Cache hierarchy configuration.
//
// The paper's tracer feeds each application memory reference through a cache
// simulator configured to *mimic the target system* (Section III-A), so the
// collected hit rates describe the target machine even though the trace was
// collected on the base system.  These structs describe such a target
// hierarchy; machine/targets.hpp provides the predefined systems used in the
// experiments (Cray-XT5-like base, BlueWaters-like target, and the Table III
// systems A and B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pmacx::memsim {

/// Replacement policy of one cache level.
enum class Replacement {
  Lru,    ///< least recently used (default; matches the stack property tests)
  Fifo,   ///< first in, first out
  Random  ///< uniform random victim (deterministic given the level's seed)
};

/// Human-readable policy name.
std::string replacement_name(Replacement policy);

/// Geometry and policy of a single cache level.
struct CacheLevelConfig {
  std::string name = "L1";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;       ///< power of two, shared by all levels
  std::uint32_t associativity = 8;     ///< ways per set; 0 means fully associative
  Replacement replacement = Replacement::Lru;
  double latency_cycles = 4;           ///< load-to-use latency when hitting here
  double bandwidth_bytes_per_cycle = 64;  ///< sustained transfer rate from this level

  /// Number of sets implied by the geometry (after validate()).
  std::uint64_t sets() const;
};

/// Hardware stride prefetcher (off by default so baseline behaviour stays
/// the paper's pure demand-fetch model; ext_prefetch quantifies its effect).
struct PrefetcherConfig {
  bool enabled = false;
  std::uint32_t streams = 8;        ///< concurrently tracked access streams
  std::uint32_t degree = 2;         ///< lines fetched ahead on a stream hit
  std::uint32_t install_level = 0;  ///< shallowest level prefetches land in
};

/// Translation lookaside buffer (off by default, as above).
struct TlbConfig {
  bool enabled = false;
  std::uint32_t entries = 64;       ///< fully associative, LRU
  std::uint32_t page_bytes = 4096;  ///< power of two
  double miss_cycles = 30;          ///< page-walk cost charged per miss
};

/// A full hierarchy: 1–3 levels plus main memory parameters.
struct HierarchyConfig {
  std::string name = "generic";
  std::vector<CacheLevelConfig> levels;
  double memory_latency_cycles = 200;
  double memory_bandwidth_bytes_per_cycle = 8;
  /// Inclusive hierarchy: evicting a line from level i+1 back-invalidates
  /// it from every shallower level (Intel-style).  Off = non-inclusive
  /// (the default, and the paper-era AMD/Cray behaviour).
  bool inclusive = false;
  /// Set sampling: when > 0, only the 1/2^sample_shift of cache lines whose
  /// low address bits are zero is simulated.  Those lines map to exactly
  /// the matching fraction of every level's sets, so the sample competes
  /// for a proportionally shrunk cache and hit-*rate* estimates stay
  /// unbiased (the classic set-sampling technique).  Absolute hit/miss
  /// *counts* then cover only the sample; consumers that need totals must
  /// scale by 2^sample_shift.  Every level needs ≥ 2^sample_shift sets.
  /// 0 = simulate every line.
  std::uint32_t sample_shift = 0;
  PrefetcherConfig prefetch;
  TlbConfig tlb;
  std::uint64_t seed = 0x5eed;  ///< used only by Random replacement

  /// Throws util::Error unless every level is well-formed: power-of-two line
  /// and set counts, identical line size across levels, strictly growing
  /// capacities, 1–3 levels.
  void validate() const;

  /// Line size shared by all levels.
  std::uint32_t line_bytes() const;
};

}  // namespace pmacx::memsim
