#include "memsim/hierarchy.hpp"

#include <bit>

#include "util/error.hpp"

namespace pmacx::memsim {

namespace {
/// Way-metadata size above which the grouped set-sweep replay pays for its
/// bucketing passes.  Stream-order replay with a few-probes-ahead software
/// prefetch hides the metadata walk for any level whose tags/stamps fit the
/// host's last-level cache, and the grouped path's bucketing gathers plus
/// same-set store-to-load chains cost more than the sweep saves there, so
/// grouping only wins once a level's metadata decisively exceeds host LLC.
constexpr std::size_t kGroupedSweepBytes = 16 * 1024 * 1024;
}  // namespace

double AccessCounters::cumulative_hit_rate(std::size_t level) const {
  PMACX_CHECK(level < kMaxLevels, "cache level out of range");
  if (line_accesses == 0) return 0.0;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i <= level; ++i) hits += level_hits[i];
  return static_cast<double>(hits) / static_cast<double>(line_accesses);
}

void AccessCounters::merge(const AccessCounters& other) {
  refs += other.refs;
  loads += other.loads;
  stores += other.stores;
  bytes += other.bytes;
  line_accesses += other.line_accesses;
  for (std::size_t i = 0; i < kMaxLevels; ++i) level_hits[i] += other.level_hits[i];
  memory_accesses += other.memory_accesses;
  tlb_misses += other.tlb_misses;
  writebacks += other.writebacks;
}

CacheHierarchy::CacheHierarchy(HierarchyConfig config) : config_(std::move(config)) {
  config_.validate();
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(config_.line_bytes())));
  levels_.reserve(config_.levels.size());
  for (std::size_t i = 0; i < config_.levels.size(); ++i)
    levels_.emplace_back(config_.levels[i], config_.seed + i);
  if (config_.prefetch.enabled) streams_.resize(config_.prefetch.streams);
  grouped_replay_ok_ = !config_.prefetch.enabled && !config_.inclusive;
  for (const CacheLevelConfig& level : config_.levels)
    if (level.replacement == Replacement::Random) grouped_replay_ok_ = false;
}

void CacheHierarchy::tlb_access(std::uint64_t page, AccessCounters& scoped) {
  ++tlb_clock_;
  const auto it = tlb_.find(page);
  if (it != tlb_.end()) {
    it->second = tlb_clock_;
    return;
  }
  ++totals_.tlb_misses;
  ++scoped.tlb_misses;
  if (tlb_.size() >= config_.tlb.entries) {
    // Evict the least recently used entry (linear scan over ≤ `entries`
    // map nodes; only on misses, so the common path stays O(1)).
    auto victim = tlb_.begin();
    for (auto walk = tlb_.begin(); walk != tlb_.end(); ++walk)
      if (walk->second < victim->second) victim = walk;
    tlb_.erase(victim);
  }
  tlb_.emplace(page, tlb_clock_);
}

void CacheHierarchy::prefetcher_observe_miss(std::uint64_t line) {
  const PrefetcherConfig& pf = config_.prefetch;

  auto issue = [&](const Stream& stream) {
    for (std::uint32_t k = 1; k <= pf.degree; ++k) {
      const std::int64_t target = static_cast<std::int64_t>(stream.next_line) +
                                  stream.stride * static_cast<std::int64_t>(k - 1);
      if (target < 0) continue;
      const AccessOutcome outcome =
          levels_[pf.install_level].install(static_cast<std::uint64_t>(target));
      if (!outcome.hit) ++prefetches_issued_;
      if (outcome.writeback) ++totals_.writebacks;
    }
  };

  // Continuation of a locked stream?
  for (Stream& stream : streams_) {
    if (stream.valid && stream.stride != 0 &&
        line == stream.next_line - stream.stride) {
      // Re-detected the previous miss (multi-line refs); nothing new.
      return;
    }
    if (stream.valid && stream.stride != 0 && line == stream.next_line) {
      stream.next_line = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(stream.next_line) + stream.stride);
      issue(stream);
      return;
    }
  }
  // Lock a stride on a nearby previous miss?
  for (Stream& stream : streams_) {
    if (!stream.valid) continue;
    const std::int64_t delta =
        static_cast<std::int64_t>(line) - static_cast<std::int64_t>(stream.next_line);
    if (delta != 0 && delta >= -4 && delta <= 4) {
      stream.stride = delta;
      stream.next_line = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(line) + delta);
      issue(stream);
      return;
    }
  }
  // Allocate a fresh stream round-robin.
  Stream& fresh = streams_[stream_cursor_];
  stream_cursor_ = (stream_cursor_ + 1) % streams_.size();
  fresh.valid = true;
  fresh.stride = 0;
  fresh.next_line = line;
}

void CacheHierarchy::set_scope(std::uint64_t block_id) {
  scope_ = block_id;
  current_ = &scopes_[block_id];
}

void CacheHierarchy::access(const MemRef& ref) {
  PMACX_CHECK(ref.size > 0, "zero-size memory reference");
  if (current_ == nullptr) current_ = &scopes_[scope_];
  access_one(ref.addr, ref.size, ref.is_store, *current_);
}

void CacheHierarchy::access_block(const RefBlock& block) {
  if (current_ == nullptr) current_ = &scopes_[scope_];
  AccessCounters& scoped = *current_;
  if (grouped_replay_ok_) {
    access_block_grouped(block, scoped);
    return;
  }
  for (std::size_t i = 0; i < block.count; ++i) {
    PMACX_CHECK(block.size[i] > 0, "zero-size memory reference");
    access_one(block.addr[i], block.size[i], block.is_store[i] != 0, scoped);
  }
}

void CacheHierarchy::access_block_grouped(const RefBlock& block,
                                          AccessCounters& scoped) {
  // Stage: flatten references into line probes in stream order, tallying
  // the reference-level counters as block sums (they are order-independent
  // totals, so adding them once is identical to per-reference increments).
  // The TLB walk stays in stream order here — its LRU state is shared
  // across all pages, so unlike the per-set cache state it is sensitive to
  // the global order — and is independent of the cache levels below.
  block_lines_.clear();
  block_stores_.clear();
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t bytes = 0;
  const std::uint64_t sample_mask =
      config_.sample_shift != 0 ? (1ull << config_.sample_shift) - 1 : 0;
  const bool tlb_enabled = config_.tlb.enabled;
  const std::uint64_t page_shift =
      tlb_enabled ? static_cast<std::uint64_t>(std::countr_zero(
                        static_cast<std::uint64_t>(config_.tlb.page_bytes)))
                  : 0;
  for (std::size_t i = 0; i < block.count; ++i) {
    const std::uint32_t size = block.size[i];
    PMACX_CHECK(size > 0, "zero-size memory reference");
    const std::uint64_t addr = block.addr[i];
    const std::uint8_t is_store = block.is_store[i] != 0 ? 1 : 0;
    if (is_store != 0)
      ++stores;
    else
      ++loads;
    bytes += size;
    if (tlb_enabled) {
      const std::uint64_t first_page = addr >> page_shift;
      const std::uint64_t last_page = (addr + size - 1) >> page_shift;
      for (std::uint64_t page = first_page; page <= last_page; ++page)
        tlb_access(page, scoped);
    }
    const std::uint64_t first_line = addr >> line_shift_;
    const std::uint64_t last_line = (addr + size - 1) >> line_shift_;
    for (std::uint64_t line = first_line; line <= last_line; ++line) {
      if ((line & sample_mask) != 0) continue;  // set sampling (see access_one)
      block_lines_.push_back(line);
      block_stores_.push_back(is_store);
    }
  }
  const auto add_refs = [&](AccessCounters& c) {
    c.refs += block.count;
    c.loads += loads;
    c.stores += stores;
    c.bytes += bytes;
    c.line_accesses += block_lines_.size();
  };
  add_refs(totals_);
  add_refs(scoped);

  // Level-at-a-time replay.  Levels whose way metadata fits comfortably in
  // the host's own caches are replayed in stream order — grouping would
  // only add bucketing passes without improving locality — and emit their
  // miss list, which is exactly the next level's ordered input.  Larger
  // levels bucket their surviving probes by set index (a stable counting
  // sort, so within-set order stays stream order) and replay the buckets
  // in ascending set order, turning the random metadata walk into a sweep.
  const std::size_t nprobes = block_lines_.size();
  std::size_t unresolved = nprobes;
  if (block_order_a_.size() < nprobes) {
    block_order_a_.resize(nprobes);
    block_order_b_.resize(nprobes);
  }
  block_resolved_.assign(nprobes, 0);
  const std::uint64_t* lines = block_lines_.data();
  const std::uint8_t* stores_flags = block_stores_.data();
  std::uint32_t* bufs[2] = {block_order_a_.data(), block_order_b_.data()};
  const std::uint32_t* order = nullptr;  // null: all probes, stream order
  int flip = 0;
  for (std::size_t lvl = 0; lvl < levels_.size() && unresolved > 0; ++lvl) {
    CacheLevel& level = levels_[lvl];
    std::uint32_t* misses = bufs[flip];
    util::simd::ProbeReplay result;
    if (level.metadata_bytes() <= kGroupedSweepBytes) {
      result = level.replay_stream(lines, stores_flags, order, unresolved,
                                   misses);
      order = misses;
      flip ^= 1;
    } else {
      const std::uint64_t nsets = level.sets();
      const std::uint64_t set_mask = nsets - 1;
      block_sets_.assign(static_cast<std::size_t>(nsets) + 1, 0);
      for (std::size_t k = 0; k < unresolved; ++k) {
        const std::uint32_t p =
            order != nullptr ? order[k] : static_cast<std::uint32_t>(k);
        ++block_sets_[static_cast<std::size_t>(lines[p] & set_mask) + 1];
      }
      for (std::size_t s = 1; s <= nsets; ++s)
        block_sets_[s] += block_sets_[s - 1];
      block_cursor_.assign(block_sets_.begin(), block_sets_.end());
      if (block_grouped_.size() < nprobes) block_grouped_.resize(nprobes);
      for (std::size_t k = 0; k < unresolved; ++k) {
        const std::uint32_t p =
            order != nullptr ? order[k] : static_cast<std::uint32_t>(k);
        block_grouped_[block_cursor_[static_cast<std::size_t>(
            lines[p] & set_mask)]++] = p;
      }
      result = level.replay_grouped(lines, stores_flags,
                                    block_resolved_.data(),
                                    block_grouped_.data(), block_sets_.data());
      // Recover the ordered survivor list for the next level: grouped
      // replay marked its hits resolved, so the misses are this level's
      // input minus the resolved probes, in input order.
      if (lvl + 1 < levels_.size() && result.hits < unresolved) {
        std::size_t m = 0;
        for (std::size_t k = 0; k < unresolved; ++k) {
          const std::uint32_t p =
              order != nullptr ? order[k] : static_cast<std::uint32_t>(k);
          if (block_resolved_[p] == 0) misses[m++] = p;
        }
        order = misses;
        flip ^= 1;
      }
    }
    totals_.level_hits[lvl] += result.hits;
    scoped.level_hits[lvl] += result.hits;
    totals_.writebacks += result.writebacks;
    scoped.writebacks += result.writebacks;
    unresolved -= result.hits;
  }
  totals_.memory_accesses += unresolved;
  scoped.memory_accesses += unresolved;
}

void CacheHierarchy::access_one(std::uint64_t addr, std::uint32_t size,
                                bool is_store, AccessCounters& scoped) {
  auto count_ref = [&](AccessCounters& c) {
    ++c.refs;
    if (is_store)
      ++c.stores;
    else
      ++c.loads;
    c.bytes += size;
  };
  count_ref(totals_);
  count_ref(scoped);

  if (config_.tlb.enabled) {
    const std::uint64_t page_shift = static_cast<std::uint64_t>(
        std::countr_zero(static_cast<std::uint64_t>(config_.tlb.page_bytes)));
    const std::uint64_t first_page = addr >> page_shift;
    const std::uint64_t last_page = (addr + size - 1) >> page_shift;
    for (std::uint64_t page = first_page; page <= last_page; ++page)
      tlb_access(page, scoped);
  }

  const std::uint64_t first_line = addr >> line_shift_;
  const std::uint64_t last_line = (addr + size - 1) >> line_shift_;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    // Set sampling: keep only lines whose low bits are zero.  Those lines
    // map to exactly the 1/2^shift of each level's sets with zero low
    // index bits, so the sampled population competes for a proportionally
    // shrunk cache — the condition that keeps hit-rate estimates unbiased.
    // (Sampling on *hashed* bits instead would let the sample enjoy the
    // full capacity and inflate hit rates.)
    if (config_.sample_shift != 0 &&
        (line & ((1ull << config_.sample_shift) - 1)) != 0)
      continue;
    ++totals_.line_accesses;
    ++scoped.line_accesses;
    bool resolved = false;
    bool l1_hit = false;
    for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
      const AccessOutcome outcome = levels_[lvl].access(line, is_store);
      if (outcome.writeback) {
        ++totals_.writebacks;
        ++scoped.writebacks;
      }
      // Inclusive hierarchy: a victim leaving level lvl must also leave
      // every shallower level.
      if (config_.inclusive && outcome.evicted && lvl > 0) {
        for (std::size_t upper = 0; upper < lvl; ++upper)
          levels_[upper].invalidate(outcome.evicted_line);
      }
      if (outcome.hit) {
        ++totals_.level_hits[lvl];
        ++scoped.level_hits[lvl];
        if (lvl == 0) l1_hit = true;
        resolved = true;
        break;
      }
      // Missed this level: the line was installed here (write-allocate) and
      // the probe continues downward.
    }
    if (!resolved) {
      ++totals_.memory_accesses;
      ++scoped.memory_accesses;
    }
    // The stride prefetcher trains on L1 demand misses.
    if (config_.prefetch.enabled && !l1_hit) prefetcher_observe_miss(line);
  }
}

const AccessCounters& CacheHierarchy::scope(std::uint64_t block_id) const {
  static const AccessCounters kEmpty{};
  const auto it = scopes_.find(block_id);
  return it == scopes_.end() ? kEmpty : it->second;
}

void CacheHierarchy::reset() {
  for (CacheLevel& level : levels_) level.clear();
  totals_ = AccessCounters{};
  scopes_.clear();
  scope_ = 0;
  current_ = nullptr;
  tlb_.clear();
  tlb_clock_ = 0;
  for (Stream& stream : streams_) stream = Stream{};
  stream_cursor_ = 0;
  prefetches_issued_ = 0;
}

}  // namespace pmacx::memsim
