#include "memsim/hierarchy.hpp"

#include <bit>

#include "util/error.hpp"

namespace pmacx::memsim {

double AccessCounters::cumulative_hit_rate(std::size_t level) const {
  PMACX_CHECK(level < kMaxLevels, "cache level out of range");
  if (line_accesses == 0) return 0.0;
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i <= level; ++i) hits += level_hits[i];
  return static_cast<double>(hits) / static_cast<double>(line_accesses);
}

void AccessCounters::merge(const AccessCounters& other) {
  refs += other.refs;
  loads += other.loads;
  stores += other.stores;
  bytes += other.bytes;
  line_accesses += other.line_accesses;
  for (std::size_t i = 0; i < kMaxLevels; ++i) level_hits[i] += other.level_hits[i];
  memory_accesses += other.memory_accesses;
  tlb_misses += other.tlb_misses;
  writebacks += other.writebacks;
}

CacheHierarchy::CacheHierarchy(HierarchyConfig config) : config_(std::move(config)) {
  config_.validate();
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(config_.line_bytes())));
  levels_.reserve(config_.levels.size());
  for (std::size_t i = 0; i < config_.levels.size(); ++i)
    levels_.emplace_back(config_.levels[i], config_.seed + i);
  if (config_.prefetch.enabled) streams_.resize(config_.prefetch.streams);
}

void CacheHierarchy::tlb_access(std::uint64_t page, AccessCounters& scoped) {
  ++tlb_clock_;
  const auto it = tlb_.find(page);
  if (it != tlb_.end()) {
    it->second = tlb_clock_;
    return;
  }
  ++totals_.tlb_misses;
  ++scoped.tlb_misses;
  if (tlb_.size() >= config_.tlb.entries) {
    // Evict the least recently used entry (linear scan over ≤ `entries`
    // map nodes; only on misses, so the common path stays O(1)).
    auto victim = tlb_.begin();
    for (auto walk = tlb_.begin(); walk != tlb_.end(); ++walk)
      if (walk->second < victim->second) victim = walk;
    tlb_.erase(victim);
  }
  tlb_.emplace(page, tlb_clock_);
}

void CacheHierarchy::prefetcher_observe_miss(std::uint64_t line) {
  const PrefetcherConfig& pf = config_.prefetch;

  auto issue = [&](const Stream& stream) {
    for (std::uint32_t k = 1; k <= pf.degree; ++k) {
      const std::int64_t target = static_cast<std::int64_t>(stream.next_line) +
                                  stream.stride * static_cast<std::int64_t>(k - 1);
      if (target < 0) continue;
      const AccessOutcome outcome =
          levels_[pf.install_level].install(static_cast<std::uint64_t>(target));
      if (!outcome.hit) ++prefetches_issued_;
      if (outcome.writeback) ++totals_.writebacks;
    }
  };

  // Continuation of a locked stream?
  for (Stream& stream : streams_) {
    if (stream.valid && stream.stride != 0 &&
        line == stream.next_line - stream.stride) {
      // Re-detected the previous miss (multi-line refs); nothing new.
      return;
    }
    if (stream.valid && stream.stride != 0 && line == stream.next_line) {
      stream.next_line = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(stream.next_line) + stream.stride);
      issue(stream);
      return;
    }
  }
  // Lock a stride on a nearby previous miss?
  for (Stream& stream : streams_) {
    if (!stream.valid) continue;
    const std::int64_t delta =
        static_cast<std::int64_t>(line) - static_cast<std::int64_t>(stream.next_line);
    if (delta != 0 && delta >= -4 && delta <= 4) {
      stream.stride = delta;
      stream.next_line = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(line) + delta);
      issue(stream);
      return;
    }
  }
  // Allocate a fresh stream round-robin.
  Stream& fresh = streams_[stream_cursor_];
  stream_cursor_ = (stream_cursor_ + 1) % streams_.size();
  fresh.valid = true;
  fresh.stride = 0;
  fresh.next_line = line;
}

void CacheHierarchy::set_scope(std::uint64_t block_id) {
  scope_ = block_id;
  current_ = &scopes_[block_id];
}

void CacheHierarchy::access(const MemRef& ref) {
  PMACX_CHECK(ref.size > 0, "zero-size memory reference");
  if (current_ == nullptr) current_ = &scopes_[scope_];
  AccessCounters& scoped = *current_;

  auto count_ref = [&](AccessCounters& c) {
    ++c.refs;
    if (ref.is_store)
      ++c.stores;
    else
      ++c.loads;
    c.bytes += ref.size;
  };
  count_ref(totals_);
  count_ref(scoped);

  if (config_.tlb.enabled) {
    const std::uint64_t page_shift = static_cast<std::uint64_t>(
        std::countr_zero(static_cast<std::uint64_t>(config_.tlb.page_bytes)));
    const std::uint64_t first_page = ref.addr >> page_shift;
    const std::uint64_t last_page = (ref.addr + ref.size - 1) >> page_shift;
    for (std::uint64_t page = first_page; page <= last_page; ++page)
      tlb_access(page, scoped);
  }

  const std::uint64_t first_line = ref.addr >> line_shift_;
  const std::uint64_t last_line = (ref.addr + ref.size - 1) >> line_shift_;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    // Set sampling: keep only lines whose low bits are zero.  Those lines
    // map to exactly the 1/2^shift of each level's sets with zero low
    // index bits, so the sampled population competes for a proportionally
    // shrunk cache — the condition that keeps hit-rate estimates unbiased.
    // (Sampling on *hashed* bits instead would let the sample enjoy the
    // full capacity and inflate hit rates.)
    if (config_.sample_shift != 0 &&
        (line & ((1ull << config_.sample_shift) - 1)) != 0)
      continue;
    ++totals_.line_accesses;
    ++scoped.line_accesses;
    bool resolved = false;
    bool l1_hit = false;
    for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
      const AccessOutcome outcome = levels_[lvl].access(line, ref.is_store);
      if (outcome.writeback) {
        ++totals_.writebacks;
        ++scoped.writebacks;
      }
      // Inclusive hierarchy: a victim leaving level lvl must also leave
      // every shallower level.
      if (config_.inclusive && outcome.evicted && lvl > 0) {
        for (std::size_t upper = 0; upper < lvl; ++upper)
          levels_[upper].invalidate(outcome.evicted_line);
      }
      if (outcome.hit) {
        ++totals_.level_hits[lvl];
        ++scoped.level_hits[lvl];
        if (lvl == 0) l1_hit = true;
        resolved = true;
        break;
      }
      // Missed this level: the line was installed here (write-allocate) and
      // the probe continues downward.
    }
    if (!resolved) {
      ++totals_.memory_accesses;
      ++scoped.memory_accesses;
    }
    // The stride prefetcher trains on L1 demand misses.
    if (config_.prefetch.enabled && !l1_hit) prefetcher_observe_miss(line);
  }
}

const AccessCounters& CacheHierarchy::scope(std::uint64_t block_id) const {
  static const AccessCounters kEmpty{};
  const auto it = scopes_.find(block_id);
  return it == scopes_.end() ? kEmpty : it->second;
}

void CacheHierarchy::reset() {
  for (CacheLevel& level : levels_) level.clear();
  totals_ = AccessCounters{};
  scopes_.clear();
  scope_ = 0;
  current_ = nullptr;
  tlb_.clear();
  tlb_clock_ = 0;
  for (Stream& stream : streams_) stream = Stream{};
  stream_cursor_ = 0;
  prefetches_issued_ = 0;
}

}  // namespace pmacx::memsim
