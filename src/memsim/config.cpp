#include "memsim/config.hpp"

#include "util/error.hpp"

namespace pmacx::memsim {
namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

std::string replacement_name(Replacement policy) {
  switch (policy) {
    case Replacement::Lru: return "lru";
    case Replacement::Fifo: return "fifo";
    case Replacement::Random: return "random";
  }
  return "?";
}

std::uint64_t CacheLevelConfig::sets() const {
  const std::uint64_t lines = size_bytes / line_bytes;
  if (associativity == 0) return 1;  // fully associative: one set of all ways
  return lines / associativity;
}

void HierarchyConfig::validate() const {
  PMACX_CHECK(!levels.empty() && levels.size() <= 3,
              "hierarchy '" + name + "' must have 1-3 cache levels");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const CacheLevelConfig& level = levels[i];
    PMACX_CHECK(is_pow2(level.line_bytes), level.name + ": line size must be a power of two");
    PMACX_CHECK(level.line_bytes == levels[0].line_bytes,
                level.name + ": all levels must share one line size");
    PMACX_CHECK(level.size_bytes >= level.line_bytes, level.name + ": cache smaller than a line");
    PMACX_CHECK(level.size_bytes % level.line_bytes == 0,
                level.name + ": size must be a multiple of the line size");
    const std::uint64_t lines = level.size_bytes / level.line_bytes;
    if (level.associativity != 0) {
      PMACX_CHECK(lines % level.associativity == 0,
                  level.name + ": line count must be a multiple of associativity");
      PMACX_CHECK(is_pow2(lines / level.associativity),
                  level.name + ": set count must be a power of two");
    }
    if (i > 0)
      PMACX_CHECK(level.size_bytes > levels[i - 1].size_bytes,
                  level.name + ": capacities must strictly grow with level");
    PMACX_CHECK(level.latency_cycles >= 0, level.name + ": negative latency");
    PMACX_CHECK(level.bandwidth_bytes_per_cycle > 0, level.name + ": non-positive bandwidth");
  }
  PMACX_CHECK(memory_latency_cycles >= 0, "negative memory latency");
  PMACX_CHECK(memory_bandwidth_bytes_per_cycle > 0, "non-positive memory bandwidth");
  if (prefetch.enabled) {
    PMACX_CHECK(prefetch.streams > 0, "prefetcher needs at least one stream");
    PMACX_CHECK(prefetch.degree > 0, "prefetcher needs a positive degree");
    PMACX_CHECK(prefetch.install_level < levels.size(),
                "prefetch install level out of range");
  }
  PMACX_CHECK(sample_shift < 16, "sample shift beyond 1/65536 is meaningless");
  if (sample_shift != 0) {
    for (const CacheLevelConfig& level : levels)
      PMACX_CHECK(level.sets() >= (1ull << sample_shift),
                  level.name + ": fewer sets than the sampling factor");
  }
  if (tlb.enabled) {
    PMACX_CHECK(tlb.entries > 0, "TLB needs at least one entry");
    PMACX_CHECK(is_pow2(tlb.page_bytes), "TLB page size must be a power of two");
    PMACX_CHECK(tlb.page_bytes >= levels[0].line_bytes, "TLB page smaller than a line");
    PMACX_CHECK(tlb.miss_cycles >= 0, "negative TLB miss cost");
  }
}

std::uint32_t HierarchyConfig::line_bytes() const {
  PMACX_CHECK(!levels.empty(), "hierarchy has no levels");
  return levels[0].line_bytes;
}

}  // namespace pmacx::memsim
