#include "memsim/cache.hpp"

#include "util/error.hpp"

namespace pmacx::memsim {

CacheLevel::CacheLevel(const CacheLevelConfig& config, std::uint64_t seed)
    : config_(config),
      sets_(config.sets()),
      ways_(config.associativity == 0
                ? static_cast<std::uint32_t>(config.size_bytes / config.line_bytes)
                : config.associativity),
      set_mask_(sets_ - 1),
      ways_storage_(sets_ * ways_),
      rng_(seed) {
  PMACX_ASSERT((sets_ & (sets_ - 1)) == 0, "set count must be a power of two");
}

AccessOutcome CacheLevel::touch(std::uint64_t line_addr, bool is_store, bool demand) {
  ++clock_;
  const std::uint64_t set = line_addr & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;

  // Hit path: refresh the LRU stamp only (FIFO keeps its fill time).
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[base + w];
    if (way.valid && way.tag == line_addr) {
      if (config_.replacement == Replacement::Lru) way.stamp = clock_;
      if (is_store) way.dirty = true;
      return {true, false};
    }
  }

  // Miss: install into the victim way.  The stored tag is the full line
  // address, trading a few bits of space for simpler invariants.
  const std::size_t victim = victim_in_set(base);
  Way& way = ways_storage_[victim];
  AccessOutcome outcome;
  outcome.writeback = way.valid && way.dirty;
  outcome.evicted = way.valid;
  outcome.evicted_line = way.tag;
  way.tag = line_addr;
  way.valid = true;
  way.stamp = clock_;
  // Demand stores dirty the line; prefetched lines arrive clean.
  way.dirty = demand && is_store;
  return outcome;
}

bool CacheLevel::invalidate(std::uint64_t line_addr) {
  const std::uint64_t set = line_addr & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = ways_storage_[base + w];
    if (way.valid && way.tag == line_addr) {
      way = Way{};
      return true;
    }
  }
  return false;
}

AccessOutcome CacheLevel::access(std::uint64_t line_addr, bool is_store) {
  return touch(line_addr, is_store, /*demand=*/true);
}

AccessOutcome CacheLevel::install(std::uint64_t line_addr) {
  return touch(line_addr, /*is_store=*/false, /*demand=*/false);
}

bool CacheLevel::contains(std::uint64_t line_addr) const {
  const std::uint64_t set = line_addr & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    const Way& way = ways_storage_[base + w];
    if (way.valid && way.tag == line_addr) return true;
  }
  return false;
}

void CacheLevel::clear() {
  for (Way& way : ways_storage_) way = Way{};
  clock_ = 0;
}

std::size_t CacheLevel::victim_in_set(std::size_t set_base) {
  // Prefer an invalid way.
  for (std::size_t w = 0; w < ways_; ++w)
    if (!ways_storage_[set_base + w].valid) return set_base + w;

  if (config_.replacement == Replacement::Random)
    return set_base + static_cast<std::size_t>(rng_.below(ways_));

  // LRU and FIFO both evict the smallest stamp (last-use vs. fill time).
  std::size_t victim = set_base;
  for (std::size_t w = 1; w < ways_; ++w)
    if (ways_storage_[set_base + w].stamp < ways_storage_[victim].stamp)
      victim = set_base + w;
  return victim;
}

}  // namespace pmacx::memsim
