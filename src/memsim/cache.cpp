#include "memsim/cache.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pmacx::memsim {

CacheLevel::CacheLevel(const CacheLevelConfig& config, std::uint64_t seed)
    : config_(config),
      sets_(config.sets()),
      ways_(config.associativity == 0
                ? static_cast<std::uint32_t>(config.size_bytes / config.line_bytes)
                : config.associativity),
      set_mask_(sets_ - 1),
      tags_(sets_ * ways_, 0),
      ranks_(sets_ * ways_, 0),
      valid_(sets_ * ways_, 0),
      dirty_(sets_ * ways_, 0),
      find_tag_(util::simd::kernels().find_tag),
      probe_stream_(util::simd::kernels().probe_stream),
      probe_grouped_(util::simd::kernels().probe_grouped),
      rng_(seed) {
  PMACX_ASSERT((sets_ & (sets_ - 1)) == 0, "set count must be a power of two");
  PMACX_CHECK(ways_ <= 32768,
              "rank-based replacement supports at most 32768 ways per set");
  for (std::size_t s = 0; s < sets_; ++s) {
    for (std::uint32_t w = 0; w < ways_; ++w) {
      ranks_[s * ways_ + w] = static_cast<std::uint16_t>(w);
    }
  }
}

void CacheLevel::promote(std::size_t base, std::size_t way_rel) {
  std::uint16_t* ranks = ranks_.data() + base;
  const std::uint16_t r = ranks[way_rel];
  if (r == 0) return;  // already most recent
  for (std::uint32_t i = 0; i < ways_; ++i) {
    ranks[i] = static_cast<std::uint16_t>(ranks[i] + (ranks[i] < r ? 1 : 0));
  }
  ranks[way_rel] = 0;
}

AccessOutcome CacheLevel::touch(std::uint64_t line_addr, bool is_store, bool demand) {
  const std::uint64_t set = line_addr & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;

  // Hit path: refresh recency only under LRU (FIFO keeps its fill order).
  const int hit_way = find_way(base, line_addr);
  if (hit_way >= 0) {
    const std::size_t w = base + static_cast<std::size_t>(hit_way);
    if (config_.replacement == Replacement::Lru) {
      promote(base, static_cast<std::size_t>(hit_way));
    }
    if (is_store) dirty_[w] = 1;
    return {true, false};
  }

  // Miss: install into the victim way.  The stored tag is the full line
  // address, trading a few bits of space for simpler invariants.
  const std::size_t victim = victim_in_set(base);
  AccessOutcome outcome;
  outcome.writeback = valid_[victim] != 0 && dirty_[victim] != 0;
  outcome.evicted = valid_[victim] != 0;
  outcome.evicted_line = tags_[victim];
  tags_[victim] = line_addr;
  valid_[victim] = 1;
  promote(base, victim - base);
  // Demand stores dirty the line; prefetched lines arrive clean.
  dirty_[victim] = demand && is_store;
  return outcome;
}

util::simd::SetView CacheLevel::view() {
  return util::simd::SetView{
      tags_.data(),  valid_.data(), ranks_.data(),
      dirty_.data(), set_mask_,     ways_,
      config_.replacement == Replacement::Lru ? 1 : 0};
}

util::simd::ProbeReplay CacheLevel::replay_stream(const std::uint64_t* lines,
                                                  const std::uint8_t* stores,
                                                  const std::uint32_t* indices,
                                                  std::size_t count,
                                                  std::uint32_t* misses) {
  return probe_stream_(view(), lines, stores, indices, count, misses);
}

util::simd::ProbeReplay CacheLevel::replay_grouped(
    const std::uint64_t* lines, const std::uint8_t* stores,
    std::uint8_t* resolved, const std::uint32_t* grouped,
    const std::uint32_t* set_start) {
  return probe_grouped_(view(), lines, stores, resolved, grouped, set_start);
}

bool CacheLevel::invalidate(std::uint64_t line_addr) {
  const std::uint64_t set = line_addr & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  const int way = find_way(base, line_addr);
  if (way < 0) return false;
  const std::size_t w = base + static_cast<std::size_t>(way);
  // The rank stays in place: invalid ways are preferred as victims
  // regardless of rank, and keeping the permutation intact means no other
  // way's relative recency changes — exactly as a timestamp encoding
  // behaves when a stamp is dropped.
  tags_[w] = 0;
  valid_[w] = 0;
  dirty_[w] = 0;
  return true;
}

AccessOutcome CacheLevel::access(std::uint64_t line_addr, bool is_store) {
  return touch(line_addr, is_store, /*demand=*/true);
}

AccessOutcome CacheLevel::install(std::uint64_t line_addr) {
  return touch(line_addr, /*is_store=*/false, /*demand=*/false);
}

bool CacheLevel::contains(std::uint64_t line_addr) const {
  const std::uint64_t set = line_addr & set_mask_;
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  return find_way(base, line_addr) >= 0;
}

void CacheLevel::clear() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(valid_.begin(), valid_.end(), 0);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  for (std::size_t s = 0; s < sets_; ++s) {
    for (std::uint32_t w = 0; w < ways_; ++w) {
      ranks_[s * ways_ + w] = static_cast<std::uint16_t>(w);
    }
  }
}

std::size_t CacheLevel::victim_in_set(std::size_t set_base) {
  // Prefer an invalid way.
  for (std::size_t w = 0; w < ways_; ++w)
    if (valid_[set_base + w] == 0) return set_base + w;

  if (config_.replacement == Replacement::Random)
    return set_base + static_cast<std::size_t>(rng_.below(ways_));

  // LRU and FIFO both evict rank ways-1 (least recently used vs. first in).
  const std::uint16_t last = static_cast<std::uint16_t>(ways_ - 1);
  for (std::size_t w = 0; w < ways_; ++w)
    if (ranks_[set_base + w] == last) return set_base + w;
  return set_base + ways_ - 1;  // unreachable for a well-formed permutation
}

}  // namespace pmacx::memsim
