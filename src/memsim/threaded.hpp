// Thread-aware cache hierarchy for hybrid MPI/OpenMP tracing.
//
// Section III-A requires the base system to run "the same parallelization
// mode (e.g., MPI or hybrid MPI/OpenMP) that will be used on the target".
// In hybrid mode one MPI rank hosts T threads that share the deeper cache
// levels: each thread gets private copies of levels [0, shared_from) while
// levels [shared_from, n) are shared, so thread streams genuinely contend
// for the shared capacity (the effect hybrid tracing must capture).
// Accounting is rank-level (aggregated over threads), matching the per-task
// trace files the methodology consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/hierarchy.hpp"

namespace pmacx::memsim {

/// A hierarchy shared by T threads of one rank.
class ThreadedHierarchy {
 public:
  /// `shared_from` is the first shared level index (e.g. 2 for private
  /// L1/L2 + shared L3).  Must be ≤ the level count; `shared_from == 0`
  /// shares everything, `shared_from == levels` shares nothing.
  ThreadedHierarchy(HierarchyConfig config, std::uint32_t threads, std::size_t shared_from);

  /// Selects the accounting scope (rank-level, shared by all threads).
  void set_scope(std::uint64_t block_id);

  /// Streams one reference of `thread` through its private levels and the
  /// shared levels.
  void access(std::uint32_t thread, const MemRef& ref);

  /// Aggregated counters across all threads.
  const AccessCounters& totals() const { return totals_; }

  /// Per-scope counters (aggregated over threads).
  const AccessCounters& scope(std::uint64_t block_id) const;

  std::size_t num_levels() const { return config_.levels.size(); }
  std::uint32_t threads() const { return threads_; }

  const HierarchyConfig& config() const { return config_; }

 private:
  HierarchyConfig config_;
  std::uint32_t threads_;
  std::size_t shared_from_;
  std::uint32_t line_shift_;
  /// private_[t][lvl] for lvl < shared_from_.
  std::vector<std::vector<CacheLevel>> private_;
  /// shared_[lvl - shared_from_].
  std::vector<CacheLevel> shared_;
  std::uint64_t scope_ = 0;
  AccessCounters totals_;
  std::unordered_map<std::uint64_t, AccessCounters> scopes_;
  AccessCounters* current_ = nullptr;
};

}  // namespace pmacx::memsim
