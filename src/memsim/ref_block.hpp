// Arena-staged blocks of memory references, structure-of-arrays.
//
// Replaying a trace one MemRef at a time pays a generator call and a full
// per-reference dispatch per access.  A RefBlock stages a few thousand
// references into flat addr/size/store arrays carved out of a util::Arena
// (one bump allocation per block, reused across refills) and the hierarchy
// replays the whole block in one call.  Replay order is exactly the staging
// order, so counters are identical to the one-at-a-time path.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/arena.hpp"

namespace pmacx::memsim {

/// A borrowed, read-only view of staged references.  The arrays live in
/// whatever storage the producer staged them into (typically an Arena);
/// the view must not outlive it.
struct RefBlock {
  const std::uint64_t* addr = nullptr;
  const std::uint32_t* size = nullptr;
  const std::uint8_t* is_store = nullptr;
  std::size_t count = 0;
};

/// Fixed-capacity staging buffer for RefBlocks, arena-backed.
class RefBlockBuilder {
 public:
  RefBlockBuilder(util::Arena& arena, std::size_t capacity)
      : addr_(arena.allocate<std::uint64_t>(capacity)),
        size_(arena.allocate<std::uint32_t>(capacity)),
        store_(arena.allocate<std::uint8_t>(capacity)),
        capacity_(capacity) {}

  bool full() const { return count_ == capacity_; }
  std::size_t count() const { return count_; }

  void push(std::uint64_t addr, std::uint32_t size, bool is_store) {
    addr_[count_] = addr;
    size_[count_] = size;
    store_[count_] = is_store ? 1 : 0;
    ++count_;
  }

  RefBlock block() const { return {addr_, size_, store_, count_}; }

  /// Empties the builder for the next refill; storage is reused.
  void clear() { count_ = 0; }

 private:
  std::uint64_t* addr_;
  std::uint32_t* size_;
  std::uint8_t* store_;
  std::size_t capacity_;
  std::size_t count_ = 0;
};

}  // namespace pmacx::memsim
