// Descriptive statistics used by fit-quality reports and the experiment
// harnesses (error summaries, distribution sketches).
#pragma once

#include <span>

namespace pmacx::stats {

/// Summary of a sample: count, extremes, central moments and median.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double median = 0.0;
  double sum = 0.0;
};

/// Computes the summary of `values`; an empty span yields a zeroed Summary.
Summary summarize(std::span<const double> values);

/// Linearly interpolated percentile of an ascending-sorted sample: the value
/// at rank `fraction · (n - 1)`, interpolating between the bracketing
/// elements.  This is the single interpolation rule shared by
/// bootstrap_interval, the Bayesian posterior-predictive quantiles, and the
/// loadgen latency report — one element returns that element for every
/// fraction, so percentile(s, a) <= percentile(s, b) whenever a <= b.
/// `fraction` is clamped to [0, 1]; an empty span returns 0.
double percentile(std::span<const double> sorted, double fraction);

/// Mean of `values`; 0 for an empty span.
double mean(std::span<const double> values);

/// Absolute relative error |predicted - actual| / |actual|; when actual is 0
/// returns 0 if predicted is also 0, else infinity.
double absolute_relative_error(double predicted, double actual);

/// Euclidean distance between equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

}  // namespace pmacx::stats
