// Descriptive statistics used by fit-quality reports and the experiment
// harnesses (error summaries, distribution sketches).
#pragma once

#include <span>

namespace pmacx::stats {

/// Summary of a sample: count, extremes, central moments and median.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double median = 0.0;
  double sum = 0.0;
};

/// Computes the summary of `values`; an empty span yields a zeroed Summary.
Summary summarize(std::span<const double> values);

/// Mean of `values`; 0 for an empty span.
double mean(std::span<const double> values);

/// Absolute relative error |predicted - actual| / |actual|; when actual is 0
/// returns 0 if predicted is also 0, else infinity.
double absolute_relative_error(double predicted, double actual);

/// Euclidean distance between equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

}  // namespace pmacx::stats
