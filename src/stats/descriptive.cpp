#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace pmacx::stats {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    s.sum += v;
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1 ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double percentile(std::span<const double> sorted, double fraction) {
  if (sorted.empty()) return 0.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const double rank = fraction * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double t = rank - static_cast<double>(lo);
  return sorted[lo] + t * (sorted[hi] - sorted[lo]);
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double absolute_relative_error(double predicted, double actual) {
  if (actual == 0.0)
    return predicted == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::fabs(predicted - actual) / std::fabs(actual);
}

double euclidean_distance(std::span<const double> a, std::span<const double> b) {
  PMACX_CHECK(a.size() == b.size(), "euclidean_distance: size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return std::sqrt(total);
}

}  // namespace pmacx::stats
