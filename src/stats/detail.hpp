// Shared numeric helpers of the canonical fitter.  The batched SoA fitter
// (batch.cpp) must produce bit-identical results to the per-series path
// (canonical.cpp); sharing one inline definition — rather than two copies
// that could drift — is part of how that identity is enforced.
#pragma once

#include <algorithm>
#include <cmath>

namespace pmacx::stats::detail {

/// exp with the exponent clamped inside the double range edge (±709).
inline double clamped_exp(double exponent) {
  return std::exp(std::clamp(exponent, -690.0, 690.0));
}

}  // namespace pmacx::stats::detail
