// Canonical-form model fitting — the statistical core of the paper.
//
// For every element of every basic block's feature vector, the methodology
// fits each of a small set of canonical functions of the core count p and
// keeps the best fit (Section IV).  The paper uses four forms — constant,
// linear, logarithmic, exponential — and names polynomial forms as future
// work; we implement those four plus three extension forms (power, inverse-p,
// quadratic) gated behind FormSet so the ablation benches can quantify their
// contribution.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pmacx::stats {

/// The canonical function families.  The first four are the paper's; the
/// remainder are the future-work extensions.
enum class Form {
  Constant,     ///< y = a
  Linear,       ///< y = a + b·p
  Logarithmic,  ///< y = a + b·ln p
  Exponential,  ///< y = a·e^(b·p)
  Power,        ///< y = a·p^b            (extension)
  InverseP,     ///< y = a + b/p          (extension; natural for strong scaling)
  Quadratic,    ///< y = a + b·p + c·p²   (extension; the paper's "polynomial";
                ///<                       requires ≥ 4 samples — with 3 it
                ///<                       interpolates and cannot be ranked)
};

/// Human-readable form name ("linear", "log", ...).
std::string form_name(Form form);

/// All forms, in complexity order (simplest first).  Ties in fit quality are
/// broken toward the earlier entry.
std::span<const Form> all_forms();

/// The paper's original four forms.
std::span<const Form> paper_forms();

/// The library's default form set: the paper's four plus Power and InverseP
/// (the paper's stated future work — "add more canonical forms ... to
/// improve the accuracy").  Pure 1/p strong-scaling elements, which the
/// four-form set extrapolates poorly (the best four-form fit is a log that
/// goes negative past the inputs), are exact under InverseP/Power.  The
/// ablation benches quantify the difference; pass paper_forms() to FitOptions
/// for paper-faithful behaviour.
std::span<const Form> default_forms();

/// Tie-break/complexity rank: lower ranks are simpler and extrapolate more
/// tamely.  Exposed so callers (e.g. the extrapolator's domain-aware
/// selection) can reproduce select_best's ordering.
int form_complexity(Form form);

/// One fitted model: the form plus its parameters.  Invalid fits (e.g.
/// exponential on data with mixed signs) have ok=false and infinite sse.
struct FittedModel {
  Form form = Form::Constant;
  /// Parameters [a, b, c]; meaning depends on `form` (see Form docs).
  std::array<double, 3> params{0.0, 0.0, 0.0};
  /// Sum of squared residuals in the *original* data space.
  double sse = 0.0;
  /// Coefficient of determination in the original data space; 1 for perfect
  /// fits, can be negative for fits worse than the mean.
  double r2 = 0.0;
  bool ok = false;

  /// Evaluates the model at core count p.  Exponential growth is clamped to
  /// ±1e300 to keep downstream arithmetic finite.  Log, Power, and InverseP
  /// are undefined at p ≤ 0: such calls throw util::Error (and count toward
  /// the fits.evaluate_domain_errors metric) instead of silently returning
  /// a clamped-garbage value.
  double evaluate(double p) const;

  /// "linear(a=…, b=…)" description for reports.
  std::string describe() const;
};

/// How competing fits are ranked.
enum class SelectionCriterion {
  MinSse,  ///< the paper's "best statistical fit": least squared residual
  LooCv,   ///< leave-one-out cross-validation error (needs ≥ 4 samples)
  Aicc,    ///< small-sample-corrected Akaike criterion (needs ≥ k+2 samples)
};

/// Fitting policy knobs.
struct FitOptions {
  /// Candidate forms; see default_forms() for why the default is a superset
  /// of the paper's four (pass paper_forms() for paper-faithful selection).
  std::vector<Form> forms{default_forms().begin(), default_forms().end()};
  /// Two candidates whose scores differ by less than
  /// `tie_tolerance · (1 + |best_score|)` are considered tied; the simpler
  /// wins.  (|·| matters: AICc scores are routinely negative, and a band of
  /// `tol · (1 + best_score)` would go non-positive and disable the
  /// tie-break exactly where it is needed.)
  double tie_tolerance = 1e-9;
  /// Ranking rule; criteria that need more samples than available fall back
  /// to MinSse for that series.
  SelectionCriterion criterion = SelectionCriterion::MinSse;
  /// Legacy switch: true forces criterion = LooCv.
  bool loo_cv = false;
};

/// Free parameters of a form (constant: 1, quadratic: 3, others: 2).
int form_parameter_count(Form form);

/// Residual-bootstrap confidence interval of select_best's prediction.
struct PredictionInterval {
  double point = 0.0;  ///< the best fit's value at the target
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
};

/// Bootstraps the extrapolation uncertainty at `target`: refits
/// `resamples` residual-resampled copies of the series with select_best and
/// takes the (1±confidence)/2 percentiles of the predicted values.
/// Deterministic for a fixed seed.
PredictionInterval bootstrap_interval(std::span<const double> p, std::span<const double> y,
                                      double target, const FitOptions& opts = {},
                                      std::size_t resamples = 200,
                                      double confidence = 0.9, std::uint64_t seed = 1);

/// Fits one specific form to the samples (p_i, y_i).  Core counts must be
/// positive.  Returns ok=false when the form cannot represent the data
/// (e.g. exponential/power with mixed-sign y) or is underdetermined.  A
/// series that merely *contains* exact zeros among one-signed samples still
/// fits exponential/power: the zeros are dropped from the log-space
/// regression (they cannot be log-transformed) but kept in the SSE that
/// ranks the fit; the dropped count is tallied in fits.zero_dropped_samples.
FittedModel fit_form(Form form, std::span<const double> p, std::span<const double> y);

/// Fits every candidate form; results are in the same order as opts.forms.
/// Each form fitted here (and in select_best) increments the per-series
/// fits.attempted.<form> counter; raw fit_form calls are not counted so the
/// single-form hot path stays atomic-free and LOO refits don't inflate the
/// attempted-vs-won comparison.
std::vector<FittedModel> fit_all(std::span<const double> p, std::span<const double> y,
                                 const FitOptions& opts = {});

/// Fits every candidate form and returns the best per the selection policy
/// (min SSE or min LOO-CV error, simplicity tie-break).  Falls back to a
/// constant fit through the mean when every candidate fails, so the result
/// is always usable.
FittedModel select_best(std::span<const double> p, std::span<const double> y,
                        const FitOptions& opts = {});

/// Scores every candidate in `fits` exactly as select_best ranks them (SSE,
/// LOO-CV, or AICc per `opts`, with the same small-sample downgrades);
/// scores[i] belongs to fits[i], and unusable candidates score +inf.  The
/// scores depend only on the input series — never on an extrapolation
/// target — which is what lets a fitted candidate set be cached and re-ranked
/// for many targets.
std::vector<double> selection_scores(std::span<const FittedModel> fits,
                                     std::span<const double> p, std::span<const double> y,
                                     const FitOptions& opts = {});

/// select_best over precomputed candidates: no refitting.  With
/// fits = fit_all(p, y, opts) and scores = selection_scores(fits, p, y, opts)
/// the result is identical to select_best(p, y, opts) — the seam the serving
/// layer's model cache relies on to skip fitting on repeated queries.
/// `p`/`y` are only consulted for the constant fallback when every candidate
/// is unusable.
FittedModel select_from(std::span<const FittedModel> fits, std::span<const double> scores,
                        std::span<const double> p, std::span<const double> y,
                        const FitOptions& opts = {});

}  // namespace pmacx::stats
