// k-means clustering over feature vectors.
//
// Implements the paper's future-work direction (Section VI): instead of
// extrapolating only the longest-running MPI task's trace, cluster the tasks
// by their aggregate feature vectors and extrapolate each cluster's centroid
// trace.  Uses k-means++ seeding and Lloyd iterations, fully deterministic
// given the seed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pmacx::stats {

/// Clustering result: one centroid per cluster plus a cluster id per point.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<std::size_t> assignment;  ///< assignment[i] = cluster of point i
  double inertia = 0.0;                 ///< sum of squared point→centroid distances
  std::size_t iterations = 0;           ///< Lloyd iterations actually run
};

/// Options controlling the clustering.
struct KMeansOptions {
  std::size_t max_iterations = 64;
  /// Converged when no assignment changes between iterations.
  std::uint64_t seed = 42;
};

/// Clusters `points` (all the same dimension, k ≤ points.size(), k ≥ 1) into
/// k groups.  Deterministic for a fixed seed.  Empty clusters are re-seeded
/// from the point farthest from its centroid.
KMeansResult kmeans(std::span<const std::vector<double>> points, std::size_t k,
                    const KMeansOptions& opts = {});

/// Picks k by the "elbow" criterion over k ∈ [1, k_max]: the smallest k whose
/// relative inertia improvement over k-1 drops below `threshold`.
std::size_t pick_k_elbow(std::span<const std::vector<double>> points, std::size_t k_max,
                         double threshold = 0.15, const KMeansOptions& opts = {});

}  // namespace pmacx::stats
