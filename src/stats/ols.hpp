// Ordinary least squares building blocks used by the canonical-form fitter.
//
// Only two shapes are needed: simple linear regression y = a + b·x (all of
// the paper's four forms reduce to it after a transform of x and/or y) and a
// small dense normal-equations solve for the polynomial extension forms.
#pragma once

#include <span>
#include <vector>

namespace pmacx::stats {

/// Result of a simple linear regression y ≈ intercept + slope·x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Sum of squared residuals in the (possibly transformed) fitting space.
  double sse = 0.0;
  /// True when the regression was well-posed (≥ 2 points, non-degenerate x).
  bool ok = false;
};

/// Fits y ≈ a + b·x by least squares.  Degenerate x (all equal) yields
/// ok=false unless y is also constant, in which case slope=0 is returned.
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

/// Solves the n×n system A·x = b by Gaussian elimination with partial
/// pivoting.  `a` is row-major n*n.  Returns false if (near-)singular.
bool solve_dense(std::vector<double> a, std::vector<double> b, std::span<double> out);

/// Fits a polynomial of degree `degree` (coeffs[0] + coeffs[1]·x + ...) by
/// normal equations.  Returns empty vector when underdetermined or singular.
std::vector<double> fit_polynomial(std::span<const double> x, std::span<const double> y,
                                   int degree);

/// Sum of squared residuals of `predict(x_i)` against y_i.
template <typename Fn>
double sse_of(std::span<const double> x, std::span<const double> y, Fn&& predict) {
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - predict(x[i]);
    total += r * r;
  }
  return total;
}

}  // namespace pmacx::stats
