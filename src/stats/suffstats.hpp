// Per-series sufficient statistics for canonical-form fitting.
//
// A fitted element's regression inputs can be summarized by a handful of
// raw moments per transform family: n, Σx, Σy, Σxx, Σxy, Σyy (plus the
// cubic/quartic terms the quadratic form needs), accumulated in the
// transformed space each family regresses in (x = p, ln p, or 1/p; y = y or
// ln|y|).  The point of keeping them is ingestion: appending a trace at a
// new core count extends every element's moments in O(1) — no re-reading
// of earlier samples — and extending by a suffix is *bitwise identical* to
// recomputing from the full series, because add_sample preserves the
// summation order (pinned by test).
//
// Two distinct uses, with distinct guarantees:
//
//   * fit_from_moments: closed-form normal-equation fits straight from the
//     moments.  These agree with stats::fit_form to tight tolerances on
//     well-conditioned data (tested), but are NOT bit-identical to it —
//     fit_form is a centered two-pass algorithm, and the exponential/power
//     forms additionally refine their scale in the original space, which no
//     fixed moment set can express.  Use for screening and for deciding
//     whether a refit is worth scheduling; never on a byte-pinned path.
//   * the order-sensitive fingerprint: a CRC over the raw sample bit
//     patterns, chained per sample, so "does the new series extend the one
//     these moments summarize?" is a prefix-fingerprint comparison — the
//     check the incremental refitter uses to extend instead of rebuild.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "stats/canonical.hpp"

namespace pmacx::stats {

/// Raw regression moments in one transformed (x, y) space.  All sums are
/// accumulated left to right in sample order, which is what makes suffix
/// extension bit-identical to whole-series accumulation.
struct Moments {
  std::uint64_t n = 0;  ///< samples accumulated (post-transform)
  double sx = 0.0, sy = 0.0;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  /// Higher x-moments for the quadratic normal equations.
  double sx3 = 0.0, sx4 = 0.0, sx2y = 0.0;

  void add(double x, double y) {
    ++n;
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
    sx3 += x * x * x;
    sx4 += (x * x) * (x * x);
    sx2y += x * x * y;
  }

  bool operator==(const Moments&) const = default;
};

/// The transform families the canonical forms regress in.  Constant,
/// Linear, and Quadratic share the identity family; Logarithmic,
/// InverseP, Exponential, and Power each get their own.
enum class MomentFamily : std::uint8_t {
  Identity,  ///< x = p,     y = y       (constant, linear, quadratic)
  LogX,      ///< x = ln p,  y = y       (logarithmic)
  InvX,      ///< x = 1/p,   y = y       (inverse-p)
  ExpY,      ///< x = p,     y = ln|y|   (exponential; zero y skipped)
  PowXY,     ///< x = ln p,  y = ln|y|   (power; zero y skipped)
};
inline constexpr std::size_t kMomentFamilyCount = 5;

/// Sufficient statistics of one element's fit series across every family,
/// plus the bookkeeping fit_log_space needs (sign census — exponential and
/// power fits require one-signed data and drop exact zeros) and the
/// order-sensitive fingerprint of the raw samples.
struct SeriesMoments {
  std::uint64_t count = 0;  ///< raw (p, y) samples seen
  std::uint64_t pos = 0, neg = 0, zero = 0;  ///< sign census of y
  bool bad_axis = false;  ///< a sample had p ≤ 0 (log/inv/power unusable)
  /// CRC32 chained over the raw IEEE-754 bit patterns of (p, y) in sample
  /// order: fingerprint(prefix ++ suffix) == chain of the two, so prefix
  /// identity is one u32 comparison.
  std::uint32_t fingerprint = 0;
  std::array<Moments, kMomentFamilyCount> families{};

  const Moments& family(MomentFamily f) const {
    return families[static_cast<std::size_t>(f)];
  }

  /// Appends one sample to every family — O(1), order-preserving.
  void add_sample(double p, double y);

  /// Accumulates a whole series (samples in order).
  static SeriesMoments from_series(std::span<const double> p,
                                   std::span<const double> y);

  bool operator==(const SeriesMoments&) const = default;
};

/// Fingerprint of the first `n` samples of a series — compare against a
/// stored SeriesMoments::fingerprint to decide whether the new series is a
/// pure extension of the one the moments summarize.
std::uint32_t series_fingerprint(std::span<const double> p, std::span<const double> y,
                                 std::size_t n);

/// Closed-form fit of `form` from the moments alone (normal equations in
/// the form's transform space).  Parameters agree with stats::fit_form to
/// tolerance on well-conditioned data; for Exponential/Power the sse/r2 are
/// log-space values (the original-space residual needs the samples) and the
/// scale parameter omits fit_form's original-space refinement.  Returns
/// ok=false exactly when the moments cannot support the form (too few
/// samples, mixed-sign y for log-space forms, p ≤ 0 for transformed axes,
/// or a degenerate design).
FittedModel fit_from_moments(Form form, const SeriesMoments& sm);

}  // namespace pmacx::stats
