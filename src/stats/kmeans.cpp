#include "stats/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace pmacx::stats {
namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
std::vector<std::vector<double>> seed_centroids(std::span<const std::vector<double>> points,
                                                std::size_t k, util::Rng& rng) {
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(points[rng.below(points.size())]);

  std::vector<double> dist2(points.size());
  while (centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) best = std::min(best, squared_distance(points[i], c));
      dist2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // All points coincide with existing centroids; duplicate one.
      centroids.push_back(points[rng.below(points.size())]);
      continue;
    }
    double target = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      target -= dist2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(points[chosen]);
  }
  return centroids;
}

}  // namespace

KMeansResult kmeans(std::span<const std::vector<double>> points, std::size_t k,
                    const KMeansOptions& opts) {
  PMACX_CHECK(!points.empty(), "kmeans: no points");
  PMACX_CHECK(k >= 1 && k <= points.size(), "kmeans: k out of range");
  const std::size_t dim = points[0].size();
  for (const auto& pt : points)
    PMACX_CHECK(pt.size() == dim, "kmeans: inconsistent point dimensions");

  util::Rng rng(opts.seed);
  KMeansResult result;
  result.centroids = seed_centroids(points, k, rng);
  result.assignment.assign(points.size(), 0);

  for (std::size_t iter = 0; iter < opts.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }

    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the point farthest from its centroid.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d = squared_distance(points[i], result.centroids[result.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        result.centroids[c] = points[far];
        changed = true;
        continue;
      }
      for (std::size_t d = 0; d < dim; ++d)
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
    if (!changed && iter > 0) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i)
    result.inertia += squared_distance(points[i], result.centroids[result.assignment[i]]);
  return result;
}

std::size_t pick_k_elbow(std::span<const std::vector<double>> points, std::size_t k_max,
                         double threshold, const KMeansOptions& opts) {
  PMACX_CHECK(k_max >= 1, "pick_k_elbow: k_max must be >= 1");
  k_max = std::min(k_max, points.size());
  const double base_inertia = kmeans(points, 1, opts).inertia;
  if (base_inertia <= 0.0) return 1;
  // Improvements are measured against the k=1 inertia: once the clustering
  // has explained nearly all the variance, further relative gains between
  // tiny inertias are noise, not structure.
  double prev_inertia = base_inertia;
  for (std::size_t k = 2; k <= k_max; ++k) {
    const double inertia = kmeans(points, k, opts).inertia;
    const double improvement = (prev_inertia - inertia) / base_inertia;
    if (improvement < threshold) return k - 1;
    prev_inertia = inertia;
    if (prev_inertia <= 0.0) return k;
  }
  return k_max;
}

}  // namespace pmacx::stats
