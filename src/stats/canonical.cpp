#include "stats/canonical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "stats/detail.hpp"
#include "stats/ols.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace pmacx::stats {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-form attempt counters, resolved once: fit_form is the fitting hot
/// loop, so the registry lookup must not sit on its path.
// Incremented once per form per series from fit_all/select_best — not from
// fit_form itself, whose fast-fail paths run in a few ns and cannot afford
// an atomic RMW (see BM_FitSingleForm).  Pre-resolved so the per-series
// cost is one relaxed fetch_add, no registry lock.
util::metrics::Counter& attempts_counter(Form form) {
  static const std::array<util::metrics::Counter*, 7> counters = [] {
    std::array<util::metrics::Counter*, 7> built{};
    for (Form f : all_forms())
      built[static_cast<std::size_t>(f)] =
          &util::metrics::Registry::global().counter("fits.attempted." + form_name(f));
    return built;
  }();
  return *counters[static_cast<std::size_t>(form)];
}

// One definition shared with the batched SoA fitter (bit-identity).
using detail::clamped_exp;

double r_squared(std::span<const double> y, double sse) {
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double sst = 0.0;
  for (double v : y) sst += (v - mean) * (v - mean);
  if (sst <= 0.0) return sse <= 1e-300 ? 1.0 : 0.0;
  return 1.0 - sse / sst;
}

void finish(FittedModel& model, std::span<const double> p, std::span<const double> y) {
  model.sse = sse_of(p, y, [&](double pi) { return model.evaluate(pi); });
  model.r2 = r_squared(y, model.sse);
  model.ok = std::isfinite(model.sse);
  if (!model.ok) model.sse = kInf;
}

FittedModel fail(Form form) {
  FittedModel model;
  model.form = form;
  model.sse = kInf;
  model.r2 = -kInf;
  model.ok = false;
  return model;
}

FittedModel fit_constant(std::span<const double> p, std::span<const double> y) {
  FittedModel model;
  model.form = Form::Constant;
  double mean = 0.0;
  for (double v : y) mean += v;
  model.params[0] = mean / static_cast<double>(y.size());
  finish(model, p, y);
  return model;
}

FittedModel fit_transformed_linear(Form form, std::span<const double> p,
                                   std::span<const double> y) {
  // Linear / Logarithmic / InverseP are OLS on a transformed abscissa.
  std::vector<double> x(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    switch (form) {
      case Form::Linear: x[i] = p[i]; break;
      case Form::Logarithmic: x[i] = std::log(p[i]); break;
      case Form::InverseP: x[i] = 1.0 / p[i]; break;
      default: PMACX_ASSERT(false, "not a transformed-linear form");
    }
  }
  const LinearFit ols = fit_linear(x, y);
  if (!ols.ok) return fail(form);
  FittedModel model;
  model.form = form;
  model.params[0] = ols.intercept;
  model.params[1] = ols.slope;
  finish(model, p, y);
  return model;
}

/// Exponential y = a·e^(b·p) and power y = a·p^b share a log-space OLS with
/// a post-hoc refinement of the scale `a` in the original space.  Both need
/// one-signed y (negative data is handled by fitting -y); exact zeros are
/// *dropped* from the log-space regression — ln 0 is undefined, but a hit
/// rate that bottoms out at zero at one core count must not disqualify the
/// whole series — while still participating in the original-space scale
/// refinement and the SSE that ranks the fit.  Mixed-sign data still fails.
FittedModel fit_log_space(Form form, std::span<const double> p, std::span<const double> y) {
  const std::size_t n = y.size();
  if (n < 2) return fail(form);
  double sign = 0.0;
  std::size_t zeros = 0;
  for (double v : y) {
    if (v > 0.0) {
      if (sign < 0.0) return fail(form);  // mixed-sign data
      sign = 1.0;
    } else if (v < 0.0) {
      if (sign > 0.0) return fail(form);
      sign = -1.0;
    } else {
      ++zeros;
    }
  }
  if (sign == 0.0 || n - zeros < 2) return fail(form);  // all/nearly-all zero

  std::vector<double> x, ln_y;
  x.reserve(n - zeros);
  ln_y.reserve(n - zeros);
  for (std::size_t i = 0; i < n; ++i) {
    if (y[i] == 0.0) continue;
    x.push_back(form == Form::Power ? std::log(p[i]) : p[i]);
    ln_y.push_back(std::log(sign * y[i]));
  }
  if (zeros > 0) {
    // Observable in snapshots and diffable across runs; deterministic
    // because the same series are fitted regardless of thread count.
    util::metrics::Registry::global().counter("fits.zero_dropped_samples").add(zeros);
  }
  const LinearFit ols = fit_linear(x, ln_y);
  if (!ols.ok) return fail(form);
  const double b = ols.slope;

  // Given b, the least-squares scale in the original space is closed-form:
  // a = Σ y_i·g_i / Σ g_i²  with g_i = e^(b·p_i) or p_i^b.
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double g = form == Form::Power ? std::pow(p[i], b) : clamped_exp(b * p[i]);
    num += y[i] * g;
    den += g * g;
  }
  if (den <= 0.0 || !std::isfinite(den)) return fail(form);

  FittedModel model;
  model.form = form;
  model.params[0] = num / den;
  model.params[1] = b;
  finish(model, p, y);
  return model;
}

FittedModel fit_quadratic(std::span<const double> p, std::span<const double> y) {
  // A quadratic through exactly three samples interpolates them (SSE = 0),
  // so it would beat every other form in selection while extrapolating
  // wildly.  Require an over-determined fit: at least four samples.
  if (p.size() < 4) return fail(Form::Quadratic);
  const std::vector<double> coeffs = fit_polynomial(p, y, 2);
  if (coeffs.empty()) return fail(Form::Quadratic);
  FittedModel model;
  model.form = Form::Quadratic;
  model.params = {coeffs[0], coeffs[1], coeffs[2]};
  finish(model, p, y);
  return model;
}

/// Leave-one-out cross-validation error of `form` over the samples; kInf when
/// any sub-fit fails.
double loo_error(Form form, std::span<const double> p, std::span<const double> y) {
  const std::size_t n = p.size();
  double total = 0.0;
  std::vector<double> sub_p(n - 1), sub_y(n - 1);
  for (std::size_t hold = 0; hold < n; ++hold) {
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == hold) continue;
      sub_p[k] = p[i];
      sub_y[k] = y[i];
      ++k;
    }
    const FittedModel sub = fit_form(form, sub_p, sub_y);
    if (!sub.ok) return kInf;
    const double r = y[hold] - sub.evaluate(p[hold]);
    total += r * r;
  }
  return total;
}

}  // namespace

std::string form_name(Form form) {
  switch (form) {
    case Form::Constant: return "constant";
    case Form::Linear: return "linear";
    case Form::Logarithmic: return "log";
    case Form::Exponential: return "exp";
    case Form::Power: return "power";
    case Form::InverseP: return "inverse-p";
    case Form::Quadratic: return "quadratic";
  }
  return "?";
}

std::span<const Form> all_forms() {
  static const Form kAll[] = {Form::Constant,    Form::Linear,   Form::Logarithmic,
                              Form::Exponential, Form::Power,    Form::InverseP,
                              Form::Quadratic};
  return kAll;
}

std::span<const Form> paper_forms() {
  static const Form kPaper[] = {Form::Constant, Form::Linear, Form::Logarithmic,
                                Form::Exponential};
  return kPaper;
}

std::span<const Form> default_forms() {
  static const Form kDefault[] = {Form::Constant,    Form::Linear, Form::Logarithmic,
                                  Form::Exponential, Form::Power,  Form::InverseP};
  return kDefault;
}

int form_complexity(Form form) {
  // Fewer effective degrees of freedom / tamer extrapolation behaviour
  // ranks earlier.  Exponential ranks late because it extrapolates most
  // aggressively.
  switch (form) {
    case Form::Constant: return 0;
    case Form::Linear: return 1;
    case Form::Logarithmic: return 2;
    case Form::InverseP: return 3;
    case Form::Power: return 4;
    case Form::Exponential: return 5;
    case Form::Quadratic: return 6;
  }
  return 99;
}

double FittedModel::evaluate(double p) const {
  const double a = params[0], b = params[1], c = params[2];
  switch (form) {
    case Form::Constant: return a;
    case Form::Linear: return a + b * p;
    case Form::Logarithmic:
    case Form::Power:
    case Form::InverseP: {
      // Domain error, not a silent clamp: flooring p at 1e-300 used to turn
      // evaluate(0) into ~a + b·(-690)-style garbage that flowed straight
      // into predictions.  Core counts are positive by contract (fit_form
      // enforces it on inputs); surface violations at this call boundary.
      if (!(p > 0.0)) {
        util::metrics::Registry::global().counter("fits.evaluate_domain_errors").add();
        throw util::Error(util::format(
            "FittedModel::evaluate: %s form is undefined at core count %g "
            "(must be positive)",
            form_name(form).c_str(), p));
      }
      if (form == Form::Logarithmic) return a + b * std::log(p);
      if (form == Form::Power) return a * std::pow(p, b);
      return a + b / p;
    }
    case Form::Exponential: return a * clamped_exp(b * p);
    case Form::Quadratic: return a + b * p + c * p * p;
  }
  return a;
}

std::string FittedModel::describe() const {
  if (form == Form::Quadratic)
    return util::format("%s(a=%.6g, b=%.6g, c=%.6g)", form_name(form).c_str(), params[0],
                        params[1], params[2]);
  if (form == Form::Constant)
    return util::format("%s(a=%.6g)", form_name(form).c_str(), params[0]);
  return util::format("%s(a=%.6g, b=%.6g)", form_name(form).c_str(), params[0], params[1]);
}

FittedModel fit_form(Form form, std::span<const double> p, std::span<const double> y) {
  PMACX_CHECK(p.size() == y.size(), "fit_form: p/y size mismatch");
  PMACX_CHECK(!p.empty(), "fit_form: no samples");
  for (double pi : p) PMACX_CHECK(pi > 0.0, "fit_form: core counts must be positive");

  switch (form) {
    case Form::Constant: return fit_constant(p, y);
    case Form::Linear:
    case Form::Logarithmic:
    case Form::InverseP: return fit_transformed_linear(form, p, y);
    case Form::Exponential:
    case Form::Power: return fit_log_space(form, p, y);
    case Form::Quadratic: return fit_quadratic(p, y);
  }
  return fail(form);
}

std::vector<FittedModel> fit_all(std::span<const double> p, std::span<const double> y,
                                 const FitOptions& opts) {
  std::vector<FittedModel> fits;
  fits.reserve(opts.forms.size());
  for (Form form : opts.forms) {
    attempts_counter(form).add();
    fits.push_back(fit_form(form, p, y));
  }
  return fits;
}

int form_parameter_count(Form form) {
  switch (form) {
    case Form::Constant: return 1;
    case Form::Quadratic: return 3;
    default: return 2;
  }
}

namespace {

/// Small-sample-corrected Akaike criterion; kInf when under-sampled.
double aicc_score(const FittedModel& fit, std::size_t n) {
  const int k = form_parameter_count(fit.form);
  const double denom = static_cast<double>(n) - k - 1.0;
  if (denom <= 0.0) return kInf;
  const double mean_sse = std::max(fit.sse / static_cast<double>(n), 1e-300);
  return static_cast<double>(n) * std::log(mean_sse) + 2.0 * k +
         2.0 * k * (k + 1.0) / denom;
}

/// Width of the "these scores are tied" band around `best_score`.  Scores can
/// be negative (AICc below -1 is routine for good fits), so the relative term
/// uses |best_score|: the naive `tol · (1 + best_score)` goes non-positive
/// there, which silently disabled the simpler-wins tie-break and could even
/// flip `better` for equal scores.  The band is never below the bare
/// tolerance, so exact ties stay ties at score 0 too.
double tie_band(double tie_tolerance, double best_score) {
  if (!std::isfinite(best_score)) return tie_tolerance;
  return tie_tolerance * (1.0 + std::fabs(best_score));
}

}  // namespace

FittedModel select_best(std::span<const double> p, std::span<const double> y,
                        const FitOptions& opts) {
  PMACX_CHECK(!opts.forms.empty(), "select_best: empty form set");
  SelectionCriterion criterion = opts.criterion;
  if (opts.loo_cv) criterion = SelectionCriterion::LooCv;
  // Criteria that need more samples than available degrade to MinSse.
  if (criterion == SelectionCriterion::LooCv && p.size() < 4)
    criterion = SelectionCriterion::MinSse;

  FittedModel best;
  double best_score = kInf;
  bool have_best = false;
  for (Form form : opts.forms) {
    attempts_counter(form).add();
    FittedModel fit = fit_form(form, p, y);
    if (!fit.ok) continue;
    double score = fit.sse;
    if (criterion == SelectionCriterion::LooCv) {
      score = loo_error(form, p, y);
    } else if (criterion == SelectionCriterion::Aicc) {
      score = aicc_score(fit, p.size());
      // An under-sampled AICc falls back to SSE so some fit always ranks.
      if (!std::isfinite(score)) score = fit.sse;
    }
    if (!std::isfinite(score)) continue;
    const double tolerance = tie_band(opts.tie_tolerance, best_score);
    const bool better = !have_best || score < best_score - tolerance;
    const bool tied = have_best && std::fabs(score - best_score) <= tolerance &&
                      form_complexity(form) < form_complexity(best.form);
    if (better || tied) {
      best = fit;
      best_score = score;
      have_best = true;
    }
  }
  if (have_best) return best;
  // Every candidate failed (e.g. single sample with an exotic form set):
  // fall back to the constant mean so callers always get a usable model.
  return fit_constant(p, y);
}

namespace {

/// The criterion-downgrade rule shared by select_best and the precomputed
/// paths: legacy loo_cv forces LooCv, and LooCv on < 4 samples degrades to
/// MinSse (the refit-per-holdout needs at least 3 remaining points).
SelectionCriterion effective_criterion(const FitOptions& opts, std::size_t n) {
  SelectionCriterion criterion = opts.criterion;
  if (opts.loo_cv) criterion = SelectionCriterion::LooCv;
  if (criterion == SelectionCriterion::LooCv && n < 4) criterion = SelectionCriterion::MinSse;
  return criterion;
}

}  // namespace

std::vector<double> selection_scores(std::span<const FittedModel> fits,
                                     std::span<const double> p, std::span<const double> y,
                                     const FitOptions& opts) {
  PMACX_CHECK(p.size() == y.size(), "selection_scores: p/y size mismatch");
  const SelectionCriterion criterion = effective_criterion(opts, p.size());
  std::vector<double> scores;
  scores.reserve(fits.size());
  for (const FittedModel& fit : fits) {
    if (!fit.ok) {
      scores.push_back(kInf);
      continue;
    }
    double score = fit.sse;
    if (criterion == SelectionCriterion::LooCv) {
      score = loo_error(fit.form, p, y);
    } else if (criterion == SelectionCriterion::Aicc) {
      score = aicc_score(fit, p.size());
      // An under-sampled AICc falls back to SSE so some fit always ranks.
      if (!std::isfinite(score)) score = fit.sse;
    }
    scores.push_back(std::isfinite(score) ? score : kInf);
  }
  return scores;
}

FittedModel select_from(std::span<const FittedModel> fits, std::span<const double> scores,
                        std::span<const double> p, std::span<const double> y,
                        const FitOptions& opts) {
  PMACX_CHECK(fits.size() == scores.size(), "select_from: fits/scores size mismatch");
  FittedModel best;
  double best_score = kInf;
  bool have_best = false;
  for (std::size_t i = 0; i < fits.size(); ++i) {
    const FittedModel& fit = fits[i];
    if (!fit.ok || !std::isfinite(scores[i])) continue;
    const double score = scores[i];
    const double tolerance = tie_band(opts.tie_tolerance, best_score);
    const bool better = !have_best || score < best_score - tolerance;
    const bool tied = have_best && std::fabs(score - best_score) <= tolerance &&
                      form_complexity(fit.form) < form_complexity(best.form);
    if (better || tied) {
      best = fit;
      best_score = score;
      have_best = true;
    }
  }
  if (have_best) return best;
  return fit_constant(p, y);
}

PredictionInterval bootstrap_interval(std::span<const double> p, std::span<const double> y,
                                      double target, const FitOptions& opts,
                                      std::size_t resamples, double confidence,
                                      std::uint64_t seed) {
  PMACX_CHECK(!p.empty() && p.size() == y.size(), "bootstrap: bad series");
  PMACX_CHECK(resamples >= 2, "bootstrap: need at least two resamples");
  PMACX_CHECK(confidence > 0.0 && confidence < 1.0, "bootstrap: confidence out of (0,1)");

  const FittedModel base = select_best(p, y, opts);
  util::metrics::Registry::global().counter("fits.bootstrap_resamples").add(resamples);
  PredictionInterval interval;
  interval.point = base.evaluate(target);

  // Residual bootstrap: resample the fit residuals onto the fitted curve,
  // refit with the same selection policy, and collect the predictions.
  std::vector<double> fitted(p.size()), residuals(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    fitted[i] = base.evaluate(p[i]);
    residuals[i] = y[i] - fitted[i];
  }

  util::Rng rng(seed);
  std::vector<double> predictions;
  predictions.reserve(resamples);
  std::vector<double> resampled(p.size());
  for (std::size_t b = 0; b < resamples; ++b) {
    for (std::size_t i = 0; i < p.size(); ++i)
      resampled[i] = fitted[i] + residuals[rng.below(residuals.size())];
    // A resample can land on a pathological refit (e.g. an exponential that
    // overflows at the target); a non-finite prediction would poison the
    // sorted percentile walk, so it is dropped rather than ranked.
    const double predicted = select_best(p, resampled, opts).evaluate(target);
    if (std::isfinite(predicted)) predictions.push_back(predicted);
  }
  std::sort(predictions.begin(), predictions.end());

  if (predictions.empty() || !std::isfinite(interval.point)) {
    // Nothing rankable (or no finite point to rank around): collapse to the
    // point rather than inventing bounds.
    interval.lo = interval.point;
    interval.hi = interval.point;
    return interval;
  }
  const double alpha = (1.0 - confidence) / 2.0;
  interval.lo = percentile(predictions, alpha);
  interval.hi = percentile(predictions, 1.0 - alpha);
  // Exact-fit series (all residuals ~0) and tiny resample counts collapse the
  // percentile indices onto one prediction; floating-point refits can still
  // land that prediction a hair off the base fit's.  The contract is
  // lo <= point <= hi, never inverted, so widen to include the point.
  interval.lo = std::min(interval.lo, interval.point);
  interval.hi = std::max(interval.hi, interval.point);
  return interval;
}

}  // namespace pmacx::stats
