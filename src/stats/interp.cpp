#include "stats/interp.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pmacx::stats {
namespace {

/// Index i such that xs[i] <= x < xs[i+1], clamped into [0, xs.size()-2];
/// assumes xs.size() >= 2.
std::size_t bracket(std::span<const double> xs, double x) {
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::ptrdiff_t raw = (it - xs.begin()) - 1;
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(raw, 0, static_cast<std::ptrdiff_t>(xs.size()) - 2));
}

void check_axis(std::span<const double> xs, const char* name) {
  PMACX_CHECK(!xs.empty(), std::string(name) + " axis is empty");
  for (std::size_t i = 1; i < xs.size(); ++i)
    PMACX_CHECK(xs[i] > xs[i - 1], std::string(name) + " axis must be strictly increasing");
}

}  // namespace

double interp1(std::span<const double> xs, std::span<const double> ys, double x) {
  check_axis(xs, "x");
  PMACX_CHECK(xs.size() == ys.size(), "interp1: xs/ys size mismatch");
  if (xs.size() == 1) return ys[0];
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const std::size_t i = bracket(xs, x);
  const double t = (x - xs[i]) / (xs[i + 1] - xs[i]);
  return ys[i] + t * (ys[i + 1] - ys[i]);
}

Grid2::Grid2(std::vector<double> xs, std::vector<double> ys, std::vector<double> values)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values)) {
  check_axis(xs_, "x");
  check_axis(ys_, "y");
  PMACX_CHECK(values_.size() == xs_.size() * ys_.size(),
              "Grid2: values size must be xs.size()*ys.size()");
}

double Grid2::at(double x, double y) const {
  const double cx = std::clamp(x, xs_.front(), xs_.back());
  const double cy = std::clamp(y, ys_.front(), ys_.back());
  if (xs_.size() == 1 && ys_.size() == 1) return values_[0];

  auto value = [&](std::size_t i, std::size_t j) { return values_[i * ys_.size() + j]; };

  if (xs_.size() == 1) {
    const std::size_t j = bracket(ys_, cy);
    const double t = (cy - ys_[j]) / (ys_[j + 1] - ys_[j]);
    return value(0, j) + t * (value(0, j + 1) - value(0, j));
  }
  if (ys_.size() == 1) {
    const std::size_t i = bracket(xs_, cx);
    const double t = (cx - xs_[i]) / (xs_[i + 1] - xs_[i]);
    return value(i, 0) + t * (value(i + 1, 0) - value(i, 0));
  }

  const std::size_t i = bracket(xs_, cx);
  const std::size_t j = bracket(ys_, cy);
  const double tx = (cx - xs_[i]) / (xs_[i + 1] - xs_[i]);
  const double ty = (cy - ys_[j]) / (ys_[j + 1] - ys_[j]);
  const double v00 = value(i, j), v01 = value(i, j + 1);
  const double v10 = value(i + 1, j), v11 = value(i + 1, j + 1);
  const double lo = v00 + ty * (v01 - v00);
  const double hi = v10 + ty * (v11 - v10);
  return lo + tx * (hi - lo);
}

}  // namespace pmacx::stats
