// Batched structure-of-arrays canonical fitting.
//
// The extrapolator fits the same form set over the same core-count axis for
// millions of independent series.  The per-series path (fit_all +
// selection_scores) re-derives everything per series: abscissa transforms,
// OLS moments of x, heap-allocated scratch.  BatchFitter hoists everything
// that depends only on the axis to construction time and evaluates whole
// batches of series laid out sample-major (structure of arrays), so the
// per-form moment/SSE loops run as AVX2 column kernels (util::simd) with
// one element per lane.
//
// Identity contract: for every series e in a batch,
//     candidates(e) == stats::fit_all(axis, series_e, opts)      and
//     scores(e)     == stats::selection_scores(candidates, ...)
// bit for bit — same params, same sse/r2, same ok flags, same metric
// counter totals.  The batch path achieves its speedup by sharing
// axis-derived work across series and reusing transcendental values the
// scalar path computes twice (pow/exp between scale refinement and SSE,
// log between the exponential and power forms), never by reordering or
// contracting any per-series arithmetic.  Forms or series the batch path
// cannot reproduce exactly (quadratic, zero-dropping log-space series,
// degenerate axes, LooCv/AICc scoring) transparently fall back to the
// scalar routines per element.
//
// Verified by tests/stats_batch_test.cpp (per-series equality over
// adversarial inputs) and tests/simd_identity_test.cpp (whole-workload
// scalar-vs-AVX2 byte identity).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "stats/canonical.hpp"
#include "util/arena.hpp"

namespace pmacx::stats {

class BatchFitter {
 public:
  /// `axis` is the shared abscissa (core counts; all positive, like
  /// fit_form requires).  Precomputes the per-form transforms and OLS
  /// moments; construction is O(axis × forms) and the instance is
  /// immutable afterwards, so one fitter can be shared across threads.
  BatchFitter(std::vector<double> axis, FitOptions opts);

  std::span<const double> axis() const { return axis_; }
  const FitOptions& options() const { return opts_; }
  std::size_t form_count() const { return opts_.forms.size(); }

  /// Fits `count` series stored sample-major: sample s of series e lives at
  /// y[s * stride + e] (stride >= count), s over the full axis.
  ///
  /// Writes form f of series e to candidates[e * form_count() + f] and its
  /// selection score to scores[e * form_count() + f], exactly as
  /// fit_all/selection_scores order them.  `arena` supplies scratch; the
  /// caller owns its lifetime/reset (the y buffer may live in the same
  /// arena — fit only allocates, never resets).
  void fit(const double* y, std::size_t stride, std::size_t count,
           FittedModel* candidates, double* scores, util::Arena& arena) const;

 private:
  struct XDomain {
    // fit_linear's x-side moments for one shared abscissa transform.
    std::vector<double> x;   // transformed abscissa
    std::vector<double> dx;  // x[i] - mean_x
    double mean_x = 0.0;
    double sxx = 0.0;
    bool usable = false;  // n >= 2 and sxx > 0 (else scalar fallback)
  };

  // `ycol` is the series-major transpose of the caller's sample-major batch
  // (sample i of series e at ycol[e * n_ + i]), staged once per fit() call:
  // the per-series loops (sign scans, scale refinement, SSE, scalar
  // fallbacks) walk one series at a time, and reading it contiguously
  // instead of at `stride` doubles per step is worth more than the one-pass
  // transpose costs.
  void fit_linear_family(Form form, const XDomain& domain, const double* y,
                         std::size_t stride, std::size_t count,
                         const double* ycol, const double* mean_y,
                         const double* sst, std::size_t form_index,
                         FittedModel* candidates, util::Arena& arena) const;
  void fit_log_family(const double* y, std::size_t stride, std::size_t count,
                      const double* ycol, const double* sst,
                      std::span<const std::size_t> form_indices,
                      FittedModel* candidates, util::Arena& arena) const;
  void fit_scalar_column(Form form, const double* ycol, std::size_t e,
                         std::size_t form_index, FittedModel* candidates) const;

  std::vector<double> axis_;
  FitOptions opts_;
  std::size_t n_ = 0;
  std::vector<double> log_p_;  // std::log(axis[i]) — shared by Logarithmic/Power
  XDomain linear_;             // x = p       (Linear, Exponential's log-space OLS)
  XDomain logarithmic_;        // x = ln p    (Logarithmic, Power's log-space OLS)
  XDomain inverse_;            // x = 1/p     (InverseP)
};

}  // namespace pmacx::stats
