#include "stats/batch.hpp"

#include <cmath>
#include <limits>

#include "stats/detail.hpp"
#include "stats/ols.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/simd.hpp"

namespace pmacx::stats {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

FittedModel fail_model(Form form) {
  FittedModel model;
  model.form = form;
  model.sse = kInf;
  model.r2 = -kInf;
  model.ok = false;
  return model;
}

/// canonical.cpp's finish() given the already-computed original-space SSE
/// and the series' SST (its r_squared recomputes mean/SST per call with the
/// same ascending loops as the column kernels, so `sst` is the same bits).
void finish_model(FittedModel& model, double sse, double sst) {
  model.sse = sse;
  if (sst <= 0.0) {
    model.r2 = sse <= 1e-300 ? 1.0 : 0.0;
  } else {
    model.r2 = 1.0 - sse / sst;
  }
  model.ok = std::isfinite(model.sse);
  if (!model.ok) model.sse = kInf;
}

/// selection_scores' criterion downgrade (legacy loo_cv flag; small-sample
/// LooCv falls back to MinSse).
SelectionCriterion effective_criterion(const FitOptions& opts, std::size_t n) {
  SelectionCriterion criterion = opts.criterion;
  if (opts.loo_cv) criterion = SelectionCriterion::LooCv;
  if (criterion == SelectionCriterion::LooCv && n < 4)
    criterion = SelectionCriterion::MinSse;
  return criterion;
}

util::metrics::Counter& attempts_counter(Form form) {
  return util::metrics::Registry::global().counter("fits.attempted." +
                                                   form_name(form));
}

}  // namespace

BatchFitter::BatchFitter(std::vector<double> axis, FitOptions opts)
    : axis_(std::move(axis)), opts_(std::move(opts)), n_(axis_.size()) {
  PMACX_CHECK(!axis_.empty(), "BatchFitter: no samples");
  for (double p : axis_) PMACX_CHECK(p > 0.0, "BatchFitter: core counts must be positive");

  log_p_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) log_p_[i] = std::log(axis_[i]);

  const auto make_domain = [this](const double* x) {
    XDomain d;
    d.x.assign(x, x + n_);
    if (n_ < 2) return d;
    // fit_linear's x-side moments, accumulated in the same ascending order
    // (its joint mean_x/mean_y loop keeps the two accumulators independent,
    // so splitting them preserves every bit).
    double mean_x = 0.0;
    for (std::size_t i = 0; i < n_; ++i) mean_x += d.x[i];
    mean_x /= static_cast<double>(n_);
    d.mean_x = mean_x;
    d.dx.resize(n_);
    double sxx = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      const double dx = d.x[i] - mean_x;
      d.dx[i] = dx;
      sxx += dx * dx;
    }
    d.sxx = sxx;
    d.usable = sxx > 0.0;  // degenerate axes take the scalar fallback
    return d;
  };

  linear_ = make_domain(axis_.data());
  logarithmic_ = make_domain(log_p_.data());
  std::vector<double> inv(n_);
  for (std::size_t i = 0; i < n_; ++i) inv[i] = 1.0 / axis_[i];
  inverse_ = make_domain(inv.data());

  // Touch every counter the hot loop will bump so first use is allocation-
  // free and fits.simd_batches is present in snapshots even when every
  // batch ends up on the scalar path.
  for (Form form : opts_.forms) attempts_counter(form);
  util::metrics::Registry::global().counter("fits.simd_batches");
}

void BatchFitter::fit_scalar_column(Form form, const double* ycol,
                                    std::size_t e, std::size_t form_index,
                                    FittedModel* candidates) const {
  candidates[e * form_count() + form_index] =
      fit_form(form, axis_, std::span<const double>(ycol + e * n_, n_));
}

void BatchFitter::fit_linear_family(Form form, const XDomain& domain,
                                    const double* y, std::size_t stride,
                                    std::size_t count, const double* ycol,
                                    const double* mean_y, const double* sst,
                                    std::size_t form_index,
                                    FittedModel* candidates,
                                    util::Arena& arena) const {
  const std::size_t F = form_count();
  if (!domain.usable) {
    // n < 2 or degenerate x: fit_linear's constant-y special case needs a
    // per-series decision, so replicate via the scalar path.
    for (std::size_t e = 0; e < count; ++e)
      fit_scalar_column(form, ycol, e, form_index, candidates);
    return;
  }

  const util::simd::Kernels& k = util::simd::kernels();
  double* sxy = arena.allocate<double>(count);
  double* a = arena.allocate<double>(count);
  double* b = arena.allocate<double>(count);
  double* sse = arena.allocate<double>(count);
  k.col_sxy(y, stride, count, n_, domain.dx.data(), mean_y, sxy);
  for (std::size_t e = 0; e < count; ++e) {
    const double slope = sxy[e] / domain.sxx;
    b[e] = slope;
    a[e] = mean_y[e] - slope * domain.mean_x;
  }
  // Original-space SSE against FittedModel::evaluate's exact expression:
  // a + b·p (Linear), a + b·ln p (Logarithmic), a + b/p (InverseP).
  if (form == Form::InverseP) {
    k.col_sse_affine_div(y, stride, count, n_, axis_.data(), a, b, sse);
  } else {
    const double* t = form == Form::Logarithmic ? log_p_.data() : axis_.data();
    k.col_sse_affine(y, stride, count, n_, t, a, b, sse);
  }
  for (std::size_t e = 0; e < count; ++e) {
    FittedModel& model = candidates[e * F + form_index];
    if (!std::isfinite(b[e]) || !std::isfinite(a[e])) {
      model = fail_model(form);
      continue;
    }
    model = FittedModel{};
    model.form = form;
    model.params = {a[e], b[e], 0.0};
    finish_model(model, sse[e], sst[e]);
  }
}

void BatchFitter::fit_log_family(const double* y, std::size_t stride,
                                 std::size_t count, const double* ycol,
                                 const double* sst,
                                 std::span<const std::size_t> form_indices,
                                 FittedModel* candidates,
                                 util::Arena& arena) const {
  const std::size_t F = form_count();
  if (n_ < 2) {
    for (std::size_t e = 0; e < count; ++e)
      for (std::size_t fi : form_indices)
        candidates[e * F + fi] = fail_model(opts_.forms[fi]);
    return;
  }

  // One sign/zero scan per series, shared by the exponential and power
  // forms (the scalar path repeats it per form with identical outcome).
  // NaN samples compare neither positive nor negative, so like the scalar
  // scan they land in the zero count; they are *not* excluded from the
  // log-space regression (NaN != 0.0), which poisons it into a clean fail —
  // exactly the scalar behaviour.
  double* sign = arena.allocate<double>(count);
  std::uint8_t* fast = arena.allocate<std::uint8_t>(count);      // zeros == 0
  std::uint8_t* eligible = arena.allocate<std::uint8_t>(count);  // passes early checks
  for (std::size_t e = 0; e < count; ++e) {
    const double* yc = ycol + e * n_;
    double s = 0.0;
    std::size_t zeros = 0;
    bool mixed = false;
    for (std::size_t i = 0; i < n_; ++i) {
      const double v = yc[i];
      if (v > 0.0) {
        if (s < 0.0) {
          mixed = true;
          break;
        }
        s = 1.0;
      } else if (v < 0.0) {
        if (s > 0.0) {
          mixed = true;
          break;
        }
        s = -1.0;
      } else {
        ++zeros;
      }
    }
    sign[e] = s;
    eligible[e] = !mixed && s != 0.0 && n_ - zeros >= 2;
    fast[e] = eligible[e] && zeros == 0;
  }

  // ln(sign·y) is identical for both forms (only the abscissa differs), so
  // the scalar path's per-form log pass collapses to one.  Series that drop
  // zeros fit a shorter, per-series abscissa and go through the scalar
  // routine instead (which also tallies fits.zero_dropped_samples).
  double* ln_y = arena.allocate<double>(n_ * count);
  for (std::size_t s = 0; s < n_; ++s) {
    for (std::size_t e = 0; e < count; ++e) {
      ln_y[s * count + e] =
          fast[e] ? std::log(sign[e] * y[s * stride + e]) : 0.0;
    }
  }

  const util::simd::Kernels& k = util::simd::kernels();
  double* mean_ln = arena.allocate<double>(count);
  double* sxy = arena.allocate<double>(count);
  double* g = arena.allocate<double>(n_);
  k.col_mean(ln_y, count, count, n_, mean_ln);

  for (std::size_t fi : form_indices) {
    const Form form = opts_.forms[fi];
    const bool power = form == Form::Power;
    const XDomain& domain = power ? logarithmic_ : linear_;
    if (!domain.usable) {
      for (std::size_t e = 0; e < count; ++e)
        fit_scalar_column(form, ycol, e, fi, candidates);
      continue;
    }
    k.col_sxy(ln_y, count, count, n_, domain.dx.data(), mean_ln, sxy);
    for (std::size_t e = 0; e < count; ++e) {
      const double* yc = ycol + e * n_;
      FittedModel& model = candidates[e * F + fi];
      if (!fast[e]) {
        if (eligible[e]) {
          fit_scalar_column(form, ycol, e, fi, candidates);
        } else {
          model = fail_model(form);
        }
        continue;
      }
      const double b = sxy[e] / domain.sxx;
      const double intercept = mean_ln[e] - b * domain.mean_x;
      if (!std::isfinite(b) || !std::isfinite(intercept)) {
        model = fail_model(form);
        continue;
      }
      // Closed-form scale refinement.  The scalar path evaluates p^b / e^bp
      // here and then again inside finish()'s SSE; the g values are the
      // same expressions on the same inputs, so reusing them is free and
      // bit-exact.
      double num = 0.0, den = 0.0;
      for (std::size_t i = 0; i < n_; ++i) {
        const double gi =
            power ? std::pow(axis_[i], b) : detail::clamped_exp(b * axis_[i]);
        g[i] = gi;
        num += yc[i] * gi;
        den += gi * gi;
      }
      if (den <= 0.0 || !std::isfinite(den)) {
        model = fail_model(form);
        continue;
      }
      const double a = num / den;
      double total = 0.0;
      for (std::size_t i = 0; i < n_; ++i) {
        const double r = yc[i] - a * g[i];
        total += r * r;
      }
      model = FittedModel{};
      model.form = form;
      model.params = {a, b, 0.0};
      finish_model(model, total, sst[e]);
    }
  }
}

void BatchFitter::fit(const double* y, std::size_t stride, std::size_t count,
                      FittedModel* candidates, double* scores,
                      util::Arena& arena) const {
  if (count == 0) return;
  PMACX_CHECK(stride >= count, "BatchFitter::fit: stride < count");
  const std::size_t F = form_count();

  const util::simd::Kernels& k = util::simd::kernels();
  if (k.level == util::simd::Level::Avx2)
    util::metrics::Registry::global().counter("fits.simd_batches").add();
  // fit_all counts one attempt per form per series.
  for (Form form : opts_.forms) attempts_counter(form).add(count);

  double* mean_y = arena.allocate<double>(count);
  double* sst = arena.allocate<double>(count);
  k.col_mean(y, stride, count, n_, mean_y);
  k.col_sst(y, stride, count, n_, mean_y, sst);

  // Series-major staging copy (see the declaration comment): one pass of
  // contiguous reads here buys contiguous per-series walks in every scan,
  // refinement and fallback loop below.  Pure copy — bit-exact by nature.
  double* ycol = arena.allocate<double>(n_ * count);
  for (std::size_t s = 0; s < n_; ++s) {
    const double* row = y + s * stride;
    for (std::size_t e = 0; e < count; ++e) ycol[e * n_ + s] = row[e];
  }

  std::vector<std::size_t> log_forms;
  for (std::size_t fi = 0; fi < F; ++fi) {
    const Form form = opts_.forms[fi];
    switch (form) {
      case Form::Constant:
        for (std::size_t e = 0; e < count; ++e) {
          FittedModel& model = candidates[e * F + fi];
          model = FittedModel{};
          model.form = Form::Constant;
          model.params = {mean_y[e], 0.0, 0.0};
          // evaluate() is the bare mean here, so the original-space SSE is
          // the SST — the same d·d accumulation finish() would redo.
          finish_model(model, sst[e], sst[e]);
        }
        break;
      case Form::Linear:
        fit_linear_family(form, linear_, y, stride, count, ycol, mean_y, sst,
                          fi, candidates, arena);
        break;
      case Form::Logarithmic:
        fit_linear_family(form, logarithmic_, y, stride, count, ycol, mean_y,
                          sst, fi, candidates, arena);
        break;
      case Form::InverseP:
        fit_linear_family(form, inverse_, y, stride, count, ycol, mean_y, sst,
                          fi, candidates, arena);
        break;
      case Form::Exponential:
      case Form::Power:
        log_forms.push_back(fi);
        break;
      default:
        // Quadratic (dense normal-equations solve) has no batch kernel.
        for (std::size_t e = 0; e < count; ++e)
          fit_scalar_column(form, ycol, e, fi, candidates);
        break;
    }
  }
  if (!log_forms.empty())
    fit_log_family(y, stride, count, ycol, sst, log_forms, candidates, arena);

  const SelectionCriterion criterion = effective_criterion(opts_, n_);
  if (criterion == SelectionCriterion::MinSse) {
    // selection_scores under MinSse: a usable fit scores its (finite by
    // construction) SSE, everything else +inf.
    for (std::size_t i = 0; i < count * F; ++i)
      scores[i] = candidates[i].ok ? candidates[i].sse : kInf;
  } else {
    // LooCv refits per holdout and AICc is cold; route both through the
    // scalar scorer per series.
    for (std::size_t e = 0; e < count; ++e) {
      const std::vector<double> element_scores = selection_scores(
          std::span<const FittedModel>(candidates + e * F, F), axis_,
          std::span<const double>(ycol + e * n_, n_), opts_);
      for (std::size_t fi = 0; fi < F; ++fi) scores[e * F + fi] = element_scores[fi];
    }
  }
}

}  // namespace pmacx::stats
