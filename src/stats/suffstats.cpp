#include "stats/suffstats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/crc32.hpp"

namespace pmacx::stats {
namespace {

/// Solves the 2x2 normal equations for y = a + b·x from identity-weighted
/// sums.  Returns false on a degenerate design (all x equal).
bool solve_line(const Moments& m, double& a, double& b) {
  if (m.n < 2) return false;
  const double n = static_cast<double>(m.n);
  const double denom = n * m.sxx - m.sx * m.sx;
  if (!(denom > 0.0) || !std::isfinite(denom)) return false;
  b = (n * m.sxy - m.sx * m.sy) / denom;
  a = (m.sy - b * m.sx) / n;
  return std::isfinite(a) && std::isfinite(b);
}

/// SSE of y = a + b·x from moments: expand Σ(y - a - bx)².
double line_sse(const Moments& m, double a, double b) {
  const double n = static_cast<double>(m.n);
  const double sse = m.syy + n * a * a + b * b * m.sxx + 2.0 * a * b * m.sx -
                     2.0 * a * m.sy - 2.0 * b * m.sxy;
  return std::max(sse, 0.0);  // cancellation can dip slightly negative
}

/// SSE of y = a + b·x + c·x² from moments.
double quad_sse(const Moments& m, double a, double b, double c) {
  const double n = static_cast<double>(m.n);
  const double sse = m.syy + n * a * a + b * b * m.sxx + c * c * m.sx4 +
                     2.0 * a * b * m.sx + 2.0 * a * c * m.sxx + 2.0 * b * c * m.sx3 -
                     2.0 * a * m.sy - 2.0 * b * m.sxy - 2.0 * c * m.sx2y;
  return std::max(sse, 0.0);
}

double r2_from(const Moments& m, double sse) {
  const double n = static_cast<double>(m.n);
  const double ss_tot = std::max(m.syy - m.sy * m.sy / n, 0.0);
  if (ss_tot <= 0.0) return sse <= 0.0 ? 1.0 : 0.0;
  return 1.0 - sse / ss_tot;
}

/// Fits the straight line of `family` and packages it as `form` with the
/// given parameter layout (a = intercept, b = slope).
FittedModel fit_line_family(Form form, const SeriesMoments& sm, MomentFamily family,
                            bool needs_positive_axis) {
  FittedModel model;
  model.form = form;
  model.sse = std::numeric_limits<double>::infinity();
  if (needs_positive_axis && sm.bad_axis) return model;
  const Moments& m = sm.family(family);
  double a = 0.0, b = 0.0;
  if (!solve_line(m, a, b)) return model;
  model.params = {a, b, 0.0};
  model.sse = line_sse(m, a, b);
  model.r2 = r2_from(m, model.sse);
  model.ok = true;
  return model;
}

/// Log-space fit (exponential/power): the regression ran over ln|y|, so the
/// intercept exponentiates into the scale and the sign census decides
/// usability — mixed signs (or all zeros) cannot be represented, matching
/// fit_log_space.  sse/r2 stay in log space; fit_form's original-space
/// residual and scale refinement need the samples themselves.
FittedModel fit_log_family(Form form, const SeriesMoments& sm, MomentFamily family) {
  FittedModel model;
  model.form = form;
  model.sse = std::numeric_limits<double>::infinity();
  if (sm.bad_axis) return model;
  if (sm.pos > 0 && sm.neg > 0) return model;  // mixed signs: unrepresentable
  if (sm.pos + sm.neg == 0) return model;      // all zero: nothing to fit
  const double sign = sm.neg > 0 ? -1.0 : 1.0;
  const Moments& m = sm.family(family);
  double intercept = 0.0, slope = 0.0;
  if (!solve_line(m, intercept, slope)) return model;
  const double scale = sign * std::exp(intercept);
  if (!std::isfinite(scale)) return model;
  model.params = {scale, slope, 0.0};
  model.sse = line_sse(m, intercept, slope);
  model.r2 = r2_from(m, model.sse);
  model.ok = true;
  return model;
}

FittedModel fit_constant(const SeriesMoments& sm) {
  FittedModel model;
  model.form = Form::Constant;
  model.sse = std::numeric_limits<double>::infinity();
  const Moments& m = sm.family(MomentFamily::Identity);
  if (m.n == 0) return model;
  const double n = static_cast<double>(m.n);
  const double a = m.sy / n;
  if (!std::isfinite(a)) return model;
  model.params = {a, 0.0, 0.0};
  model.sse = std::max(m.syy - m.sy * m.sy / n, 0.0);
  model.r2 = r2_from(m, model.sse);
  model.ok = true;
  return model;
}

FittedModel fit_quadratic(const SeriesMoments& sm) {
  FittedModel model;
  model.form = Form::Quadratic;
  model.sse = std::numeric_limits<double>::infinity();
  const Moments& m = sm.family(MomentFamily::Identity);
  // Matches fit_form's ≥ 4 rule: with 3 samples a quadratic interpolates
  // and cannot be ranked against the two-parameter forms.
  if (m.n < 4) return model;
  const double n = static_cast<double>(m.n);
  // Normal equations A·[a b c]^T = rhs, A symmetric.
  double A[3][3] = {{n, m.sx, m.sxx}, {m.sx, m.sxx, m.sx3}, {m.sxx, m.sx3, m.sx4}};
  double rhs[3] = {m.sy, m.sxy, m.sx2y};
  // Gaussian elimination with partial pivoting on the 3x3 system.
  int perm[3] = {0, 1, 2};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 3; ++row)
      if (std::fabs(A[perm[row]][col]) > std::fabs(A[perm[pivot]][col])) pivot = row;
    std::swap(perm[col], perm[pivot]);
    const double diag = A[perm[col]][col];
    if (std::fabs(diag) < 1e-300) return model;  // singular design
    for (int row = col + 1; row < 3; ++row) {
      const double factor = A[perm[row]][col] / diag;
      for (int k = col; k < 3; ++k) A[perm[row]][k] -= factor * A[perm[col]][k];
      rhs[perm[row]] -= factor * rhs[perm[col]];
    }
  }
  double x[3];
  for (int col = 2; col >= 0; --col) {
    double v = rhs[perm[col]];
    for (int k = col + 1; k < 3; ++k) v -= A[perm[col]][k] * x[k];
    x[col] = v / A[perm[col]][col];
  }
  if (!std::isfinite(x[0]) || !std::isfinite(x[1]) || !std::isfinite(x[2])) return model;
  model.params = {x[0], x[1], x[2]};
  model.sse = quad_sse(m, x[0], x[1], x[2]);
  model.r2 = r2_from(m, model.sse);
  model.ok = true;
  return model;
}

}  // namespace

void SeriesMoments::add_sample(double p, double y) {
  ++count;
  char raw[16];
  std::memcpy(raw, &p, 8);
  std::memcpy(raw + 8, &y, 8);
  fingerprint = util::crc32(raw, sizeof raw, fingerprint);

  if (y > 0.0)
    ++pos;
  else if (y < 0.0)
    ++neg;
  else
    ++zero;
  if (!(p > 0.0)) bad_axis = true;

  families[static_cast<std::size_t>(MomentFamily::Identity)].add(p, y);
  if (p > 0.0) {
    const double lp = std::log(p);
    families[static_cast<std::size_t>(MomentFamily::LogX)].add(lp, y);
    families[static_cast<std::size_t>(MomentFamily::InvX)].add(1.0 / p, y);
    // Log-space families skip exact zeros, exactly as fit_log_space drops
    // them from its regression (they cannot be log-transformed).
    if (y != 0.0) {
      const double ly = std::log(std::fabs(y));
      families[static_cast<std::size_t>(MomentFamily::ExpY)].add(p, ly);
      families[static_cast<std::size_t>(MomentFamily::PowXY)].add(lp, ly);
    }
  }
}

SeriesMoments SeriesMoments::from_series(std::span<const double> p,
                                         std::span<const double> y) {
  SeriesMoments sm;
  const std::size_t n = std::min(p.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) sm.add_sample(p[i], y[i]);
  return sm;
}

std::uint32_t series_fingerprint(std::span<const double> p, std::span<const double> y,
                                 std::size_t n) {
  std::uint32_t crc = 0;
  n = std::min({n, p.size(), y.size()});
  for (std::size_t i = 0; i < n; ++i) {
    char raw[16];
    std::memcpy(raw, &p[i], 8);
    std::memcpy(raw + 8, &y[i], 8);
    crc = util::crc32(raw, sizeof raw, crc);
  }
  return crc;
}

FittedModel fit_from_moments(Form form, const SeriesMoments& sm) {
  switch (form) {
    case Form::Constant: return fit_constant(sm);
    case Form::Linear:
      return fit_line_family(Form::Linear, sm, MomentFamily::Identity,
                             /*needs_positive_axis=*/false);
    case Form::Logarithmic:
      return fit_line_family(Form::Logarithmic, sm, MomentFamily::LogX,
                             /*needs_positive_axis=*/true);
    case Form::InverseP:
      return fit_line_family(Form::InverseP, sm, MomentFamily::InvX,
                             /*needs_positive_axis=*/true);
    case Form::Exponential: return fit_log_family(Form::Exponential, sm, MomentFamily::ExpY);
    case Form::Power: return fit_log_family(Form::Power, sm, MomentFamily::PowXY);
    case Form::Quadratic: return fit_quadratic(sm);
  }
  FittedModel model;
  model.form = form;
  model.sse = std::numeric_limits<double>::infinity();
  return model;
}

}  // namespace pmacx::stats
