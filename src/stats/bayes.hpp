// Bayesian model averaging over the canonical forms — prediction intervals
// instead of point estimates.
//
// The paper keeps the single best-fitting form per element and reports a
// point extrapolation; Kohashi et al. (PAPERS.md) show the richer move: a
// posterior over model forms and parameters whose predictive distribution
// carries the uncertainty of the extrapolation.  This module implements the
// no-dependency version of that idea:
//
//   * per-form evidence by a BIC/Laplace approximation around the OLS
//     estimates, marginalising the noise scale over a log-spaced grid
//     (flat prior over forms and grid points);
//   * form weights by normalised evidence;
//   * a posterior-predictive mixture sampled deterministically (fixed seed)
//     whose lower/median/upper quantiles at the target core count form the
//     prediction interval.  Per-form predictive noise is Student-t with the
//     fit's residual degrees of freedom — at the 3-6 sample counts traces
//     provide, the plug-in normal noticeably undercovers and the t
//     correction is what makes the stated coverage honest.
//
// Everything is closed-form plus a small seeded Monte-Carlo mixture draw —
// no MCMC, no external libraries — and reuses the already-fitted candidate
// models from fit_all/BatchFitter, so the posterior costs no refitting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/canonical.hpp"

namespace pmacx::stats::bayes {

/// Posterior construction and sampling knobs.
struct Options {
  /// Candidate forms and tie policy; the same FitOptions the point path uses,
  /// so the posterior ranges over exactly the forms select_best considered
  /// (pass paper_forms() for the paper-faithful four).
  FitOptions fit{};
  /// Central interval mass: 0.9 yields the [5%, 95%] predictive quantiles.
  double coverage = 0.9;
  /// Noise-scale grid: log-spaced sigma^2 factors 2^-4 .. 2^4 around the
  /// per-form residual variance, `noise_grid` points, flat prior.
  std::size_t noise_grid = 9;
  /// Posterior-predictive mixture draws per prediction.
  std::size_t samples = 256;
  /// Seed for the deterministic mixture sampling.
  std::uint64_t seed = 1;
};

/// One usable form's posterior component.
struct FormPosterior {
  FittedModel model;            ///< the OLS/MAP parameter estimate
  double log_evidence = 0.0;    ///< grid-marginalised, BIC-penalised
  double weight = 0.0;          ///< normalised posterior form probability
  double sigma2 = 0.0;          ///< residual variance SSE / max(n - k, 1)
  double dof = 1.0;             ///< residual degrees of freedom max(n - k, 1)
  double x_mean = 0.0;          ///< abscissa mean in the form's fit transform
  double sxx = 0.0;             ///< abscissa scatter (leverage denominator)
};

/// Posterior over forms for one series.  Built once per element, then
/// queried at any number of targets.
struct Posterior {
  std::vector<FormPosterior> forms;  ///< usable candidates only, fit-form order
  std::size_t n = 0;                 ///< sample count of the fitted series
  std::size_t map_index = 0;         ///< index of the MAP form in `forms`
  bool ok = false;                   ///< false when no candidate was usable

  const FittedModel& map_model() const { return forms[map_index].model; }
};

/// Central prediction interval at one target core count.
struct Prediction {
  double lo = 0.0;      ///< lower predictive quantile at (1 - coverage) / 2
  double median = 0.0;  ///< predictive median
  double hi = 0.0;      ///< upper predictive quantile at (1 + coverage) / 2
  double point = 0.0;   ///< the MAP form's point value (the classic answer)
  Form map_form = Form::Constant;  ///< highest-evidence form (ties: simpler)
  double map_weight = 0.0;         ///< its posterior probability
  double coverage = 0.0;           ///< the interval mass that was requested
};

/// Builds the posterior from precomputed candidates (as produced by
/// fit_all(p, y, opts.fit) or the BatchFitter — same order as
/// opts.fit.forms).  No refitting happens here; unusable candidates
/// (ok == false or non-finite SSE) are excluded from the posterior.  When
/// every candidate is unusable the result has ok == false and a single
/// constant-mean component, mirroring select_best's fallback.
Posterior posterior_from(std::span<const FittedModel> candidates,
                         std::span<const double> p, std::span<const double> y,
                         const Options& opts = {});

/// fit_all + posterior_from in one call.
Posterior fit_posterior(std::span<const double> p, std::span<const double> y,
                        const Options& opts = {});

/// Samples the posterior-predictive mixture at `target` and returns the
/// central `opts.coverage` interval.  Deterministic for a fixed opts.seed;
/// lo <= median <= hi always holds, and all three collapse onto the point
/// when the posterior is degenerate (exact fits, or no finite draws).
Prediction predict(const Posterior& posterior, double target,
                   const Options& opts = {});

/// Convenience: fit_posterior + predict.
Prediction predict_interval(std::span<const double> p, std::span<const double> y,
                            double target, const Options& opts = {});

}  // namespace pmacx::stats::bayes
