// Interpolation utilities.
//
// The MultiMAPS machine-profile surface (Fig. 1 of the paper) maps a basic
// block's cache hit rates to an achievable memory bandwidth; PSiNS looks
// blocks up on that surface.  These helpers provide clamped 1-D piecewise-
// linear interpolation and 2-D bilinear interpolation over rectilinear grids.
#pragma once

#include <span>
#include <vector>

namespace pmacx::stats {

/// Clamped piecewise-linear interpolation: xs must be strictly increasing
/// and the same length as ys (≥ 1).  Queries outside [xs.front, xs.back]
/// clamp to the boundary value.
double interp1(std::span<const double> xs, std::span<const double> ys, double x);

/// Rectilinear 2-D grid with bilinear interpolation and boundary clamping.
class Grid2 {
 public:
  /// `values` is row-major with rows indexed by xs and columns by ys:
  /// values[i * ys.size() + j] = f(xs[i], ys[j]).  Axes must be strictly
  /// increasing and non-empty.
  Grid2(std::vector<double> xs, std::vector<double> ys, std::vector<double> values);

  /// Bilinear interpolation at (x, y), clamped to the grid's bounding box.
  double at(double x, double y) const;

  std::span<const double> xs() const { return xs_; }
  std::span<const double> ys() const { return ys_; }

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> values_;
};

}  // namespace pmacx::stats
