#include "stats/ols.hpp"

#include <cmath>

#include "util/error.hpp"

namespace pmacx::stats {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  PMACX_CHECK(x.size() == y.size(), "fit_linear: x/y size mismatch");
  LinearFit fit;
  const std::size_t n = x.size();
  if (n < 2) return fit;

  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    sxx += dx * dx;
    sxy += dx * (y[i] - mean_y);
  }

  if (sxx <= 0.0) {
    // All x identical: the line is only determined if y is constant too.
    bool constant_y = true;
    for (std::size_t i = 1; i < n; ++i)
      if (y[i] != y[0]) constant_y = false;
    if (!constant_y) return fit;
    fit.intercept = y[0];
    fit.slope = 0.0;
    fit.sse = 0.0;
    fit.ok = true;
    return fit;
  }

  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.sse = sse_of(x, y, [&](double xi) { return fit.intercept + fit.slope * xi; });
  fit.ok = std::isfinite(fit.slope) && std::isfinite(fit.intercept);
  return fit;
}

bool solve_dense(std::vector<double> a, std::vector<double> b, std::span<double> out) {
  const std::size_t n = b.size();
  PMACX_CHECK(a.size() == n * n, "solve_dense: matrix size mismatch");
  PMACX_CHECK(out.size() == n, "solve_dense: output size mismatch");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) pivot = row;
    if (std::fabs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      for (std::size_t k = col; k < n; ++k) a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i * n + k] * out[k];
    out[i] = sum / a[i * n + i];
    if (!std::isfinite(out[i])) return false;
  }
  return true;
}

std::vector<double> fit_polynomial(std::span<const double> x, std::span<const double> y,
                                   int degree) {
  PMACX_CHECK(x.size() == y.size(), "fit_polynomial: x/y size mismatch");
  PMACX_CHECK(degree >= 0, "fit_polynomial: negative degree");
  const std::size_t terms = static_cast<std::size_t>(degree) + 1;
  if (x.size() < terms) return {};

  // Normal equations: (V^T V) c = V^T y with Vandermonde V.
  std::vector<double> ata(terms * terms, 0.0);
  std::vector<double> aty(terms, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double powers[8];  // degree <= 7 is far beyond anything we use
    PMACX_CHECK(terms <= 8, "fit_polynomial: degree too large");
    powers[0] = 1.0;
    for (std::size_t t = 1; t < terms; ++t) powers[t] = powers[t - 1] * x[i];
    for (std::size_t r = 0; r < terms; ++r) {
      aty[r] += powers[r] * y[i];
      for (std::size_t c = 0; c < terms; ++c) ata[r * terms + c] += powers[r] * powers[c];
    }
  }
  std::vector<double> coeffs(terms, 0.0);
  if (!solve_dense(std::move(ata), std::move(aty), coeffs)) return {};
  return coeffs;
}

}  // namespace pmacx::stats
