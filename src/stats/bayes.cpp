#include "stats/bayes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace pmacx::stats::bayes {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTwoPi = 6.283185307179586476925286766559;

// Pre-resolved like fits.attempted.*: posterior construction runs once per
// element inside the parallel fit stage, so the registry lock must not sit
// on its path.
struct Counters {
  util::metrics::Counter& evidence_evals;
  util::metrics::Counter& posteriors;
  util::metrics::Counter& samples;
  util::metrics::Counter& intervals;
  util::metrics::Counter& degenerate;
};

Counters& counters() {
  static Counters c{
      util::metrics::Registry::global().counter("fits.bayes.evidence_evals"),
      util::metrics::Registry::global().counter("fits.bayes.posteriors"),
      util::metrics::Registry::global().counter("fits.bayes.samples"),
      util::metrics::Registry::global().counter("fits.bayes.intervals"),
      util::metrics::Registry::global().counter("fits.bayes.degenerate"),
  };
  return c;
}

/// The abscissa each form's regression is linear in — the leverage space.
/// Exponential is log-linear in p itself; Power and Logarithmic in ln p;
/// InverseP in 1/p.  Constant has no abscissa (leverage is 1/n alone).
double transform_abscissa(Form form, double p) {
  switch (form) {
    case Form::Constant: return 0.0;
    case Form::Linear:
    case Form::Exponential:
    case Form::Quadratic: return p;
    case Form::Logarithmic:
    case Form::Power: return p > 0.0 ? std::log(p) : kInf;
    case Form::InverseP: return p != 0.0 ? 1.0 / p : kInf;
  }
  return p;
}

/// Grid-marginalised Gaussian log-evidence: log-sum-exp of the likelihood at
/// the OLS estimates over a log-spaced sigma^2 grid (flat prior over the
/// grid), minus the BIC/Laplace parameter-volume penalty (k/2)·ln n.
double log_evidence(double sse, std::size_t n, int k, double sigma2,
                    std::size_t grid) {
  const double dn = static_cast<double>(n);
  double max_ll = -kInf;
  std::vector<double> lls;
  lls.reserve(grid);
  for (std::size_t g = 0; g < grid; ++g) {
    // sigma^2 factors 2^-4 .. 2^4 (a single grid point sits at sigma2 itself).
    const double exponent =
        grid > 1 ? -4.0 + 8.0 * static_cast<double>(g) / static_cast<double>(grid - 1)
                 : 0.0;
    const double s2 = sigma2 * std::exp2(exponent);
    const double ll = -0.5 * dn * std::log(kTwoPi * s2) - sse / (2.0 * s2);
    counters().evidence_evals.add();
    if (std::isfinite(ll)) {
      lls.push_back(ll);
      max_ll = std::max(max_ll, ll);
    }
  }
  if (lls.empty()) return -kInf;
  double total = 0.0;
  for (double ll : lls) total += std::exp(ll - max_ll);
  return max_ll + std::log(total / static_cast<double>(lls.size())) -
         0.5 * static_cast<double>(k) * std::log(dn);
}

/// Mirror of canonical.cpp's tie band: relative to |best| so negative
/// log-evidence scores keep a positive band.
double tie_band(double tie_tolerance, double best_score) {
  if (!std::isfinite(best_score)) return tie_tolerance;
  return tie_tolerance * (1.0 + std::fabs(best_score));
}

/// Predictive standard deviation of one form at the transformed target
/// abscissa: residual noise inflated by the OLS leverage
/// 1/n + (x* - x̄)² / Sxx — the term that widens intervals the further the
/// target sits beyond the fitted core counts.
double predictive_sd(const FormPosterior& component, std::size_t n, double target) {
  const double x = transform_abscissa(component.model.form, target);
  double leverage = 1.0 / static_cast<double>(n);
  if (component.sxx > 0.0 && std::isfinite(x)) {
    const double dx = x - component.x_mean;
    leverage += dx * dx / component.sxx;
  }
  return std::sqrt(component.sigma2 * (1.0 + leverage));
}

/// Exact Student-t deviate with `dof` degrees of freedom from two uniforms
/// (Bailey's method): T = sqrt(dof·(u^(-2/dof) - 1)) · cos(2πv).  As
/// dof → ∞ the radius degenerates to the Box–Muller -2·ln u, so the
/// heavy-tail correction vanishes exactly when it should.  The fixed
/// two-uniform budget per draw keeps the stream position independent of
/// which mixture component was chosen.
double student_t(util::Rng& rng, double dof) {
  const double u = std::max(rng.uniform(), 1e-300);
  const double v = rng.uniform();
  const double radius2 = dof * (std::pow(u, -2.0 / dof) - 1.0);
  return std::sqrt(std::max(radius2, 0.0)) * std::cos(kTwoPi * v);
}

}  // namespace

Posterior posterior_from(std::span<const FittedModel> candidates,
                         std::span<const double> p, std::span<const double> y,
                         const Options& opts) {
  PMACX_CHECK(!p.empty() && p.size() == y.size(), "bayes: bad series");
  PMACX_CHECK(opts.noise_grid >= 1, "bayes: noise_grid must be >= 1");
  const std::size_t n = p.size();

  // Noise floor: an exact fit (SSE = 0) must yield a sharply peaked — not
  // singular — likelihood, so its variance is floored relative to the data
  // scale.  All-zero series floor at an absolute epsilon instead.
  double scale = 0.0;
  for (double v : y) scale = std::max(scale, std::fabs(v));
  const double floor = std::max(1e-300, 1e-24 * scale * scale);

  Posterior posterior;
  posterior.n = n;
  for (const FittedModel& fit : candidates) {
    if (!fit.ok || !std::isfinite(fit.sse)) continue;
    FormPosterior component;
    component.model = fit;
    const int k = form_parameter_count(fit.form);
    component.dof = std::max<double>(static_cast<double>(n) - k, 1.0);
    component.sigma2 = std::max(fit.sse / component.dof, floor);
    // Leverage ingredients in the form's fit transform.
    double sum = 0.0;
    std::size_t used = 0;
    for (double pi : p) {
      const double x = transform_abscissa(fit.form, pi);
      if (!std::isfinite(x)) continue;
      sum += x;
      ++used;
    }
    if (used > 0) {
      component.x_mean = sum / static_cast<double>(used);
      for (double pi : p) {
        const double x = transform_abscissa(fit.form, pi);
        if (!std::isfinite(x)) continue;
        const double dx = x - component.x_mean;
        component.sxx += dx * dx;
      }
    }
    component.log_evidence =
        log_evidence(fit.sse, n, k, component.sigma2, opts.noise_grid);
    if (!std::isfinite(component.log_evidence)) continue;
    posterior.forms.push_back(component);
  }

  if (posterior.forms.empty()) {
    // Every candidate failed: mirror select_best's constant-mean fallback so
    // the posterior is always usable, but mark it not-ok.
    FormPosterior component;
    component.model = fit_form(Form::Constant, p, y);
    component.log_evidence = 0.0;
    component.weight = 1.0;
    component.sigma2 = floor;
    component.dof = std::max<double>(static_cast<double>(n) - 1.0, 1.0);
    posterior.forms.push_back(component);
    posterior.map_index = 0;
    posterior.ok = false;
    counters().posteriors.add();
    return posterior;
  }

  // Normalised evidence weights (flat prior over forms).
  double max_le = -kInf;
  for (const FormPosterior& c : posterior.forms)
    max_le = std::max(max_le, c.log_evidence);
  double total = 0.0;
  for (FormPosterior& c : posterior.forms) {
    c.weight = std::exp(c.log_evidence - max_le);
    total += c.weight;
  }
  for (FormPosterior& c : posterior.forms) c.weight /= total;

  // MAP form: highest evidence, with select_best's simpler-wins tie-break so
  // the Bayesian winner agrees with the point path when evidence ties.
  std::size_t best = 0;
  double best_score = -posterior.forms[0].log_evidence;
  for (std::size_t i = 1; i < posterior.forms.size(); ++i) {
    const double score = -posterior.forms[i].log_evidence;
    const double band = tie_band(opts.fit.tie_tolerance, best_score);
    const bool better = score < best_score - band;
    const bool tied = std::fabs(score - best_score) <= band &&
                      form_complexity(posterior.forms[i].model.form) <
                          form_complexity(posterior.forms[best].model.form);
    if (better || tied) {
      best = i;
      best_score = score;
    }
  }
  posterior.map_index = best;
  posterior.ok = true;
  counters().posteriors.add();
  return posterior;
}

Posterior fit_posterior(std::span<const double> p, std::span<const double> y,
                        const Options& opts) {
  const std::vector<FittedModel> candidates = fit_all(p, y, opts.fit);
  return posterior_from(candidates, p, y, opts);
}

Prediction predict(const Posterior& posterior, double target, const Options& opts) {
  PMACX_CHECK(!posterior.forms.empty(), "bayes: empty posterior");
  PMACX_CHECK(opts.coverage > 0.0 && opts.coverage < 1.0,
              "bayes: coverage out of (0,1)");
  PMACX_CHECK(opts.samples >= 2, "bayes: need at least two samples");

  Prediction prediction;
  prediction.coverage = opts.coverage;
  const FormPosterior& map = posterior.forms[posterior.map_index];
  prediction.map_form = map.model.form;
  prediction.map_weight = map.weight;
  prediction.point = map.model.evaluate(target);

  // Deterministic mixture draw: pick a form by weight, then add its
  // leverage-inflated predictive noise as a Student-t deviate with the
  // form's residual degrees of freedom (the honest small-n predictive; a
  // plug-in normal undercovers at the 3-6 sample counts traces provide).
  // Every sample consumes exactly three variates, so the stream is
  // identical for a fixed seed regardless of which forms are drawn.
  util::Rng rng(opts.seed);
  std::vector<double> draws;
  draws.reserve(opts.samples);
  for (std::size_t s = 0; s < opts.samples; ++s) {
    const double u = rng.uniform();
    double cumulative = 0.0;
    const FormPosterior* chosen = &posterior.forms.back();
    for (const FormPosterior& component : posterior.forms) {
      cumulative += component.weight;
      if (u < cumulative) {
        chosen = &component;
        break;
      }
    }
    const double t = student_t(rng, chosen->dof);
    const double value = chosen->model.evaluate(target) +
                         predictive_sd(*chosen, posterior.n, target) * t;
    if (std::isfinite(value)) draws.push_back(value);
  }
  counters().samples.add(draws.size());
  counters().intervals.add();

  if (draws.empty() || !std::isfinite(prediction.point)) {
    // Nothing finite to rank: collapse onto the point estimate.
    prediction.lo = prediction.point;
    prediction.median = prediction.point;
    prediction.hi = prediction.point;
    counters().degenerate.add();
    return prediction;
  }
  std::sort(draws.begin(), draws.end());
  const double alpha = (1.0 - opts.coverage) / 2.0;
  prediction.lo = percentile(draws, alpha);
  prediction.median = percentile(draws, 0.5);
  prediction.hi = percentile(draws, 1.0 - alpha);
  return prediction;
}

Prediction predict_interval(std::span<const double> p, std::span<const double> y,
                            double target, const Options& opts) {
  return predict(fit_posterior(p, y, opts), target, opts);
}

}  // namespace pmacx::stats::bayes
