#include "machine/dvfs.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace pmacx::machine {

TargetSystem scale_frequency(const TargetSystem& base, double clock_ghz) {
  PMACX_CHECK(clock_ghz > 0, "scale_frequency: non-positive clock");
  const double ratio = clock_ghz / base.clock_ghz;

  TargetSystem scaled = base;
  scaled.clock_ghz = clock_ghz;
  scaled.name = base.name + util::format("@%.2fGHz", clock_ghz);
  scaled.hierarchy.name = scaled.name;

  // Main memory is off-chip: constant nanoseconds and bytes/second, so the
  // cycle-domain figures move with the clock.
  scaled.hierarchy.memory_latency_cycles = base.hierarchy.memory_latency_cycles * ratio;
  scaled.hierarchy.memory_bandwidth_bytes_per_cycle =
      base.hierarchy.memory_bandwidth_bytes_per_cycle / ratio;

  // Core-side energies ∝ V² with V tracking f; memory access energy stays;
  // static (leakage) power ∝ V.
  const double v2 = ratio * ratio;
  for (double& nj : scaled.energy.level_nj) nj = nj * v2;
  scaled.energy.fp_nj = base.energy.fp_nj * v2;
  scaled.energy.div_extra_nj = base.energy.div_extra_nj * v2;
  scaled.energy.static_watts_per_core = base.energy.static_watts_per_core * ratio;

  scaled.hierarchy.validate();
  scaled.energy.validate();
  return scaled;
}

}  // namespace pmacx::machine
