// Frequency-scaling (DVFS) what-if transformations.
//
// The PMaC line of work this paper builds on uses exactly these models for
// "memory and computation-aware dynamic frequency scaling" [paper refs 23,
// 24]: memory-bound phases lose little runtime at lower clocks while core
// energy drops steeply, so the energy-optimal frequency is workload-
// dependent.  scale_frequency() produces a frequency-scaled variant of a
// target system under first-order hardware scaling rules:
//
//   * main-memory latency and bandwidth are physical (ns, bytes/s): their
//     cycle-domain parameters rescale with the clock;
//   * on-chip cache latencies and widths track the core clock: their
//     cycle-domain parameters are unchanged;
//   * per-operation core energies scale ~quadratically with frequency
//     (E ∝ C·V² with voltage tracking frequency), per-access memory energy
//     is unchanged, and static power scales ~linearly (leakage ∝ V).
#pragma once

#include "machine/profile.hpp"

namespace pmacx::machine {

/// Returns `base` re-clocked to `clock_ghz` under the rules above.  The
/// cache *geometry* is untouched, so traces collected against the base
/// hierarchy remain valid for every frequency variant.
TargetSystem scale_frequency(const TargetSystem& base, double clock_ghz);

}  // namespace pmacx::machine
