#include "machine/profile_io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/parse_error.hpp"
#include "util/strings.hpp"

namespace pmacx::machine {
namespace {

constexpr const char* kMagic = "pmacx-profile";
constexpr const char* kVersion = "1";

// Smallest possible "s" sample line ("s" plus 7 single-character fields),
// used to clamp reserve() against a corrupted declared sample count.
constexpr std::size_t kMinSampleLineBytes = 16;

}  // namespace

std::string profile_to_text(const MachineProfile& profile) {
  std::ostringstream out;
  out.precision(17);
  const TargetSystem& sys = profile.system;
  out << kMagic << '\t' << kVersion << '\n';
  out << "name\t" << sys.name << '\n';
  out << "clock_ghz\t" << sys.clock_ghz << '\n';
  out << "flops_per_cycle\t" << sys.flops_per_cycle << '\n';
  out << "issue_width\t" << sys.issue_width << '\n';
  out << "div_cycles\t" << sys.div_cycles << '\n';
  out << "latency_exposure\t" << sys.latency_exposure << '\n';
  out << "mem_fp_overlap\t" << sys.mem_fp_overlap << '\n';

  const memsim::HierarchyConfig& h = sys.hierarchy;
  out << "memory\t" << h.memory_latency_cycles << '\t'
      << h.memory_bandwidth_bytes_per_cycle << '\t' << (h.inclusive ? 1 : 0) << '\n';
  out << "levels\t" << h.levels.size() << '\n';
  for (const auto& level : h.levels) {
    out << "level\t" << level.name << '\t' << level.size_bytes << '\t' << level.line_bytes
        << '\t' << level.associativity << '\t'
        << static_cast<int>(level.replacement) << '\t' << level.latency_cycles << '\t'
        << level.bandwidth_bytes_per_cycle << '\n';
  }

  const simmpi::NetworkModel& net = sys.network;
  out << "network\t" << net.name << '\t' << net.latency_s << '\t'
      << net.bandwidth_bytes_per_s << '\t' << net.per_stage_overhead_s << '\t'
      << net.eager_threshold_bytes << '\t' << net.allreduce_ring_threshold_bytes << '\n';
  out << "torus\t" << (net.torus.enabled ? 1 : 0) << '\t' << net.torus.dims[0] << '\t'
      << net.torus.dims[1] << '\t' << net.torus.dims[2] << '\t'
      << net.torus.per_hop_latency_s << '\n';

  const EnergyModel& energy = sys.energy;
  out << "energy\t" << energy.level_nj[0] << '\t' << energy.level_nj[1] << '\t'
      << energy.level_nj[2] << '\t' << energy.memory_nj << '\t' << energy.fp_nj << '\t'
      << energy.div_extra_nj << '\t' << energy.static_watts_per_core << '\n';

  out << "samples\t" << profile.surface.samples().size() << '\n';
  for (const BandwidthSample& s : profile.surface.samples()) {
    out << "s\t" << s.working_set_bytes << '\t' << s.stride_elems << '\t'
        << (s.random ? 1 : 0) << '\t' << s.hit_rates[0] << '\t' << s.hit_rates[1] << '\t'
        << s.hit_rates[2] << '\t' << s.bandwidth_bytes_per_s << '\n';
  }
  out << "end\n";
  return out.str();
}

namespace {

/// Parse core; `line_number` tracks progress so the wrapper can report the
/// line any check failure happened on.
MachineProfile parse_profile_text(const std::string& text, int& line_number) {
  std::istringstream in(text);
  std::string line;
  auto next = [&](const char* what) {
    while (std::getline(in, line)) {
      ++line_number;
      if (!line.empty()) return util::split(line, '\t');
    }
    PMACX_CHECK(false, std::string("unexpected end of profile reading ") + what);
    return std::vector<std::string>{};
  };
  auto expect = [&](const char* key, std::size_t min_fields) {
    auto fields = next(key);
    PMACX_CHECK(!fields.empty() && fields[0] == key,
                std::string("expected '") + key + "' in profile");
    PMACX_CHECK(fields.size() >= min_fields + 1,
                std::string("too few fields for '") + key + "'");
    return fields;
  };

  auto header = next("header");
  PMACX_CHECK(header.size() >= 2 && header[0] == kMagic && header[1] == kVersion,
              "not a pmacx machine profile");

  TargetSystem sys;
  sys.name = expect("name", 1)[1];
  sys.clock_ghz = util::parse_double(expect("clock_ghz", 1)[1], "clock");
  sys.flops_per_cycle = util::parse_double(expect("flops_per_cycle", 1)[1], "flops");
  sys.issue_width = util::parse_double(expect("issue_width", 1)[1], "issue");
  sys.div_cycles = util::parse_double(expect("div_cycles", 1)[1], "div");
  sys.latency_exposure = util::parse_double(expect("latency_exposure", 1)[1], "exposure");
  sys.mem_fp_overlap = util::parse_double(expect("mem_fp_overlap", 1)[1], "overlap");

  auto memory = expect("memory", 3);
  sys.hierarchy.name = sys.name;
  sys.hierarchy.memory_latency_cycles = util::parse_double(memory[1], "mem latency");
  sys.hierarchy.memory_bandwidth_bytes_per_cycle =
      util::parse_double(memory[2], "mem bandwidth");
  sys.hierarchy.inclusive = util::parse_u64(memory[3], "inclusive") != 0;

  const std::uint64_t level_count = util::parse_u64(expect("levels", 1)[1], "levels");
  for (std::uint64_t i = 0; i < level_count; ++i) {
    auto fields = expect("level", 7);
    memsim::CacheLevelConfig level;
    level.name = fields[1];
    level.size_bytes = util::parse_u64(fields[2], "size");
    level.line_bytes = static_cast<std::uint32_t>(util::parse_u64(fields[3], "line"));
    level.associativity = static_cast<std::uint32_t>(util::parse_u64(fields[4], "assoc"));
    level.replacement =
        static_cast<memsim::Replacement>(util::parse_u64(fields[5], "replacement"));
    level.latency_cycles = util::parse_double(fields[6], "latency");
    level.bandwidth_bytes_per_cycle = util::parse_double(fields[7], "bandwidth");
    sys.hierarchy.levels.push_back(level);
  }

  auto net = expect("network", 6);
  sys.network.name = net[1];
  sys.network.latency_s = util::parse_double(net[2], "net latency");
  sys.network.bandwidth_bytes_per_s = util::parse_double(net[3], "net bandwidth");
  sys.network.per_stage_overhead_s = util::parse_double(net[4], "net overhead");
  sys.network.eager_threshold_bytes = util::parse_u64(net[5], "eager threshold");
  sys.network.allreduce_ring_threshold_bytes = util::parse_u64(net[6], "ring threshold");

  auto torus = expect("torus", 5);
  sys.network.torus.enabled = util::parse_u64(torus[1], "torus enabled") != 0;
  for (int d = 0; d < 3; ++d)
    sys.network.torus.dims[d] =
        static_cast<std::uint32_t>(util::parse_u64(torus[2 + d], "torus dim"));
  sys.network.torus.per_hop_latency_s = util::parse_double(torus[5], "hop latency");

  auto energy = expect("energy", 7);
  for (int i = 0; i < 3; ++i)
    sys.energy.level_nj[i] = util::parse_double(energy[1 + i], "level energy");
  sys.energy.memory_nj = util::parse_double(energy[4], "memory energy");
  sys.energy.fp_nj = util::parse_double(energy[5], "fp energy");
  sys.energy.div_extra_nj = util::parse_double(energy[6], "div energy");
  sys.energy.static_watts_per_core = util::parse_double(energy[7], "static power");

  const std::uint64_t sample_count = util::parse_u64(expect("samples", 1)[1], "samples");
  std::vector<BandwidthSample> samples;
  samples.reserve(
      std::min<std::uint64_t>(sample_count, text.size() / kMinSampleLineBytes));
  for (std::uint64_t i = 0; i < sample_count; ++i) {
    auto fields = expect("s", 7);
    BandwidthSample s;
    s.working_set_bytes = util::parse_u64(fields[1], "ws");
    s.stride_elems = static_cast<std::uint32_t>(util::parse_u64(fields[2], "stride"));
    s.random = util::parse_u64(fields[3], "random") != 0;
    for (int lvl = 0; lvl < 3; ++lvl)
      s.hit_rates[lvl] = util::parse_double(fields[4 + lvl], "hit rate");
    s.bandwidth_bytes_per_s = util::parse_double(fields[7], "bandwidth");
    samples.push_back(s);
  }
  auto tail = next("end");
  PMACX_CHECK(!tail.empty() && tail[0] == "end", "missing profile end marker");

  sys.hierarchy.validate();
  sys.energy.validate();
  BandwidthSurface surface(std::move(samples));
  MemTimingModel timing(sys.hierarchy, sys.clock_ghz, sys.latency_exposure);
  return MachineProfile{std::move(sys), std::move(surface), std::move(timing)};
}

}  // namespace

MachineProfile profile_from_text(const std::string& text) {
  int line_number = 0;
  try {
    return parse_profile_text(text, line_number);
  } catch (const util::ParseError&) {
    throw;
  } catch (const util::Error& e) {
    // Uniform taxonomy: corrupt profiles surface as ParseError with the
    // line the parser had reached.
    throw util::ParseError("", util::ParseError::kNoOffset,
                           "line " + std::to_string(line_number), e.what());
  }
}

void save_profile(const MachineProfile& profile, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  PMACX_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << profile_to_text(profile);
  PMACX_CHECK(out.good(), "write to '" + path + "' failed");
}

MachineProfile load_profile(const std::string& path) {
  std::ifstream in(path);
  PMACX_CHECK(in.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  // Attach the path to parse errors — profile_from_text cannot know it.
  return util::with_parse_context(path, [&] { return profile_from_text(text); });
}

}  // namespace pmacx::machine
