#include "machine/profile.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace pmacx::machine {

double MachineProfile::fp_seconds(double adds, double muls, double fmas, double divs,
                                  double ilp) const {
  PMACX_CHECK(ilp > 0, "fp_seconds: non-positive ilp");
  const double efficiency = std::min(ilp / system.issue_width, 1.0);
  const double rate =
      system.flops_per_cycle * efficiency * system.clock_ghz * 1e9;  // flops per second
  const double pipelined = adds + muls + 2.0 * fmas;
  const double div_seconds =
      divs * system.div_cycles / (system.clock_ghz * 1e9);
  return pipelined / rate + div_seconds;
}

MachineProfile build_profile(const TargetSystem& system, const MultiMapsOptions& options) {
  system.hierarchy.validate();
  PMACX_CHECK(system.clock_ghz > 0, "profile: bad clock");
  PMACX_CHECK(system.flops_per_cycle > 0, "profile: bad fp rate");
  PMACX_CHECK(system.issue_width > 0, "profile: bad issue width");
  PMACX_CHECK(system.mem_fp_overlap >= 0 && system.mem_fp_overlap <= 1,
              "profile: overlap out of [0,1]");
  system.energy.validate();

  MemTimingModel timing(system.hierarchy, system.clock_ghz, system.latency_exposure);
  BandwidthSurface surface(run_multimaps(system.hierarchy, timing, options));
  return MachineProfile{system, std::move(surface), timing};
}

}  // namespace pmacx::machine
