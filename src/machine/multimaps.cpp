#include "machine/multimaps.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "memsim/hierarchy.hpp"
#include "stats/ols.hpp"
#include "synth/patterns.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace pmacx::machine {

BandwidthSurface::BandwidthSurface(std::vector<BandwidthSample> samples)
    : samples_(std::move(samples)) {
  PMACX_CHECK(!samples_.empty(), "bandwidth surface needs at least one sample");
  for (const BandwidthSample& s : samples_)
    PMACX_CHECK(s.bandwidth_bytes_per_s > 0, "non-positive bandwidth sample");

  // Fit cost_per_byte ≈ β0 + Σ βi·(1 - hr_i) by least squares (normal
  // equations).  Needs more samples than parameters and a non-singular
  // design; otherwise lookups fall back to IDW.
  constexpr std::size_t kParams = 1 + memsim::kMaxLevels;
  min_cost_ = std::numeric_limits<double>::infinity();
  max_cost_ = 0.0;
  if (samples_.size() > kParams) {
    std::vector<double> ata(kParams * kParams, 0.0);
    std::vector<double> aty(kParams, 0.0);
    for (const BandwidthSample& s : samples_) {
      const double cost = 1.0 / s.bandwidth_bytes_per_s;
      min_cost_ = std::min(min_cost_, cost);
      max_cost_ = std::max(max_cost_, cost);
      double x[kParams];
      x[0] = 1.0;
      for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl)
        x[lvl + 1] = 1.0 - s.hit_rates[lvl];
      for (std::size_t r = 0; r < kParams; ++r) {
        aty[r] += x[r] * cost;
        for (std::size_t c = 0; c < kParams; ++c) ata[r * kParams + c] += x[r] * x[c];
      }
    }
    regression_ok_ =
        stats::solve_dense(std::move(ata), std::move(aty), coef_);
  }
}

double BandwidthSurface::lookup(
    const std::array<double, memsim::kMaxLevels>& hit_rates) const {
  if (regression_ok_) {
    double cost = coef_[0];
    for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl)
      cost += coef_[lvl + 1] * (1.0 - hit_rates[lvl]);
    // Clamp to the probed cost range (with slack) so collinear regressions
    // cannot return unphysical bandwidths at extreme queries.
    cost = std::clamp(cost, 0.5 * min_cost_, 2.0 * max_cost_);
    return 1.0 / cost;
  }
  return lookup_idw(hit_rates);
}

double BandwidthSurface::lookup_idw(
    const std::array<double, memsim::kMaxLevels>& hit_rates) const {
  // k-nearest-neighbour Shepard interpolation (inverse-square-distance
  // weights) in hit-rate space.  Restricting to the nearest samples keeps
  // remote corners of the surface from biasing the estimate; the residual
  // reconstruction error is the honest error of the convolution method's
  // block-aggregate view.  Inverse-distance weighting of 1/bandwidth
  // (i.e. cost per byte) rather than bandwidth matches how miss costs
  // compose, so mixtures interpolate on the physically additive scale.
  constexpr double kExactEps = 1e-9;
  constexpr std::size_t kNeighbours = 6;

  std::vector<std::pair<double, double>> by_distance;  // (d², cost per byte)
  by_distance.reserve(samples_.size());
  for (const BandwidthSample& s : samples_) {
    double d2 = 0.0;
    for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl) {
      const double d = hit_rates[lvl] - s.hit_rates[lvl];
      d2 += d * d;
    }
    if (d2 < kExactEps) return s.bandwidth_bytes_per_s;
    by_distance.emplace_back(d2, 1.0 / s.bandwidth_bytes_per_s);
  }
  const std::size_t k = std::min(kNeighbours, by_distance.size());
  std::partial_sort(by_distance.begin(), by_distance.begin() + k, by_distance.end());

  double weight_sum = 0.0;
  double cost_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / by_distance[i].first;
    weight_sum += w;
    cost_sum += w * by_distance[i].second;
  }
  return weight_sum / cost_sum;
}

std::vector<BandwidthSample> run_multimaps(const memsim::HierarchyConfig& hierarchy,
                                           const MemTimingModel& timing,
                                           const MultiMapsOptions& options) {
  PMACX_CHECK(!options.working_sets.empty(), "multimaps: no working sets");
  PMACX_CHECK(!options.strides.empty(), "multimaps: no strides");

  std::vector<BandwidthSample> samples;

  auto probe = [&](std::uint64_t working_set, std::uint32_t stride, bool random) {
    memsim::CacheHierarchy sim(hierarchy);
    synth::StreamSpec spec;
    spec.pattern = random ? synth::Pattern::Random : synth::Pattern::Strided;
    spec.base_addr = 1ull << 40;
    spec.footprint_bytes = working_set;
    spec.elem_bytes = 8;
    spec.stride_elems = stride;
    spec.store_fraction = 0.0;  // MultiMAPS measures load bandwidth
    synth::RefStream stream(spec, options.seed + working_set + stride + (random ? 1 : 0));

    // Enough references to sweep the working set a few times (steady state)
    // within the probe budget.
    const std::uint64_t elems = working_set / spec.elem_bytes;
    const std::uint64_t wanted = std::max(options.min_refs_per_probe, 3 * elems);
    const std::uint64_t refs = std::min(wanted, options.max_refs_per_probe);
    for (std::uint64_t i = 0; i < refs; ++i) sim.access(stream.next());

    const memsim::AccessCounters& counters = sim.totals();
    const double seconds = timing.seconds_for(counters);
    PMACX_ASSERT(seconds > 0, "probe produced zero time");

    BandwidthSample sample;
    sample.working_set_bytes = working_set;
    sample.stride_elems = stride;
    sample.random = random;
    double rate = 0.0;
    for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl) {
      if (lvl < hierarchy.levels.size()) rate = counters.cumulative_hit_rate(lvl);
      sample.hit_rates[lvl] = rate;
    }
    sample.bandwidth_bytes_per_s = static_cast<double>(counters.bytes) / seconds;
    samples.push_back(sample);
  };

  for (std::uint64_t working_set : options.working_sets) {
    for (std::uint32_t stride : options.strides) probe(working_set, stride, false);
    if (options.include_random) probe(working_set, 1, true);
  }
  PMACX_LOG_DEBUG << "multimaps: " << samples.size() << " samples on " << hierarchy.name;
  return samples;
}

}  // namespace pmacx::machine
