// Energy model of a target system.
//
// The paper motivates its feature set as "important for both performance
// and energy" (Section I) and builds on PMaC's energy-modeling line of work
// [refs 23, 24].  This module adds the energy half: a per-event energy
// model — access energy by the cache level that served the reference,
// per-flop energy, and static (leakage + uncore) power integrated over the
// predicted runtime — that the PSiNS energy convolution applies to the same
// per-block feature vectors the performance model consumes.
#pragma once

#include <array>

#include "memsim/hierarchy.hpp"

namespace pmacx::machine {

/// Per-event energies in nanojoules plus static power.
struct EnergyModel {
  /// Energy of one line access served by cache level i.
  std::array<double, memsim::kMaxLevels> level_nj{0.6, 1.8, 6.0};
  /// Energy of one line access served by main memory.
  double memory_nj = 25.0;
  /// Energy of one pipelined floating-point operation.
  double fp_nj = 0.15;
  /// Extra energy of one divide/sqrt.
  double div_extra_nj = 1.5;
  /// Static power drawn per active core (leakage, clocks, uncore share).
  double static_watts_per_core = 12.0;

  /// Throws util::Error on non-physical parameters.
  void validate() const;
};

}  // namespace pmacx::machine
