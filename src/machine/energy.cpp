#include "machine/energy.hpp"

#include "util/error.hpp"

namespace pmacx::machine {

void EnergyModel::validate() const {
  double previous = 0.0;
  for (std::size_t lvl = 0; lvl < memsim::kMaxLevels; ++lvl) {
    PMACX_CHECK(level_nj[lvl] > 0, "non-positive cache access energy");
    PMACX_CHECK(level_nj[lvl] >= previous,
                "access energy must not shrink with cache depth");
    previous = level_nj[lvl];
  }
  PMACX_CHECK(memory_nj >= previous, "memory access energy below last cache level");
  PMACX_CHECK(fp_nj > 0, "non-positive fp energy");
  PMACX_CHECK(div_extra_nj >= 0, "negative divide energy");
  PMACX_CHECK(static_watts_per_core >= 0, "negative static power");
}

}  // namespace pmacx::machine
