#include "machine/targets.hpp"

#include "util/error.hpp"

namespace pmacx::machine {
namespace {

memsim::CacheLevelConfig level(const char* name, std::uint64_t size, std::uint32_t assoc,
                               double latency, double bw_bytes_per_cycle) {
  memsim::CacheLevelConfig cfg;
  cfg.name = name;
  cfg.size_bytes = size;
  cfg.line_bytes = 64;
  cfg.associativity = assoc;
  cfg.replacement = memsim::Replacement::Lru;
  cfg.latency_cycles = latency;
  cfg.bandwidth_bytes_per_cycle = bw_bytes_per_cycle;
  return cfg;
}

}  // namespace

TargetSystem xt5_base() {
  TargetSystem sys;
  sys.name = "cray-xt5";
  sys.hierarchy.name = sys.name;
  sys.hierarchy.levels = {
      level("L1", 64ull << 10, 2, 3, 32),
      level("L2", 512ull << 10, 8, 15, 16),
      level("L3", 8ull << 20, 16, 40, 8),
  };
  sys.hierarchy.memory_latency_cycles = 220;
  sys.hierarchy.memory_bandwidth_bytes_per_cycle = 4;
  sys.clock_ghz = 2.6;
  sys.flops_per_cycle = 4.0;
  sys.issue_width = 3.0;
  sys.div_cycles = 20.0;
  sys.network.name = "seastar2+";
  sys.network.latency_s = 5.0e-6;
  sys.network.bandwidth_bytes_per_s = 3.2e9;
  sys.network.eager_threshold_bytes = 8192;
  // Kraken's SeaStar interconnect is a 3-D torus; distant pairs pay hops.
  sys.network.torus.enabled = true;
  sys.network.torus.dims = {16, 16, 24};
  sys.network.torus.per_hop_latency_s = 5.0e-8;
  return sys;
}

TargetSystem bluewaters_p1() {
  TargetSystem sys;
  sys.name = "bluewaters-p1";
  sys.hierarchy.name = sys.name;
  sys.hierarchy.levels = {
      level("L1", 32ull << 10, 8, 2, 64),
      level("L2", 256ull << 10, 8, 8, 32),
      level("L3", 4ull << 20, 8, 25, 16),
  };
  sys.hierarchy.memory_latency_cycles = 300;
  sys.hierarchy.memory_bandwidth_bytes_per_cycle = 8;
  sys.clock_ghz = 3.8;
  sys.flops_per_cycle = 8.0;  // POWER7: 4 FPUs × FMA
  sys.issue_width = 4.0;
  sys.div_cycles = 26.0;
  sys.network.name = "torrent-hub";
  sys.network.latency_s = 2.0e-6;
  sys.network.bandwidth_bytes_per_s = 1.0e10;
  sys.network.eager_threshold_bytes = 16384;
  return sys;
}

TargetSystem opteron_2level() {
  TargetSystem sys;
  sys.name = "opteron-2level";
  sys.hierarchy.name = sys.name;
  sys.hierarchy.levels = {
      level("L1", 64ull << 10, 2, 3, 32),
      level("L2", 1ull << 20, 16, 12, 16),
  };
  sys.hierarchy.memory_latency_cycles = 180;
  sys.hierarchy.memory_bandwidth_bytes_per_cycle = 4;
  sys.clock_ghz = 2.4;
  sys.flops_per_cycle = 2.0;
  sys.issue_width = 3.0;
  sys.network.name = "gigE";
  sys.network.latency_s = 30e-6;
  sys.network.bandwidth_bytes_per_s = 1.2e8;
  return sys;
}

namespace {

/// Shared L2/L3 of the Table III exploration pair.
TargetSystem table3_common() {
  TargetSystem sys = bluewaters_p1();
  sys.hierarchy.levels.resize(1);  // keep placeholder L1; replaced by callers
  sys.hierarchy.levels.push_back(level("L2", 256ull << 10, 8, 8, 32));
  sys.hierarchy.levels.push_back(level("L3", 4ull << 20, 8, 25, 16));
  return sys;
}

}  // namespace

TargetSystem system_a_12kb() {
  TargetSystem sys = table3_common();
  sys.name = "system-a-12kb-l1";
  sys.hierarchy.name = sys.name;
  // 12 KB / 64 B = 192 lines; 3-way → 64 sets (power of two).
  sys.hierarchy.levels[0] = level("L1", 12ull << 10, 3, 2, 64);
  return sys;
}

TargetSystem system_b_56kb() {
  TargetSystem sys = table3_common();
  sys.name = "system-b-56kb-l1";
  sys.hierarchy.name = sys.name;
  // 56 KB / 64 B = 896 lines; 7-way → 128 sets (power of two).
  sys.hierarchy.levels[0] = level("L1", 56ull << 10, 7, 2, 64);
  return sys;
}

std::vector<std::string> target_names() {
  return {"cray-xt5", "bluewaters-p1", "opteron-2level", "system-a-12kb-l1",
          "system-b-56kb-l1"};
}

TargetSystem target_by_name(const std::string& name) {
  for (TargetSystem sys : {xt5_base(), bluewaters_p1(), opteron_2level(), system_a_12kb(),
                           system_b_56kb()}) {
    if (sys.name == name) return sys;
  }
  std::string known;
  for (const auto& candidate : target_names()) known += " " + candidate;
  PMACX_CHECK(false, "unknown target system '" + name + "'; known:" + known);
  return {};
}

}  // namespace pmacx::machine
