#include "machine/timing.hpp"

#include "util/error.hpp"

namespace pmacx::machine {

MemTimingModel::MemTimingModel(const memsim::HierarchyConfig& hierarchy, double clock_ghz,
                               double exposure)
    : hierarchy_(hierarchy), clock_ghz_(clock_ghz), exposure_(exposure) {
  hierarchy_.validate();
  PMACX_CHECK(clock_ghz > 0, "clock rate must be positive");
  PMACX_CHECK(exposure >= 0.0 && exposure <= 1.0, "latency exposure out of [0,1]");
}

double MemTimingModel::level_seconds(std::size_t level) const {
  PMACX_CHECK(level < hierarchy_.levels.size(), "timing level out of range");
  const memsim::CacheLevelConfig& cfg = hierarchy_.levels[level];
  const double cycles = exposure_ * cfg.latency_cycles +
                        static_cast<double>(cfg.line_bytes) / cfg.bandwidth_bytes_per_cycle;
  return cycles / (clock_ghz_ * 1e9);
}

double MemTimingModel::memory_seconds() const {
  const double line = static_cast<double>(hierarchy_.line_bytes());
  const double cycles = exposure_ * hierarchy_.memory_latency_cycles +
                        line / hierarchy_.memory_bandwidth_bytes_per_cycle;
  return cycles / (clock_ghz_ * 1e9);
}

double MemTimingModel::seconds_for(const memsim::AccessCounters& counters) const {
  double seconds = 0.0;
  for (std::size_t lvl = 0; lvl < hierarchy_.levels.size(); ++lvl)
    seconds += static_cast<double>(counters.level_hits[lvl]) * level_seconds(lvl);
  seconds += static_cast<double>(counters.memory_accesses) * memory_seconds();
  // Page-walk cost when a TLB is simulated; write-back traffic is tracked
  // for energy/statistics but assumed hidden by write buffers here.
  if (hierarchy_.tlb.enabled)
    seconds += static_cast<double>(counters.tlb_misses) * hierarchy_.tlb.miss_cycles /
               (clock_ghz_ * 1e9);
  return seconds;
}

}  // namespace pmacx::machine
