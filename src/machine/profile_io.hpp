// Machine-profile persistence.
//
// MultiMAPS probing takes seconds per target; tools that predict repeatedly
// against the same machine cache the profile on disk instead.  The file
// holds the complete target description plus the probed bandwidth samples,
// so a loaded profile reproduces the probing run exactly (the surface
// regression is refit deterministically from the samples).
#pragma once

#include <string>

#include "machine/profile.hpp"

namespace pmacx::machine {

/// Versioned text serialization of a full profile.
std::string profile_to_text(const MachineProfile& profile);

/// Parses profile_to_text output; throws util::Error on malformed input.
MachineProfile profile_from_text(const std::string& text);

/// File convenience wrappers.
void save_profile(const MachineProfile& profile, const std::string& path);
MachineProfile load_profile(const std::string& path);

}  // namespace pmacx::machine
