// Predefined target systems used by the paper's experiments.
//
//   * xt5_base()        — Cray XT5 "Kraken"-like node (Istanbul Opteron):
//                         the base system all traces were collected on.
//   * bluewaters_p1()   — Phase-I Blue Waters-like (POWER7) node: the target
//                         system of the Table I predictions.
//   * opteron_2level()  — the two-cache-level Opteron of Fig. 1's MultiMAPS
//                         surface.
//   * system_a_12kb()   — Table III's System A: 12 KB L1, shared L2/L3.
//   * system_b_56kb()   — Table III's System B: 56 KB L1, same L2/L3.
//
// Cache geometries are chosen to satisfy the simulator's power-of-two set
// constraint while matching the published capacities; latency/bandwidth
// parameters are first-order public figures for the respective
// microarchitectures (the reproduction matches *shapes*, not testbed
// absolute numbers).
#pragma once

#include <string>
#include <vector>

#include "machine/profile.hpp"

namespace pmacx::machine {

/// Cray XT5 (Kraken)-like base system.
TargetSystem xt5_base();

/// Phase-I Blue Waters (POWER7)-like target system.
TargetSystem bluewaters_p1();

/// Two-level Opteron of Fig. 1.
TargetSystem opteron_2level();

/// Table III System A: 12 KB L1 (3-way), common L2/L3.
TargetSystem system_a_12kb();

/// Table III System B: 56 KB L1 (7-way), common L2/L3.
TargetSystem system_b_56kb();

/// Names accepted by target_by_name.
std::vector<std::string> target_names();

/// Looks a predefined target up by name ("cray-xt5", "bluewaters-p1",
/// "opteron-2level", "system-a-12kb-l1", "system-b-56kb-l1"); throws
/// util::Error for unknown names, listing the valid ones.
TargetSystem target_by_name(const std::string& name);

}  // namespace pmacx::machine
