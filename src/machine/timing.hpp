// Parametric memory-system timing model.
//
// Stands in for the physical machine under the MultiMAPS probes and under
// the reference ("measured") simulator: given which cache level resolved a
// line access, it charges an exposed-latency plus transfer cost.  The same
// hierarchy description drives both the cache *placement* simulation
// (memsim) and this *timing* model, the way real hardware couples the two.
#pragma once

#include "memsim/config.hpp"
#include "memsim/hierarchy.hpp"

namespace pmacx::machine {

/// Charges time per line access by resolving level.
class MemTimingModel {
 public:
  /// `exposure` is the fraction of load-to-use latency not hidden by
  /// out-of-order overlap/prefetch (0 = perfectly hidden, 1 = fully exposed).
  MemTimingModel(const memsim::HierarchyConfig& hierarchy, double clock_ghz,
                 double exposure = 0.35);

  /// Seconds for one line access resolved at cache level `level` (0-based).
  double level_seconds(std::size_t level) const;

  /// Seconds for one line access that missed every cache level.
  double memory_seconds() const;

  /// Total seconds implied by a counter set (level hits × level costs).
  double seconds_for(const memsim::AccessCounters& counters) const;

  double clock_ghz() const { return clock_ghz_; }

 private:
  memsim::HierarchyConfig hierarchy_;
  double clock_ghz_;
  double exposure_;
};

}  // namespace pmacx::machine
