// MultiMAPS: the memory-bandwidth probing benchmark and its surface.
//
// "MultiMAPS probes a given system to generate a series of memory bandwidth
// measurements across a variety of stride and working set sizes, which ...
// is reflected by varying cache hit rates" (Section III-A, Fig. 1).  The
// probe runs strided and random reference sweeps over growing working sets
// through the target's cache simulator, times them with the parametric
// timing model, and records (hit rates → bandwidth) samples.  The surface
// answers PSiNS's per-block lookups: given a block's simulated hit rates,
// what bandwidth does this machine sustain for references that behave like
// that?
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "machine/timing.hpp"
#include "memsim/config.hpp"

namespace pmacx::machine {

/// One probed point of the surface.
struct BandwidthSample {
  std::uint64_t working_set_bytes = 0;
  std::uint32_t stride_elems = 1;
  bool random = false;  ///< random-access probe instead of strided
  std::array<double, memsim::kMaxLevels> hit_rates{};  ///< cumulative, per level
  double bandwidth_bytes_per_s = 0.0;
};

/// The measured surface.
///
/// The physically faithful representation: the cost of one byte is linear
/// in the cumulative *miss* fractions (every miss at level i adds level
/// i+1's incremental cost), so the surface is a least-squares regression of
/// cost-per-byte on (1, 1-hr1, 1-hr2, 1-hr3) over the probe samples —
/// exactly how trace-driven frameworks turn a probed bandwidth sweep into a
/// machine model.  When the regression is ill-posed (too few / degenerate
/// samples) lookups fall back to k-nearest inverse-distance interpolation
/// in hit-rate space.
class BandwidthSurface {
 public:
  explicit BandwidthSurface(std::vector<BandwidthSample> samples);

  /// Bandwidth for a reference population with the given cumulative hit
  /// rates (unused deeper levels should repeat the last real level's rate,
  /// which is how traces store them).
  double lookup(const std::array<double, memsim::kMaxLevels>& hit_rates) const;

  /// k-nearest inverse-distance interpolation (the fallback path), exposed
  /// for comparison and tests.
  double lookup_idw(const std::array<double, memsim::kMaxLevels>& hit_rates) const;

  /// True when lookups use the miss-fraction cost regression.
  bool regression_active() const { return regression_ok_; }

  const std::vector<BandwidthSample>& samples() const { return samples_; }

 private:
  std::vector<BandwidthSample> samples_;
  /// cost_per_byte ≈ coef_[0] + Σ coef_[i+1]·(1 - hr_i)
  std::array<double, 1 + memsim::kMaxLevels> coef_{};
  double min_cost_ = 0.0;  ///< clamp range from the samples
  double max_cost_ = 0.0;
  bool regression_ok_ = false;
};

/// Probe configuration.
struct MultiMapsOptions {
  std::vector<std::uint64_t> working_sets = {
      16ull << 10, 64ull << 10, 256ull << 10, 1ull << 20,
      4ull << 20,  16ull << 20, 48ull << 20};
  std::vector<std::uint32_t> strides = {1, 2, 4, 8};
  bool include_random = true;           ///< add random-access probes
  std::uint64_t max_refs_per_probe = 1'500'000;
  std::uint64_t min_refs_per_probe = 200'000;
  std::uint64_t seed = 0x3a95;
};

/// Runs the benchmark against `hierarchy` timed by `timing`; returns the
/// full sample set (one per (working set, stride) plus random probes).
std::vector<BandwidthSample> run_multimaps(const memsim::HierarchyConfig& hierarchy,
                                           const MemTimingModel& timing,
                                           const MultiMapsOptions& options = {});

}  // namespace pmacx::machine
