// The machine profile.
//
// "The machine profile is a description of the rates at which a machine can
// perform certain fundamental operations through simple benchmarks or
// projections" (Section III).  A MachineProfile bundles everything PSiNS
// needs about one target system: its cache hierarchy description (for the
// tracer's target-mimicking simulation), the MultiMAPS bandwidth surface,
// floating-point issue parameters, the interconnect model, and the timing
// model that stands in for the physical machine.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "machine/energy.hpp"
#include "machine/multimaps.hpp"
#include "machine/timing.hpp"
#include "memsim/config.hpp"
#include "simmpi/network.hpp"

namespace pmacx::machine {

/// Static description of one target system (before profiling).
struct TargetSystem {
  std::string name;
  memsim::HierarchyConfig hierarchy;
  double clock_ghz = 2.6;
  double flops_per_cycle = 4.0;   ///< peak FP ops issued per cycle
  double issue_width = 4.0;       ///< superscalar width the ILP term saturates
  double div_cycles = 20.0;       ///< unpipelined divide/sqrt cost
  double latency_exposure = 0.35; ///< fraction of memory latency not hidden
  double mem_fp_overlap = 0.8;    ///< fraction of FP work overlapped with memory
  simmpi::NetworkModel network;
  EnergyModel energy;             ///< per-event energies + static power
};

/// The profiled machine: target description plus the measured surface.
struct MachineProfile {
  TargetSystem system;
  BandwidthSurface surface;
  MemTimingModel timing;

  /// Seconds to execute the given FP work at the given ILP: the effective
  /// rate is peak × min(ilp / issue width, 1), divides cost extra.
  double fp_seconds(double adds, double muls, double fmas, double divs, double ilp) const;
};

/// Runs MultiMAPS against the target and assembles its profile.  This is
/// the "probe the target machine" step of trace-driven modeling; it does
/// not require the application, only the system description.
MachineProfile build_profile(const TargetSystem& system, const MultiMapsOptions& options = {});

}  // namespace pmacx::machine
