// Cross-architectural prediction.
//
// Section III-A: "a model for the application running on the target system
// can be generated without ever having ported the application to the
// system, or without the existence of a target system."  This example
// traces one application against two different targets' cache structures
// and predicts its runtime on both — then compares, answering "which
// machine should we buy time on?" without access to either.
#include <cstdio>
#include <iostream>

#include "machine/targets.hpp"
#include "psins/predictor.hpp"
#include "synth/tracer.hpp"
#include "synth/uh3d.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmacx;

  util::Cli cli("cross_architecture", "predict one app on two target machines");
  cli.add_u64("cores", 128, "core count of the run to predict");
  cli.add_u64("refs-cap", 400'000, "simulated references cap per kernel");
  if (!cli.parse(argc, argv)) return 0;
  util::set_log_level(util::LogLevel::Warn);

  synth::Uh3dConfig app_config;
  app_config.global_particles = 20'000'000;
  app_config.global_grid_cells = 4'000'000;
  app_config.timesteps = 5;
  const synth::Uh3dApp app(app_config);
  const auto cores = static_cast<std::uint32_t>(cli.get_u64("cores"));

  machine::MultiMapsOptions probe;
  probe.max_refs_per_probe = 400'000;

  util::Table table({"Target", "Predicted Runtime", "Compute (demanding rank)",
                     "Comm (demanding rank)"});
  for (const machine::TargetSystem& system :
       {machine::xt5_base(), machine::bluewaters_p1()}) {
    std::printf("profiling %s and tracing against its hierarchy...\n",
                system.name.c_str());
    const machine::MachineProfile profile = machine::build_profile(system, probe);

    synth::TracerOptions options;
    options.target = profile.system.hierarchy;
    options.max_refs_per_kernel = cli.get_u64("refs-cap");
    const trace::AppSignature signature = synth::collect_signature(app, cores, options);
    const psins::PredictionResult prediction = psins::predict(signature, profile);

    table.add_row({system.name, util::format("%.2f s", prediction.runtime_seconds),
                   util::format("%.2f s", prediction.compute_seconds),
                   util::format("%.2f s", prediction.comm_seconds)});
  }
  std::printf("\n");
  table.print(std::cout,
              util::format("UH3D-like app at %u cores, predicted on both targets:", cores));
  std::printf(
      "\nThe traces were \"collected\" on the base system in both cases; only the\n"
      "simulated target hierarchy and the machine profile changed.\n");
  return 0;
}
