// Hybrid MPI/OpenMP what-if analysis.
//
// Section III-A requires tracing in the parallelization mode the target
// will use; with the thread-aware cache simulator the framework can answer
// the classic layout question: on C cores, is pure MPI (C ranks × 1 thread)
// or hybrid (C/T ranks × T threads) faster?  Hybrid halves the rank count
// (fewer, larger messages; fewer collective participants) but threads
// contend for the shared L3 — both effects come out of the models, not
// assumptions.
#include <cstdio>
#include <iostream>

#include "machine/targets.hpp"
#include "psins/predictor.hpp"
#include "synth/tracer.hpp"
#include "synth/uh3d.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmacx;

  util::Cli cli("hybrid_mode", "pure-MPI vs hybrid MPI/OpenMP on the same cores");
  cli.add_u64("cores", 512, "total cores of the run");
  cli.add_u64("refs-cap", 400'000, "simulated references cap per kernel");
  cli.add_double("efficiency", 0.9, "OpenMP parallel efficiency inside a rank");
  if (!cli.parse(argc, argv)) return 0;
  util::set_log_level(util::LogLevel::Warn);

  const auto cores = static_cast<std::uint32_t>(cli.get_u64("cores"));
  const double efficiency = cli.get_double("efficiency");

  synth::Uh3dConfig app_config;
  app_config.global_particles = 100'000'000;
  app_config.global_grid_cells = 4'000'000;
  app_config.timesteps = 5;
  const synth::Uh3dApp app(app_config);

  machine::MultiMapsOptions probe;
  probe.max_refs_per_probe = 400'000;
  const machine::MachineProfile target =
      machine::build_profile(machine::bluewaters_p1(), probe);

  util::Table table({"Layout", "Ranks", "Dominant L3 HR", "Compute (s)", "Comm (s)",
                     "Runtime (s)"});
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    const std::uint32_t ranks = cores / threads;
    synth::TracerOptions options;
    options.target = target.system.hierarchy;
    options.max_refs_per_kernel = cli.get_u64("refs-cap");
    options.threads_per_rank = threads;

    std::printf("tracing %u ranks x %u threads...\n", ranks, threads);
    const auto signature = synth::collect_signature(app, ranks, options);
    const auto prediction =
        threads == 1 ? psins::predict(signature, target)
                     : psins::predict_hybrid(signature, target, threads, efficiency);

    const auto* dominant = signature.demanding_task().find_block(101);  // particle_push
    table.add_row({util::format("%u ranks x %u threads", ranks, threads),
                   std::to_string(ranks),
                   util::human_percent(dominant->get(trace::BlockElement::HitRateL3), 1),
                   util::format("%.3f", prediction.compute_seconds),
                   util::format("%.3f", prediction.comm_seconds),
                   util::format("%.3f", prediction.runtime_seconds)});
  }
  std::printf("\n");
  table.print(std::cout,
              util::format("UH3D-like app on %u cores, layouts compared:", cores));

  std::printf(
      "\nReading: hybrid layouts shrink the rank count (cheaper collectives,\n"
      "fewer/larger halo messages) while threads share the L3 (hit rates shift\n"
      "as slices of a larger per-rank footprint contend).  The crossover point\n"
      "is workload- and machine-specific — which is exactly why the paper\n"
      "insists traces be collected in the target's parallelization mode.\n");
  return 0;
}
