// Quickstart: the whole methodology in one sitting.
//
//   1. Describe a target machine and profile it (MultiMAPS).
//   2. Trace an MPI application at three small core counts.
//   3. Extrapolate the demanding task's trace to a large core count.
//   4. Predict the application's runtime there — without ever tracing it.
//
// Run with --help for the tunables.
#include <cstdio>
#include <iostream>

#include "core/pipeline.hpp"
#include "machine/targets.hpp"
#include "synth/specfem.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmacx;

  util::Cli cli("quickstart", "trace-extrapolation walkthrough on a SPECFEM3D-like app");
  cli.add_u64("target-cores", 1024, "core count to extrapolate to");
  cli.add_u64("refs-cap", 400'000, "simulated references cap per kernel");
  cli.add_flag("verbose", "show pipeline progress");
  if (!cli.parse(argc, argv)) return 0;
  util::set_log_level(cli.get_flag("verbose") ? util::LogLevel::Info : util::LogLevel::Warn);

  // 1. The target machine.  Profiles are built from the system description
  //    alone — the target does not need to exist.
  std::printf("profiling target machine (MultiMAPS)...\n");
  machine::MultiMapsOptions probe;
  probe.max_refs_per_probe = 400'000;
  const machine::MachineProfile target =
      machine::build_profile(machine::bluewaters_p1(), probe);

  // 2-4. A scaled-down SPECFEM3D-like application through the full pipeline.
  synth::SpecfemConfig app_config;
  app_config.global_elements = 100'000;
  // Keeps the field kernels memory-resident through 1024 cores so their
  // hit rates move gently across the sweep (see DESIGN.md §6).
  app_config.global_field_bytes = 16'000'000'000;
  app_config.timesteps = 5;
  // Folds a production-length run into the traced steps so the predicted
  // runtimes land in human-readable seconds.
  app_config.work_scale = 20'000;
  const synth::Specfem3dApp app(app_config);

  core::PipelineConfig config;
  config.small_core_counts = {16, 32, 64};
  config.target_core_count = static_cast<std::uint32_t>(cli.get_u64("target-cores"));
  config.tracer.target = target.system.hierarchy;
  config.tracer.max_refs_per_kernel = cli.get_u64("refs-cap");
  config.collect_at_target = true;   // only to validate the extrapolation
  config.measure_at_target = true;

  std::printf("running pipeline: trace @ {16,32,64} -> extrapolate -> predict @ %u\n\n",
              config.target_core_count);
  const core::PipelineResult result = core::run_pipeline(app, target, config);

  std::printf("%s\n", result.report.summary().c_str());

  util::Table table({"Quantity", "Value"});
  table.add_row({"predicted runtime (extrapolated trace)",
                 util::format("%.2f s", result.prediction_from_extrapolated.runtime_seconds)});
  table.add_row({"predicted runtime (collected trace)",
                 util::format("%.2f s", result.prediction_from_collected->runtime_seconds)});
  table.add_row({"measured runtime (reference simulator)",
                 util::format("%.2f s", result.measured->runtime_seconds)});
  table.add_row({"extrapolated-trace prediction error",
                 util::human_percent(result.extrapolated_error(), 1)});
  table.add_row({"collected-trace prediction error",
                 util::human_percent(result.collected_error(), 1)});
  table.print(std::cout);

  std::printf(
      "\nThe extrapolated trace predicted the %u-core runtime without ever\n"
      "tracing at %u cores — the paper's Table I result in miniature.\n",
      config.target_core_count, config.target_core_count);
  return 0;
}
