// Input-parameter extrapolation (the paper's closing future-work item).
//
// Section VI: "one could attempt to determine how working set size of a
// computational phase is affected by the size or composition of an input
// file ... employ the same scaling and extrapolating strategies".  This
// example holds the core count fixed, traces a SPECFEM3D-like app at three
// mesh resolutions, extrapolates the feature vectors to a finer resolution
// never traced, and validates against a trace actually collected there.
#include <cstdio>
#include <iostream>

#include "core/extrapolator.hpp"
#include "machine/targets.hpp"
#include "synth/specfem.hpp"
#include "synth/tracer.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace pmacx;

/// Instance with `elements` mesh cells; fields scale proportionally.
synth::Specfem3dApp app_for(std::uint64_t elements) {
  synth::SpecfemConfig config;
  config.global_elements = elements;
  config.global_field_bytes = elements * 10'000;  // fixed bytes per element
  config.timesteps = 5;
  return synth::Specfem3dApp(config);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("input_scaling", "extrapolate feature vectors across problem size");
  cli.add_u64("cores", 64, "fixed core count");
  cli.add_u64("refs-cap", 300'000, "simulated references cap per kernel");
  if (!cli.parse(argc, argv)) return 0;
  util::set_log_level(util::LogLevel::Warn);

  const auto cores = static_cast<std::uint32_t>(cli.get_u64("cores"));
  synth::TracerOptions options;
  options.target = machine::bluewaters_p1().hierarchy;
  options.max_refs_per_kernel = cli.get_u64("refs-cap");

  const std::vector<std::uint64_t> sizes = {50'000, 100'000, 200'000};
  const std::uint64_t target_size = 400'000;

  std::vector<trace::TaskTrace> series;
  std::vector<double> axis;
  for (std::uint64_t elements : sizes) {
    std::printf("tracing %llu-element mesh at %u cores...\n",
                static_cast<unsigned long long>(elements), cores);
    series.push_back(synth::trace_task(app_for(elements), cores, 0, options));
    axis.push_back(static_cast<double>(elements));
  }

  const auto result =
      core::extrapolate_parameter(series, axis, static_cast<double>(target_size));
  std::printf("\n%s\n", result.report.summary().c_str());

  // Validate against a trace actually collected at the target resolution.
  const auto collected =
      synth::trace_task(app_for(target_size), cores, 0, options);

  util::Table table({"Block", "Element", "Extrapolated", "Collected", "Error"});
  for (const auto& block : result.trace.blocks) {
    const auto* truth = collected.find_block(block.id);
    if (truth == nullptr) continue;
    auto row = [&](trace::BlockElement element) {
      const double predicted = block.get(element);
      const double actual = truth->get(element);
      const double err =
          actual != 0 ? std::abs(predicted - actual) / std::abs(actual) : 0.0;
      table.add_row({std::to_string(block.id), trace::block_element_name(element),
                     util::format("%.4g", predicted), util::format("%.4g", actual),
                     util::human_percent(err, 1)});
    };
    row(trace::BlockElement::MemLoads);
    row(trace::BlockElement::WorkingSetBytes);
    row(trace::BlockElement::HitRateL3);
  }
  table.print(std::cout,
              util::format("Feature vectors at the never-traced %llu-element mesh:",
                           static_cast<unsigned long long>(target_size)));

  std::printf(
      "\nThe same canonical-form machinery extrapolated along the problem-size\n"
      "axis instead of the core-count axis — Section VI's closing proposal.\n");
  return 0;
}
