// Weak-scaling extrapolation (the paper's Section VI future work).
//
// Under weak scaling the per-rank problem size is held constant as cores
// grow, so most per-task elements should be *constant* in the core count —
// a regime the paper flags as untested.  This example builds a weak-scaled
// SPECFEM3D-like series (global problem grows with P), extrapolates, and
// shows (a) the winning-form histogram collapsing onto constant/log and
// (b) prediction accuracy against a trace collected at the target count.
#include <cstdio>
#include <iostream>

#include "core/extrapolator.hpp"
#include "machine/targets.hpp"
#include "psins/predictor.hpp"
#include "synth/specfem.hpp"
#include "synth/tracer.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace pmacx;

/// Weak-scaled instance: the global problem grows linearly with the core
/// count, keeping per-rank work fixed.
synth::Specfem3dApp weak_app(std::uint32_t cores) {
  synth::SpecfemConfig config;
  config.global_elements = 2'000ull * cores;
  config.global_field_bytes = 8'000'000ull * cores;
  config.timesteps = 5;
  return synth::Specfem3dApp(config);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("weak_scaling", "extrapolate a weak-scaled application");
  cli.add_u64("target-cores", 512, "core count to extrapolate to");
  cli.add_u64("refs-cap", 300'000, "simulated references cap per kernel");
  if (!cli.parse(argc, argv)) return 0;
  util::set_log_level(util::LogLevel::Warn);

  machine::MultiMapsOptions probe;
  probe.max_refs_per_probe = 400'000;
  const machine::MachineProfile target =
      machine::build_profile(machine::bluewaters_p1(), probe);

  synth::TracerOptions options;
  options.target = target.system.hierarchy;
  options.max_refs_per_kernel = cli.get_u64("refs-cap");

  const std::vector<std::uint32_t> small_counts = {32, 64, 128};
  const auto target_cores = static_cast<std::uint32_t>(cli.get_u64("target-cores"));

  std::vector<trace::TaskTrace> series;
  for (std::uint32_t cores : small_counts) {
    std::printf("tracing weak-scaled instance at %u cores...\n", cores);
    series.push_back(synth::trace_task(weak_app(cores), cores, 0, options));
  }

  const auto result = core::extrapolate_task(series, target_cores);
  std::printf("\n%s\n", result.report.summary().c_str());

  // Predict at the target and compare against a collected trace there.
  const synth::Specfem3dApp app_at_target = weak_app(target_cores);
  trace::AppSignature synthetic;
  synthetic.app = app_at_target.name();
  synthetic.core_count = target_cores;
  synthetic.target_system = options.target.name;
  synthetic.demanding_rank = app_at_target.demanding_rank(target_cores);
  trace::TaskTrace task = result.trace;
  task.rank = synthetic.demanding_rank;
  synthetic.tasks.push_back(std::move(task));
  for (std::uint32_t rank = 0; rank < target_cores; ++rank)
    synthetic.comm.push_back(app_at_target.comm_trace(target_cores, rank));

  const auto prediction_extrap = psins::predict(synthetic, target);
  const auto collected = synth::collect_signature(app_at_target, target_cores, options);
  const auto prediction_collected = psins::predict(collected, target);

  util::Table table({"Quantity", "Value"});
  table.add_row({"predicted runtime (extrapolated trace)",
                 util::format("%.2f s", prediction_extrap.runtime_seconds)});
  table.add_row({"predicted runtime (collected trace)",
                 util::format("%.2f s", prediction_collected.runtime_seconds)});
  const double gap = std::abs(prediction_extrap.runtime_seconds -
                              prediction_collected.runtime_seconds) /
                     prediction_collected.runtime_seconds;
  table.add_row({"extrapolated vs collected gap", util::human_percent(gap, 1)});
  table.print(std::cout);

  std::printf(
      "\nUnder weak scaling most elements fit the constant form (see the form\n"
      "histogram above) and extrapolation is correspondingly easy — the hard\n"
      "part the paper anticipates is work *redistribution*, which appears here\n"
      "only through the log-growth reduction and linear bookkeeping elements.\n");
  return 0;
}
