// Cache-structure design-space exploration (the Table III workflow).
//
// Because the tracer's cache simulator mimics the *target* hierarchy, a
// single application can be "run" against cache designs that do not exist:
// sweep L1 and L2 sizes, trace the application against each candidate, and
// report how the dominant blocks' hit rates respond — data a system
// architect can weigh against area/power budgets.
#include <cstdio>
#include <iostream>

#include "machine/targets.hpp"
#include "synth/specfem.hpp"
#include "synth/tracer.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmacx;

  util::Cli cli("cache_explorer", "sweep candidate cache designs for one application");
  cli.add_u64("cores", 64, "core count to trace at");
  cli.add_u64("refs-cap", 400'000, "simulated references cap per kernel");
  if (!cli.parse(argc, argv)) return 0;
  util::set_log_level(util::LogLevel::Warn);

  synth::SpecfemConfig app_config;
  app_config.global_elements = 100'000;
  app_config.global_field_bytes = 500'000'000;
  app_config.timesteps = 5;
  const synth::Specfem3dApp app(app_config);
  const auto cores = static_cast<std::uint32_t>(cli.get_u64("cores"));

  // Candidate designs: L1 size × L2 size, common L3.
  struct Candidate {
    std::uint64_t l1_bytes;
    std::uint32_t l1_ways;
    std::uint64_t l2_bytes;
  };
  const std::vector<Candidate> candidates = {
      {12ull << 10, 3, 256ull << 10}, {32ull << 10, 8, 256ull << 10},
      {56ull << 10, 7, 256ull << 10}, {32ull << 10, 8, 1ull << 20},
      {56ull << 10, 7, 1ull << 20},
  };

  util::Table table({"L1", "L2", "app L1 HR", "app L2 HR", "app L3 HR",
                     "dominant-block L1 HR"});
  for (const Candidate& candidate : candidates) {
    machine::TargetSystem system = machine::bluewaters_p1();
    system.hierarchy.levels[0].size_bytes = candidate.l1_bytes;
    system.hierarchy.levels[0].associativity = candidate.l1_ways;
    system.hierarchy.levels[1].size_bytes = candidate.l2_bytes;
    system.name = util::format("candidate-%lluK-%lluK",
                               static_cast<unsigned long long>(candidate.l1_bytes >> 10),
                               static_cast<unsigned long long>(candidate.l2_bytes >> 10));
    system.hierarchy.name = system.name;

    synth::TracerOptions options;
    options.target = system.hierarchy;
    options.max_refs_per_kernel = cli.get_u64("refs-cap");
    const trace::TaskTrace task = synth::trace_task(app, cores, 0, options);

    // Memory-op-weighted application hit rates.
    double total = 0.0, h1 = 0.0, h2 = 0.0, h3 = 0.0;
    for (const auto& block : task.blocks) {
      const double w = block.memory_ops();
      total += w;
      h1 += w * block.get(trace::BlockElement::HitRateL1);
      h2 += w * block.get(trace::BlockElement::HitRateL2);
      h3 += w * block.get(trace::BlockElement::HitRateL3);
    }
    const auto* dominant = task.find_block(1);
    table.add_row({util::human_bytes(static_cast<double>(candidate.l1_bytes)),
                   util::human_bytes(static_cast<double>(candidate.l2_bytes)),
                   util::human_percent(h1 / total, 1), util::human_percent(h2 / total, 1),
                   util::human_percent(h3 / total, 1),
                   util::human_percent(dominant->get(trace::BlockElement::HitRateL1), 1)});
  }
  table.print(std::cout,
              util::format("SPECFEM3D-like app at %u cores under candidate cache designs "
                           "(no such machine exists):",
                           cores));
  std::printf(
      "\nEvery row was produced from the same application model — only the\n"
      "simulated target hierarchy changed, exactly as in the paper's Table III.\n");
  return 0;
}
