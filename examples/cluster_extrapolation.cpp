// Clustered multi-task extrapolation (the paper's Section VI future work).
//
// A full application signature at P cores is P trace files; extrapolating
// only the longest task assumes every rank behaves like it.  This example
// traces several representative ranks per core count, clusters them by
// behaviour (k-means over aggregate feature vectors, elbow-selected k),
// extrapolates each cluster's centroid trace, and shows the per-cluster
// results plus the synthesized per-rank work distribution at the target.
#include <cstdio>
#include <iostream>

#include "core/cluster.hpp"
#include "machine/targets.hpp"
#include "synth/tracer.hpp"
#include "synth/uh3d.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pmacx;

  util::Cli cli("cluster_extrapolation", "extrapolate per-cluster centroid traces");
  cli.add_u64("target-cores", 512, "core count to extrapolate to");
  cli.add_u64("refs-cap", 300'000, "simulated references cap per kernel");
  if (!cli.parse(argc, argv)) return 0;
  util::set_log_level(util::LogLevel::Warn);

  synth::Uh3dConfig app_config;
  app_config.global_particles = 20'000'000;
  app_config.global_grid_cells = 4'000'000;
  app_config.timesteps = 5;
  app_config.imbalance = 0.4;  // pronounced magnetotail concentration
  const synth::Uh3dApp app(app_config);

  synth::TracerOptions options;
  options.target = machine::bluewaters_p1().hierarchy;
  options.max_refs_per_kernel = cli.get_u64("refs-cap");

  // Trace four relative rank positions at each small core count.
  std::vector<trace::AppSignature> signatures;
  for (std::uint32_t cores : {64u, 128u, 256u}) {
    const std::vector<std::uint32_t> ranks = {0, cores / 4, cores / 2, cores - cores / 4};
    std::printf("tracing ranks {0, %u, %u, %u} at %u cores...\n", cores / 4, cores / 2,
                cores - cores / 4, cores);
    signatures.push_back(synth::collect_signature(app, cores, options, ranks));
  }

  const auto target = static_cast<std::uint32_t>(cli.get_u64("target-cores"));
  const core::ClusteredExtrapolation result =
      core::extrapolate_clustered(signatures, target);

  std::printf("\nelbow-selected k = %zu behaviour clusters\n\n", result.k);
  util::Table table({"Cluster", "Member Ranks (@256)", "Rank Share", "Extrap Mem Ops",
                     "Extrap Working Set", "Worst Fit Err"});
  for (std::size_t c = 0; c < result.clusters.size(); ++c) {
    const auto& cluster = result.clusters[c];
    std::string members;
    for (std::uint32_t r : cluster.member_ranks)
      members += (members.empty() ? "" : ", ") + std::to_string(r);
    double working_set = 0.0;
    for (const auto& block : cluster.representative.blocks)
      working_set += block.get(trace::BlockElement::WorkingSetBytes);
    table.add_row({std::to_string(c), members, util::human_percent(cluster.rank_share, 0),
                   util::format("%.3g", cluster.representative.total_memory_ops()),
                   util::human_bytes(working_set),
                   util::human_percent(cluster.report.worst_influential_error(), 1)});
  }
  table.print(std::cout, util::format("Per-cluster extrapolation to %u cores:", target));

  const auto weights = result.rank_work_weights(target);
  std::printf("\nSynthesized per-rank work distribution at %u cores (sampled):\n", target);
  for (std::uint32_t r = 0; r < target; r += target / 8)
    std::printf("  rank %5u: %.3g work units\n", r, weights[r]);
  std::printf(
      "\nThis synthesizes the *distribution* of per-rank behaviour at scale — the\n"
      "piece single-task extrapolation cannot capture (paper Section VI).\n");
  return 0;
}
