# Empty compiler generated dependencies file for memsim_cache_test.
# This may be replaced when dependencies are built.
