file(REMOVE_RECURSE
  "CMakeFiles/memsim_cache_test.dir/memsim_cache_test.cpp.o"
  "CMakeFiles/memsim_cache_test.dir/memsim_cache_test.cpp.o.d"
  "memsim_cache_test"
  "memsim_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
