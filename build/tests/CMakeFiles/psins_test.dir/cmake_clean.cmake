file(REMOVE_RECURSE
  "CMakeFiles/psins_test.dir/psins_test.cpp.o"
  "CMakeFiles/psins_test.dir/psins_test.cpp.o.d"
  "psins_test"
  "psins_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
