# Empty dependencies file for psins_test.
# This may be replaced when dependencies are built.
