file(REMOVE_RECURSE
  "CMakeFiles/core_align_test.dir/core_align_test.cpp.o"
  "CMakeFiles/core_align_test.dir/core_align_test.cpp.o.d"
  "core_align_test"
  "core_align_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_align_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
