# Empty dependencies file for core_align_test.
# This may be replaced when dependencies are built.
