file(REMOVE_RECURSE
  "CMakeFiles/memsim_features_test.dir/memsim_features_test.cpp.o"
  "CMakeFiles/memsim_features_test.dir/memsim_features_test.cpp.o.d"
  "memsim_features_test"
  "memsim_features_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
