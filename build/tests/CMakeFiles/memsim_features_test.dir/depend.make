# Empty dependencies file for memsim_features_test.
# This may be replaced when dependencies are built.
