file(REMOVE_RECURSE
  "CMakeFiles/memsim_threaded_test.dir/memsim_threaded_test.cpp.o"
  "CMakeFiles/memsim_threaded_test.dir/memsim_threaded_test.cpp.o.d"
  "memsim_threaded_test"
  "memsim_threaded_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_threaded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
