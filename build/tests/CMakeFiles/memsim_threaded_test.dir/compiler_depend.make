# Empty compiler generated dependencies file for memsim_threaded_test.
# This may be replaced when dependencies are built.
