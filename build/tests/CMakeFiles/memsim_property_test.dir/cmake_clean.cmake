file(REMOVE_RECURSE
  "CMakeFiles/memsim_property_test.dir/memsim_property_test.cpp.o"
  "CMakeFiles/memsim_property_test.dir/memsim_property_test.cpp.o.d"
  "memsim_property_test"
  "memsim_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
