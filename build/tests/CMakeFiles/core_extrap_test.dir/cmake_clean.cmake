file(REMOVE_RECURSE
  "CMakeFiles/core_extrap_test.dir/core_extrap_test.cpp.o"
  "CMakeFiles/core_extrap_test.dir/core_extrap_test.cpp.o.d"
  "core_extrap_test"
  "core_extrap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_extrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
