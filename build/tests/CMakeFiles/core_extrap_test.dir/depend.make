# Empty dependencies file for core_extrap_test.
# This may be replaced when dependencies are built.
