file(REMOVE_RECURSE
  "CMakeFiles/memsim_hierarchy_test.dir/memsim_hierarchy_test.cpp.o"
  "CMakeFiles/memsim_hierarchy_test.dir/memsim_hierarchy_test.cpp.o.d"
  "memsim_hierarchy_test"
  "memsim_hierarchy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memsim_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
