# Empty compiler generated dependencies file for tool_predict.
# This may be replaced when dependencies are built.
