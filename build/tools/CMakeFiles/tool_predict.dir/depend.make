# Empty dependencies file for tool_predict.
# This may be replaced when dependencies are built.
