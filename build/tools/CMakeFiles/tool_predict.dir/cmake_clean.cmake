file(REMOVE_RECURSE
  "CMakeFiles/tool_predict.dir/pmacx_predict.cpp.o"
  "CMakeFiles/tool_predict.dir/pmacx_predict.cpp.o.d"
  "pmacx_predict"
  "pmacx_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
