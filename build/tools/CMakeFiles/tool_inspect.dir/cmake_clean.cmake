file(REMOVE_RECURSE
  "CMakeFiles/tool_inspect.dir/pmacx_inspect.cpp.o"
  "CMakeFiles/tool_inspect.dir/pmacx_inspect.cpp.o.d"
  "pmacx_inspect"
  "pmacx_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
