# Empty dependencies file for tool_inspect.
# This may be replaced when dependencies are built.
