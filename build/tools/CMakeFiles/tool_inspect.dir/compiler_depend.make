# Empty compiler generated dependencies file for tool_inspect.
# This may be replaced when dependencies are built.
