# Empty compiler generated dependencies file for tool_extrapolate.
# This may be replaced when dependencies are built.
