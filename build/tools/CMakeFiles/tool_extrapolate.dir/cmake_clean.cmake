file(REMOVE_RECURSE
  "CMakeFiles/tool_extrapolate.dir/pmacx_extrapolate.cpp.o"
  "CMakeFiles/tool_extrapolate.dir/pmacx_extrapolate.cpp.o.d"
  "pmacx_extrapolate"
  "pmacx_extrapolate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_extrapolate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
