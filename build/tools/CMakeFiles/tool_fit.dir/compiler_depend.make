# Empty compiler generated dependencies file for tool_fit.
# This may be replaced when dependencies are built.
