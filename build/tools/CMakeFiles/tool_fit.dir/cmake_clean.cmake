file(REMOVE_RECURSE
  "CMakeFiles/tool_fit.dir/pmacx_fit.cpp.o"
  "CMakeFiles/tool_fit.dir/pmacx_fit.cpp.o.d"
  "pmacx_fit"
  "pmacx_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
