# Empty compiler generated dependencies file for tool_trace.
# This may be replaced when dependencies are built.
