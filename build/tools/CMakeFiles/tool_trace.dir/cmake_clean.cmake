file(REMOVE_RECURSE
  "CMakeFiles/tool_trace.dir/pmacx_trace.cpp.o"
  "CMakeFiles/tool_trace.dir/pmacx_trace.cpp.o.d"
  "pmacx_trace"
  "pmacx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
