file(REMOVE_RECURSE
  "CMakeFiles/hybrid_mode.dir/hybrid_mode.cpp.o"
  "CMakeFiles/hybrid_mode.dir/hybrid_mode.cpp.o.d"
  "hybrid_mode"
  "hybrid_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
