# Empty compiler generated dependencies file for hybrid_mode.
# This may be replaced when dependencies are built.
