# Empty dependencies file for cluster_extrapolation.
# This may be replaced when dependencies are built.
