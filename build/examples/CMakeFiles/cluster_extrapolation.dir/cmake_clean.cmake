file(REMOVE_RECURSE
  "CMakeFiles/cluster_extrapolation.dir/cluster_extrapolation.cpp.o"
  "CMakeFiles/cluster_extrapolation.dir/cluster_extrapolation.cpp.o.d"
  "cluster_extrapolation"
  "cluster_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
