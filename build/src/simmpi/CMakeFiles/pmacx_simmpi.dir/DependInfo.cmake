
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/network.cpp" "src/simmpi/CMakeFiles/pmacx_simmpi.dir/network.cpp.o" "gcc" "src/simmpi/CMakeFiles/pmacx_simmpi.dir/network.cpp.o.d"
  "/root/repo/src/simmpi/profiler.cpp" "src/simmpi/CMakeFiles/pmacx_simmpi.dir/profiler.cpp.o" "gcc" "src/simmpi/CMakeFiles/pmacx_simmpi.dir/profiler.cpp.o.d"
  "/root/repo/src/simmpi/replay.cpp" "src/simmpi/CMakeFiles/pmacx_simmpi.dir/replay.cpp.o" "gcc" "src/simmpi/CMakeFiles/pmacx_simmpi.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pmacx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmacx_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
