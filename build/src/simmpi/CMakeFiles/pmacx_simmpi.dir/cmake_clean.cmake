file(REMOVE_RECURSE
  "CMakeFiles/pmacx_simmpi.dir/network.cpp.o"
  "CMakeFiles/pmacx_simmpi.dir/network.cpp.o.d"
  "CMakeFiles/pmacx_simmpi.dir/profiler.cpp.o"
  "CMakeFiles/pmacx_simmpi.dir/profiler.cpp.o.d"
  "CMakeFiles/pmacx_simmpi.dir/replay.cpp.o"
  "CMakeFiles/pmacx_simmpi.dir/replay.cpp.o.d"
  "libpmacx_simmpi.a"
  "libpmacx_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
