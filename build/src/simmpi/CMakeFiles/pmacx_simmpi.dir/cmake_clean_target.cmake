file(REMOVE_RECURSE
  "libpmacx_simmpi.a"
)
