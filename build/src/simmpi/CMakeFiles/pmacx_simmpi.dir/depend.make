# Empty dependencies file for pmacx_simmpi.
# This may be replaced when dependencies are built.
