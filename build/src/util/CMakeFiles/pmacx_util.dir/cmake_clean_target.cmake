file(REMOVE_RECURSE
  "libpmacx_util.a"
)
