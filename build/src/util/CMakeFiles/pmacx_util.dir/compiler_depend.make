# Empty compiler generated dependencies file for pmacx_util.
# This may be replaced when dependencies are built.
