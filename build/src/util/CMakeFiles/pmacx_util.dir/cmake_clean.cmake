file(REMOVE_RECURSE
  "CMakeFiles/pmacx_util.dir/cli.cpp.o"
  "CMakeFiles/pmacx_util.dir/cli.cpp.o.d"
  "CMakeFiles/pmacx_util.dir/error.cpp.o"
  "CMakeFiles/pmacx_util.dir/error.cpp.o.d"
  "CMakeFiles/pmacx_util.dir/log.cpp.o"
  "CMakeFiles/pmacx_util.dir/log.cpp.o.d"
  "CMakeFiles/pmacx_util.dir/rng.cpp.o"
  "CMakeFiles/pmacx_util.dir/rng.cpp.o.d"
  "CMakeFiles/pmacx_util.dir/strings.cpp.o"
  "CMakeFiles/pmacx_util.dir/strings.cpp.o.d"
  "CMakeFiles/pmacx_util.dir/table.cpp.o"
  "CMakeFiles/pmacx_util.dir/table.cpp.o.d"
  "libpmacx_util.a"
  "libpmacx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
