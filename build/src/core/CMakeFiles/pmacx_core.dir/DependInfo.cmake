
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/align.cpp" "src/core/CMakeFiles/pmacx_core.dir/align.cpp.o" "gcc" "src/core/CMakeFiles/pmacx_core.dir/align.cpp.o.d"
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/pmacx_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/pmacx_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/comm_extrap.cpp" "src/core/CMakeFiles/pmacx_core.dir/comm_extrap.cpp.o" "gcc" "src/core/CMakeFiles/pmacx_core.dir/comm_extrap.cpp.o.d"
  "/root/repo/src/core/extrapolator.cpp" "src/core/CMakeFiles/pmacx_core.dir/extrapolator.cpp.o" "gcc" "src/core/CMakeFiles/pmacx_core.dir/extrapolator.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/pmacx_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/pmacx_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/pmacx_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/pmacx_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pmacx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pmacx_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmacx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/psins/CMakeFiles/pmacx_psins.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pmacx_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pmacx_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/pmacx_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmacx_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
