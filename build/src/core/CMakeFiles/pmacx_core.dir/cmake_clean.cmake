file(REMOVE_RECURSE
  "CMakeFiles/pmacx_core.dir/align.cpp.o"
  "CMakeFiles/pmacx_core.dir/align.cpp.o.d"
  "CMakeFiles/pmacx_core.dir/cluster.cpp.o"
  "CMakeFiles/pmacx_core.dir/cluster.cpp.o.d"
  "CMakeFiles/pmacx_core.dir/comm_extrap.cpp.o"
  "CMakeFiles/pmacx_core.dir/comm_extrap.cpp.o.d"
  "CMakeFiles/pmacx_core.dir/extrapolator.cpp.o"
  "CMakeFiles/pmacx_core.dir/extrapolator.cpp.o.d"
  "CMakeFiles/pmacx_core.dir/pipeline.cpp.o"
  "CMakeFiles/pmacx_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/pmacx_core.dir/report.cpp.o"
  "CMakeFiles/pmacx_core.dir/report.cpp.o.d"
  "libpmacx_core.a"
  "libpmacx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
