# Empty compiler generated dependencies file for pmacx_core.
# This may be replaced when dependencies are built.
