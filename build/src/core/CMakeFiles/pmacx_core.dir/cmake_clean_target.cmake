file(REMOVE_RECURSE
  "libpmacx_core.a"
)
