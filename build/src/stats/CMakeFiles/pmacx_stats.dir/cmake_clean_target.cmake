file(REMOVE_RECURSE
  "libpmacx_stats.a"
)
