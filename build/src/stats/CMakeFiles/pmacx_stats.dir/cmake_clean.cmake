file(REMOVE_RECURSE
  "CMakeFiles/pmacx_stats.dir/canonical.cpp.o"
  "CMakeFiles/pmacx_stats.dir/canonical.cpp.o.d"
  "CMakeFiles/pmacx_stats.dir/descriptive.cpp.o"
  "CMakeFiles/pmacx_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/pmacx_stats.dir/interp.cpp.o"
  "CMakeFiles/pmacx_stats.dir/interp.cpp.o.d"
  "CMakeFiles/pmacx_stats.dir/kmeans.cpp.o"
  "CMakeFiles/pmacx_stats.dir/kmeans.cpp.o.d"
  "CMakeFiles/pmacx_stats.dir/ols.cpp.o"
  "CMakeFiles/pmacx_stats.dir/ols.cpp.o.d"
  "libpmacx_stats.a"
  "libpmacx_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
