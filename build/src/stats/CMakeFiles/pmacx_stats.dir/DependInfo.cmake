
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/canonical.cpp" "src/stats/CMakeFiles/pmacx_stats.dir/canonical.cpp.o" "gcc" "src/stats/CMakeFiles/pmacx_stats.dir/canonical.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/pmacx_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/pmacx_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/interp.cpp" "src/stats/CMakeFiles/pmacx_stats.dir/interp.cpp.o" "gcc" "src/stats/CMakeFiles/pmacx_stats.dir/interp.cpp.o.d"
  "/root/repo/src/stats/kmeans.cpp" "src/stats/CMakeFiles/pmacx_stats.dir/kmeans.cpp.o" "gcc" "src/stats/CMakeFiles/pmacx_stats.dir/kmeans.cpp.o.d"
  "/root/repo/src/stats/ols.cpp" "src/stats/CMakeFiles/pmacx_stats.dir/ols.cpp.o" "gcc" "src/stats/CMakeFiles/pmacx_stats.dir/ols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pmacx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
