# Empty compiler generated dependencies file for pmacx_stats.
# This may be replaced when dependencies are built.
