file(REMOVE_RECURSE
  "CMakeFiles/pmacx_psins.dir/convolution.cpp.o"
  "CMakeFiles/pmacx_psins.dir/convolution.cpp.o.d"
  "CMakeFiles/pmacx_psins.dir/energy.cpp.o"
  "CMakeFiles/pmacx_psins.dir/energy.cpp.o.d"
  "CMakeFiles/pmacx_psins.dir/predictor.cpp.o"
  "CMakeFiles/pmacx_psins.dir/predictor.cpp.o.d"
  "CMakeFiles/pmacx_psins.dir/reference.cpp.o"
  "CMakeFiles/pmacx_psins.dir/reference.cpp.o.d"
  "libpmacx_psins.a"
  "libpmacx_psins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_psins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
