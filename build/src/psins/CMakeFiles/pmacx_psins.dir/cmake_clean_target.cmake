file(REMOVE_RECURSE
  "libpmacx_psins.a"
)
