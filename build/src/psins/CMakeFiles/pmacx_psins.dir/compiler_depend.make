# Empty compiler generated dependencies file for pmacx_psins.
# This may be replaced when dependencies are built.
