file(REMOVE_RECURSE
  "libpmacx_trace.a"
)
