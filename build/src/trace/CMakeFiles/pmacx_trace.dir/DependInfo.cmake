
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/binary_io.cpp" "src/trace/CMakeFiles/pmacx_trace.dir/binary_io.cpp.o" "gcc" "src/trace/CMakeFiles/pmacx_trace.dir/binary_io.cpp.o.d"
  "/root/repo/src/trace/block.cpp" "src/trace/CMakeFiles/pmacx_trace.dir/block.cpp.o" "gcc" "src/trace/CMakeFiles/pmacx_trace.dir/block.cpp.o.d"
  "/root/repo/src/trace/comm.cpp" "src/trace/CMakeFiles/pmacx_trace.dir/comm.cpp.o" "gcc" "src/trace/CMakeFiles/pmacx_trace.dir/comm.cpp.o.d"
  "/root/repo/src/trace/elements.cpp" "src/trace/CMakeFiles/pmacx_trace.dir/elements.cpp.o" "gcc" "src/trace/CMakeFiles/pmacx_trace.dir/elements.cpp.o.d"
  "/root/repo/src/trace/signature.cpp" "src/trace/CMakeFiles/pmacx_trace.dir/signature.cpp.o" "gcc" "src/trace/CMakeFiles/pmacx_trace.dir/signature.cpp.o.d"
  "/root/repo/src/trace/task_trace.cpp" "src/trace/CMakeFiles/pmacx_trace.dir/task_trace.cpp.o" "gcc" "src/trace/CMakeFiles/pmacx_trace.dir/task_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pmacx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
