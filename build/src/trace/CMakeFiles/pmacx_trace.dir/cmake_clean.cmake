file(REMOVE_RECURSE
  "CMakeFiles/pmacx_trace.dir/binary_io.cpp.o"
  "CMakeFiles/pmacx_trace.dir/binary_io.cpp.o.d"
  "CMakeFiles/pmacx_trace.dir/block.cpp.o"
  "CMakeFiles/pmacx_trace.dir/block.cpp.o.d"
  "CMakeFiles/pmacx_trace.dir/comm.cpp.o"
  "CMakeFiles/pmacx_trace.dir/comm.cpp.o.d"
  "CMakeFiles/pmacx_trace.dir/elements.cpp.o"
  "CMakeFiles/pmacx_trace.dir/elements.cpp.o.d"
  "CMakeFiles/pmacx_trace.dir/signature.cpp.o"
  "CMakeFiles/pmacx_trace.dir/signature.cpp.o.d"
  "CMakeFiles/pmacx_trace.dir/task_trace.cpp.o"
  "CMakeFiles/pmacx_trace.dir/task_trace.cpp.o.d"
  "libpmacx_trace.a"
  "libpmacx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
