# Empty dependencies file for pmacx_trace.
# This may be replaced when dependencies are built.
