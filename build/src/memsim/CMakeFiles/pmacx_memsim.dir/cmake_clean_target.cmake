file(REMOVE_RECURSE
  "libpmacx_memsim.a"
)
