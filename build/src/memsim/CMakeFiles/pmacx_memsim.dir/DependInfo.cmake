
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache.cpp" "src/memsim/CMakeFiles/pmacx_memsim.dir/cache.cpp.o" "gcc" "src/memsim/CMakeFiles/pmacx_memsim.dir/cache.cpp.o.d"
  "/root/repo/src/memsim/config.cpp" "src/memsim/CMakeFiles/pmacx_memsim.dir/config.cpp.o" "gcc" "src/memsim/CMakeFiles/pmacx_memsim.dir/config.cpp.o.d"
  "/root/repo/src/memsim/hierarchy.cpp" "src/memsim/CMakeFiles/pmacx_memsim.dir/hierarchy.cpp.o" "gcc" "src/memsim/CMakeFiles/pmacx_memsim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/memsim/reuse.cpp" "src/memsim/CMakeFiles/pmacx_memsim.dir/reuse.cpp.o" "gcc" "src/memsim/CMakeFiles/pmacx_memsim.dir/reuse.cpp.o.d"
  "/root/repo/src/memsim/threaded.cpp" "src/memsim/CMakeFiles/pmacx_memsim.dir/threaded.cpp.o" "gcc" "src/memsim/CMakeFiles/pmacx_memsim.dir/threaded.cpp.o.d"
  "/root/repo/src/memsim/working_set.cpp" "src/memsim/CMakeFiles/pmacx_memsim.dir/working_set.cpp.o" "gcc" "src/memsim/CMakeFiles/pmacx_memsim.dir/working_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pmacx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
