# Empty dependencies file for pmacx_memsim.
# This may be replaced when dependencies are built.
