file(REMOVE_RECURSE
  "CMakeFiles/pmacx_memsim.dir/cache.cpp.o"
  "CMakeFiles/pmacx_memsim.dir/cache.cpp.o.d"
  "CMakeFiles/pmacx_memsim.dir/config.cpp.o"
  "CMakeFiles/pmacx_memsim.dir/config.cpp.o.d"
  "CMakeFiles/pmacx_memsim.dir/hierarchy.cpp.o"
  "CMakeFiles/pmacx_memsim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/pmacx_memsim.dir/reuse.cpp.o"
  "CMakeFiles/pmacx_memsim.dir/reuse.cpp.o.d"
  "CMakeFiles/pmacx_memsim.dir/threaded.cpp.o"
  "CMakeFiles/pmacx_memsim.dir/threaded.cpp.o.d"
  "CMakeFiles/pmacx_memsim.dir/working_set.cpp.o"
  "CMakeFiles/pmacx_memsim.dir/working_set.cpp.o.d"
  "libpmacx_memsim.a"
  "libpmacx_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
