
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/dvfs.cpp" "src/machine/CMakeFiles/pmacx_machine.dir/dvfs.cpp.o" "gcc" "src/machine/CMakeFiles/pmacx_machine.dir/dvfs.cpp.o.d"
  "/root/repo/src/machine/energy.cpp" "src/machine/CMakeFiles/pmacx_machine.dir/energy.cpp.o" "gcc" "src/machine/CMakeFiles/pmacx_machine.dir/energy.cpp.o.d"
  "/root/repo/src/machine/multimaps.cpp" "src/machine/CMakeFiles/pmacx_machine.dir/multimaps.cpp.o" "gcc" "src/machine/CMakeFiles/pmacx_machine.dir/multimaps.cpp.o.d"
  "/root/repo/src/machine/profile.cpp" "src/machine/CMakeFiles/pmacx_machine.dir/profile.cpp.o" "gcc" "src/machine/CMakeFiles/pmacx_machine.dir/profile.cpp.o.d"
  "/root/repo/src/machine/profile_io.cpp" "src/machine/CMakeFiles/pmacx_machine.dir/profile_io.cpp.o" "gcc" "src/machine/CMakeFiles/pmacx_machine.dir/profile_io.cpp.o.d"
  "/root/repo/src/machine/targets.cpp" "src/machine/CMakeFiles/pmacx_machine.dir/targets.cpp.o" "gcc" "src/machine/CMakeFiles/pmacx_machine.dir/targets.cpp.o.d"
  "/root/repo/src/machine/timing.cpp" "src/machine/CMakeFiles/pmacx_machine.dir/timing.cpp.o" "gcc" "src/machine/CMakeFiles/pmacx_machine.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pmacx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmacx_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pmacx_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/pmacx_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pmacx_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmacx_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
