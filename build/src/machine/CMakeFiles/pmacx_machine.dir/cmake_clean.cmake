file(REMOVE_RECURSE
  "CMakeFiles/pmacx_machine.dir/dvfs.cpp.o"
  "CMakeFiles/pmacx_machine.dir/dvfs.cpp.o.d"
  "CMakeFiles/pmacx_machine.dir/energy.cpp.o"
  "CMakeFiles/pmacx_machine.dir/energy.cpp.o.d"
  "CMakeFiles/pmacx_machine.dir/multimaps.cpp.o"
  "CMakeFiles/pmacx_machine.dir/multimaps.cpp.o.d"
  "CMakeFiles/pmacx_machine.dir/profile.cpp.o"
  "CMakeFiles/pmacx_machine.dir/profile.cpp.o.d"
  "CMakeFiles/pmacx_machine.dir/profile_io.cpp.o"
  "CMakeFiles/pmacx_machine.dir/profile_io.cpp.o.d"
  "CMakeFiles/pmacx_machine.dir/targets.cpp.o"
  "CMakeFiles/pmacx_machine.dir/targets.cpp.o.d"
  "CMakeFiles/pmacx_machine.dir/timing.cpp.o"
  "CMakeFiles/pmacx_machine.dir/timing.cpp.o.d"
  "libpmacx_machine.a"
  "libpmacx_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
