# Empty compiler generated dependencies file for pmacx_machine.
# This may be replaced when dependencies are built.
