file(REMOVE_RECURSE
  "libpmacx_machine.a"
)
