# Empty compiler generated dependencies file for pmacx_synth.
# This may be replaced when dependencies are built.
