file(REMOVE_RECURSE
  "CMakeFiles/pmacx_synth.dir/app.cpp.o"
  "CMakeFiles/pmacx_synth.dir/app.cpp.o.d"
  "CMakeFiles/pmacx_synth.dir/hpcg.cpp.o"
  "CMakeFiles/pmacx_synth.dir/hpcg.cpp.o.d"
  "CMakeFiles/pmacx_synth.dir/kernel.cpp.o"
  "CMakeFiles/pmacx_synth.dir/kernel.cpp.o.d"
  "CMakeFiles/pmacx_synth.dir/patterns.cpp.o"
  "CMakeFiles/pmacx_synth.dir/patterns.cpp.o.d"
  "CMakeFiles/pmacx_synth.dir/registry.cpp.o"
  "CMakeFiles/pmacx_synth.dir/registry.cpp.o.d"
  "CMakeFiles/pmacx_synth.dir/specfem.cpp.o"
  "CMakeFiles/pmacx_synth.dir/specfem.cpp.o.d"
  "CMakeFiles/pmacx_synth.dir/tracer.cpp.o"
  "CMakeFiles/pmacx_synth.dir/tracer.cpp.o.d"
  "CMakeFiles/pmacx_synth.dir/uh3d.cpp.o"
  "CMakeFiles/pmacx_synth.dir/uh3d.cpp.o.d"
  "libpmacx_synth.a"
  "libpmacx_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
