file(REMOVE_RECURSE
  "libpmacx_synth.a"
)
