
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/app.cpp" "src/synth/CMakeFiles/pmacx_synth.dir/app.cpp.o" "gcc" "src/synth/CMakeFiles/pmacx_synth.dir/app.cpp.o.d"
  "/root/repo/src/synth/hpcg.cpp" "src/synth/CMakeFiles/pmacx_synth.dir/hpcg.cpp.o" "gcc" "src/synth/CMakeFiles/pmacx_synth.dir/hpcg.cpp.o.d"
  "/root/repo/src/synth/kernel.cpp" "src/synth/CMakeFiles/pmacx_synth.dir/kernel.cpp.o" "gcc" "src/synth/CMakeFiles/pmacx_synth.dir/kernel.cpp.o.d"
  "/root/repo/src/synth/patterns.cpp" "src/synth/CMakeFiles/pmacx_synth.dir/patterns.cpp.o" "gcc" "src/synth/CMakeFiles/pmacx_synth.dir/patterns.cpp.o.d"
  "/root/repo/src/synth/registry.cpp" "src/synth/CMakeFiles/pmacx_synth.dir/registry.cpp.o" "gcc" "src/synth/CMakeFiles/pmacx_synth.dir/registry.cpp.o.d"
  "/root/repo/src/synth/specfem.cpp" "src/synth/CMakeFiles/pmacx_synth.dir/specfem.cpp.o" "gcc" "src/synth/CMakeFiles/pmacx_synth.dir/specfem.cpp.o.d"
  "/root/repo/src/synth/tracer.cpp" "src/synth/CMakeFiles/pmacx_synth.dir/tracer.cpp.o" "gcc" "src/synth/CMakeFiles/pmacx_synth.dir/tracer.cpp.o.d"
  "/root/repo/src/synth/uh3d.cpp" "src/synth/CMakeFiles/pmacx_synth.dir/uh3d.cpp.o" "gcc" "src/synth/CMakeFiles/pmacx_synth.dir/uh3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pmacx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmacx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmacx_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/pmacx_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
