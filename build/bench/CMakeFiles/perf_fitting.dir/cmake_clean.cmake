file(REMOVE_RECURSE
  "CMakeFiles/perf_fitting.dir/perf_fitting.cpp.o"
  "CMakeFiles/perf_fitting.dir/perf_fitting.cpp.o.d"
  "perf_fitting"
  "perf_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
