# Empty compiler generated dependencies file for perf_fitting.
# This may be replaced when dependencies are built.
