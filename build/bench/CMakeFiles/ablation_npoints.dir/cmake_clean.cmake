file(REMOVE_RECURSE
  "CMakeFiles/ablation_npoints.dir/ablation_npoints.cpp.o"
  "CMakeFiles/ablation_npoints.dir/ablation_npoints.cpp.o.d"
  "ablation_npoints"
  "ablation_npoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_npoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
