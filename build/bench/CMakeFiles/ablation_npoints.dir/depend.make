# Empty dependencies file for ablation_npoints.
# This may be replaced when dependencies are built.
