
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_npoints.cpp" "bench/CMakeFiles/ablation_npoints.dir/ablation_npoints.cpp.o" "gcc" "bench/CMakeFiles/ablation_npoints.dir/ablation_npoints.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pmacx_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmacx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/psins/CMakeFiles/pmacx_psins.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/pmacx_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pmacx_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/pmacx_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmacx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/pmacx_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pmacx_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pmacx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
