file(REMOVE_RECURSE
  "CMakeFiles/ablation_influence.dir/ablation_influence.cpp.o"
  "CMakeFiles/ablation_influence.dir/ablation_influence.cpp.o.d"
  "ablation_influence"
  "ablation_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
