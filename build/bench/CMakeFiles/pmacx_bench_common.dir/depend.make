# Empty dependencies file for pmacx_bench_common.
# This may be replaced when dependencies are built.
