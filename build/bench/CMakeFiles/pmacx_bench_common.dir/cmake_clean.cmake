file(REMOVE_RECURSE
  "../lib/libpmacx_bench_common.a"
  "../lib/libpmacx_bench_common.pdb"
  "CMakeFiles/pmacx_bench_common.dir/common.cpp.o"
  "CMakeFiles/pmacx_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmacx_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
