file(REMOVE_RECURSE
  "../lib/libpmacx_bench_common.a"
)
