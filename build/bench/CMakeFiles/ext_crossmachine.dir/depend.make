# Empty dependencies file for ext_crossmachine.
# This may be replaced when dependencies are built.
