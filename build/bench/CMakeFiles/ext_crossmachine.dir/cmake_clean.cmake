file(REMOVE_RECURSE
  "CMakeFiles/ext_crossmachine.dir/ext_crossmachine.cpp.o"
  "CMakeFiles/ext_crossmachine.dir/ext_crossmachine.cpp.o.d"
  "ext_crossmachine"
  "ext_crossmachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_crossmachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
