# Empty compiler generated dependencies file for ext_third_app.
# This may be replaced when dependencies are built.
