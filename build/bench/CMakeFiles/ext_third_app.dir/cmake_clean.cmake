file(REMOVE_RECURSE
  "CMakeFiles/ext_third_app.dir/ext_third_app.cpp.o"
  "CMakeFiles/ext_third_app.dir/ext_third_app.cpp.o.d"
  "ext_third_app"
  "ext_third_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_third_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
