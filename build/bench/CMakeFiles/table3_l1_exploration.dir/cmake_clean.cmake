file(REMOVE_RECURSE
  "CMakeFiles/table3_l1_exploration.dir/table3_l1_exploration.cpp.o"
  "CMakeFiles/table3_l1_exploration.dir/table3_l1_exploration.cpp.o.d"
  "table3_l1_exploration"
  "table3_l1_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_l1_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
