# Empty dependencies file for table3_l1_exploration.
# This may be replaced when dependencies are built.
