file(REMOVE_RECURSE
  "CMakeFiles/table1_prediction_error.dir/table1_prediction_error.cpp.o"
  "CMakeFiles/table1_prediction_error.dir/table1_prediction_error.cpp.o.d"
  "table1_prediction_error"
  "table1_prediction_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_prediction_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
