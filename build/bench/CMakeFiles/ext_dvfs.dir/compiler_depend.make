# Empty compiler generated dependencies file for ext_dvfs.
# This may be replaced when dependencies are built.
