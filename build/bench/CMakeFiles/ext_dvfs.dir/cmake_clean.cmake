file(REMOVE_RECURSE
  "CMakeFiles/ext_dvfs.dir/ext_dvfs.cpp.o"
  "CMakeFiles/ext_dvfs.dir/ext_dvfs.cpp.o.d"
  "ext_dvfs"
  "ext_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
