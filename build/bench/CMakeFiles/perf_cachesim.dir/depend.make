# Empty dependencies file for perf_cachesim.
# This may be replaced when dependencies are built.
