file(REMOVE_RECURSE
  "CMakeFiles/perf_cachesim.dir/perf_cachesim.cpp.o"
  "CMakeFiles/perf_cachesim.dir/perf_cachesim.cpp.o.d"
  "perf_cachesim"
  "perf_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
