# Empty compiler generated dependencies file for fig5_memops_fit.
# This may be replaced when dependencies are built.
