file(REMOVE_RECURSE
  "CMakeFiles/fig5_memops_fit.dir/fig5_memops_fit.cpp.o"
  "CMakeFiles/fig5_memops_fit.dir/fig5_memops_fit.cpp.o.d"
  "fig5_memops_fit"
  "fig5_memops_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_memops_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
