file(REMOVE_RECURSE
  "CMakeFiles/fig1_multimaps.dir/fig1_multimaps.cpp.o"
  "CMakeFiles/fig1_multimaps.dir/fig1_multimaps.cpp.o.d"
  "fig1_multimaps"
  "fig1_multimaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_multimaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
