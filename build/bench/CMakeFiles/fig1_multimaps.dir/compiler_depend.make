# Empty compiler generated dependencies file for fig1_multimaps.
# This may be replaced when dependencies are built.
