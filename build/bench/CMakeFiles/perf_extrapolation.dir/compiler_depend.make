# Empty compiler generated dependencies file for perf_extrapolation.
# This may be replaced when dependencies are built.
