file(REMOVE_RECURSE
  "CMakeFiles/perf_extrapolation.dir/perf_extrapolation.cpp.o"
  "CMakeFiles/perf_extrapolation.dir/perf_extrapolation.cpp.o.d"
  "perf_extrapolation"
  "perf_extrapolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_extrapolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
