file(REMOVE_RECURSE
  "CMakeFiles/fig3_element_extrap.dir/fig3_element_extrap.cpp.o"
  "CMakeFiles/fig3_element_extrap.dir/fig3_element_extrap.cpp.o.d"
  "fig3_element_extrap"
  "fig3_element_extrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_element_extrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
