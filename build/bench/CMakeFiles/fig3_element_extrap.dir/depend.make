# Empty dependencies file for fig3_element_extrap.
# This may be replaced when dependencies are built.
