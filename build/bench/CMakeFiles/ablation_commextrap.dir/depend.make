# Empty dependencies file for ablation_commextrap.
# This may be replaced when dependencies are built.
