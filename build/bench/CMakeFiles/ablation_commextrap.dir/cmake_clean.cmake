file(REMOVE_RECURSE
  "CMakeFiles/ablation_commextrap.dir/ablation_commextrap.cpp.o"
  "CMakeFiles/ablation_commextrap.dir/ablation_commextrap.cpp.o.d"
  "ablation_commextrap"
  "ablation_commextrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_commextrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
