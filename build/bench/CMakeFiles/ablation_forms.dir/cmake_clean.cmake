file(REMOVE_RECURSE
  "CMakeFiles/ablation_forms.dir/ablation_forms.cpp.o"
  "CMakeFiles/ablation_forms.dir/ablation_forms.cpp.o.d"
  "ablation_forms"
  "ablation_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
