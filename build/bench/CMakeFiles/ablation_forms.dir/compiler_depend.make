# Empty compiler generated dependencies file for ablation_forms.
# This may be replaced when dependencies are built.
