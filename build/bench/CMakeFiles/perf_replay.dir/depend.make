# Empty dependencies file for perf_replay.
# This may be replaced when dependencies are built.
