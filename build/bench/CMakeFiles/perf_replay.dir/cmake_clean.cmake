file(REMOVE_RECURSE
  "CMakeFiles/perf_replay.dir/perf_replay.cpp.o"
  "CMakeFiles/perf_replay.dir/perf_replay.cpp.o.d"
  "perf_replay"
  "perf_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
