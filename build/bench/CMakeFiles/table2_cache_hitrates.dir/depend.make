# Empty dependencies file for table2_cache_hitrates.
# This may be replaced when dependencies are built.
