file(REMOVE_RECURSE
  "CMakeFiles/table2_cache_hitrates.dir/table2_cache_hitrates.cpp.o"
  "CMakeFiles/table2_cache_hitrates.dir/table2_cache_hitrates.cpp.o.d"
  "table2_cache_hitrates"
  "table2_cache_hitrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cache_hitrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
