file(REMOVE_RECURSE
  "CMakeFiles/fig4_l2_hitrate_fit.dir/fig4_l2_hitrate_fit.cpp.o"
  "CMakeFiles/fig4_l2_hitrate_fit.dir/fig4_l2_hitrate_fit.cpp.o.d"
  "fig4_l2_hitrate_fit"
  "fig4_l2_hitrate_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_l2_hitrate_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
