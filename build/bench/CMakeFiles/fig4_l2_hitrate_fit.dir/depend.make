# Empty dependencies file for fig4_l2_hitrate_fit.
# This may be replaced when dependencies are built.
